package patterns

import (
	"fmt"

	"guava/internal/relstore"
)

// Sentinel is the pattern where the physical database forbids NULL and
// stores a per-type sentinel value instead — legacy clinical schemas often
// use -9 or "-" for "not recorded". The g-tree view restores NULLs so
// classifiers can test "Unselected" uniformly.
type Sentinel struct {
	// IntCode, FloatCode, StringCode, BoolAsInt are the stored stand-ins
	// for NULL per naive column type. Zero values select the defaults
	// -9999, -9999, "<none>"; booleans are stored as -9999 integers only
	// when NULL (live booleans pass through).
	IntCode    int64
	FloatCode  float64
	StringCode string
}

func (s *Sentinel) intCode() int64 {
	if s.IntCode == 0 {
		return -9999
	}
	return s.IntCode
}

func (s *Sentinel) floatCode() float64 {
	if s.FloatCode == 0 {
		return -9999
	}
	return s.FloatCode
}

func (s *Sentinel) stringCode() string {
	if s.StringCode == "" {
		return "<none>"
	}
	return s.StringCode
}

// Name implements Transform.
func (*Sentinel) Name() string { return "Sentinel" }

// Describe implements Transform.
func (*Sentinel) Describe() string {
	return "The physical schema forbids NULL; missing answers are stored as out-of-domain sentinel values."
}

// Adapt implements Transform: column types are unchanged, but boolean
// columns widen to integers (0/1/sentinel) because a boolean type cannot
// carry a third state.
func (s *Sentinel) Adapt(form FormInfo) (FormInfo, error) {
	cols := make([]relstore.Column, form.Schema.Arity())
	for i, c := range form.Schema.Columns {
		if c.Type == relstore.KindBool {
			c.Type = relstore.KindInt
		}
		if c.Name != form.KeyColumn {
			c.NotNull = true
		}
		cols[i] = c
	}
	schema, err := relstore.NewSchema(cols...)
	if err != nil {
		return FormInfo{}, err
	}
	return FormInfo{Name: form.Name, KeyColumn: form.KeyColumn, Schema: schema}, nil
}

// Install implements Transform.
func (*Sentinel) Install(*relstore.DB, FormInfo, FormInfo) error { return nil }

func (s *Sentinel) encodeValue(t relstore.Kind, v relstore.Value) (relstore.Value, error) {
	if v.IsNull() {
		switch t {
		case relstore.KindInt, relstore.KindBool:
			return relstore.Int(s.intCode()), nil
		case relstore.KindFloat:
			return relstore.Float(s.floatCode()), nil
		case relstore.KindString:
			return relstore.Str(s.stringCode()), nil
		default:
			return relstore.Null(), fmt.Errorf("sentinel: no sentinel for %s", t)
		}
	}
	switch t {
	case relstore.KindBool:
		if v.AsBool() {
			return relstore.Int(1), nil
		}
		return relstore.Int(0), nil
	case relstore.KindInt:
		if v.AsInt() == s.intCode() {
			return relstore.Null(), fmt.Errorf("sentinel: live value %s collides with the integer sentinel", v)
		}
	case relstore.KindFloat:
		if v.AsFloat() == s.floatCode() {
			return relstore.Null(), fmt.Errorf("sentinel: live value %s collides with the float sentinel", v)
		}
	case relstore.KindString:
		if v.AsString() == s.stringCode() {
			return relstore.Null(), fmt.Errorf("sentinel: live value %s collides with the string sentinel", v)
		}
	}
	return v, nil
}

func (s *Sentinel) decodeValue(t relstore.Kind, v relstore.Value) relstore.Value {
	if v.IsNull() {
		return v
	}
	switch t {
	case relstore.KindBool:
		if v.AsInt() == s.intCode() {
			return relstore.Null()
		}
		return relstore.Bool(v.AsInt() != 0)
	case relstore.KindInt:
		if v.AsInt() == s.intCode() {
			return relstore.Null()
		}
	case relstore.KindFloat:
		if v.AsFloat() == s.floatCode() {
			return relstore.Null()
		}
	case relstore.KindString:
		if v.AsString() == s.stringCode() {
			return relstore.Null()
		}
	}
	return v
}

// Encode implements Transform.
func (s *Sentinel) Encode(_ *relstore.DB, outer, _ FormInfo, row relstore.Row) (relstore.Row, error) {
	out := make(relstore.Row, len(row))
	for i, v := range row {
		c := outer.Schema.Columns[i]
		if c.Name == outer.KeyColumn {
			out[i] = v
			continue
		}
		ev, err := s.encodeValue(c.Type, v)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", c.Name, err)
		}
		out[i] = ev
	}
	return out, nil
}

// Decode implements Transform.
func (s *Sentinel) Decode(_ *relstore.DB, outer, inner FormInfo, rows *relstore.Rows) (*relstore.Rows, error) {
	ordered, err := relstore.Project(rows, inner.Schema.Names()...)
	if err != nil {
		return nil, err
	}
	data := make([]relstore.Row, len(ordered.Data))
	for r, row := range ordered.Data {
		nr := make(relstore.Row, len(row))
		for i, v := range row {
			c := outer.Schema.Columns[i]
			if c.Name == outer.KeyColumn {
				nr[i] = v
				continue
			}
			nr[i] = s.decodeValue(c.Type, v)
		}
		data[r] = nr
	}
	return &relstore.Rows{Schema: outer.Schema, Data: data}, nil
}

// AdaptUpdate implements Transform.
func (s *Sentinel) AdaptUpdate(_ *relstore.DB, outer, _ FormInfo, col string, v relstore.Value) (string, relstore.Value, error) {
	c, err := outer.Schema.Col(col)
	if err != nil {
		// Column introduced by an outer transform (e.g. the audit column);
		// pass through untouched.
		return col, v, nil
	}
	ev, err := s.encodeValue(c.Type, v)
	if err != nil {
		return "", relstore.Null(), err
	}
	return col, ev, nil
}
