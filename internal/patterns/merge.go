package patterns

import (
	"fmt"
	"sort"

	"guava/internal/relstore"
)

// Merge is the Table 1 pattern where "data from several forms are drawn from
// the same table": one wide physical table holds the rows of every form,
// discriminated by a column holding the form name. Reading a form's data
// means "pull only data where C = form name" and projecting its columns.
type Merge struct {
	// Table names the shared physical table.
	Table string
	// Discriminator names the column that holds the form name.
	Discriminator string
	// Forms are all the forms that share the table; the union of their
	// naive schemas (minus keys, which share one column) defines the
	// physical schema. Columns with the same name must agree on type.
	Forms []FormInfo

	shared *relstore.Schema
}

// NewMergeStack builds a complete stack whose layout is a Merge shared by
// the given forms, with the transforms layered above it. The Merge layout
// must be constructed from the forms *as the layout will see them* — i.e.
// after every transform's Adapt (an Audit transform, for example, adds its
// deprecation column to each form) — and this constructor does that
// adaptation, which is easy to forget when assembling the pieces by hand.
func NewMergeStack(table, discriminator string, transforms []Transform, forms ...FormInfo) (*Stack, error) {
	adapted := make([]FormInfo, len(forms))
	for i, f := range forms {
		cur := f
		for _, t := range transforms {
			next, err := t.Adapt(cur)
			if err != nil {
				return nil, fmt.Errorf("patterns: merge stack: %s: %w", t.Name(), err)
			}
			cur = next
		}
		adapted[i] = cur
	}
	m, err := NewMerge(table, discriminator, adapted)
	if err != nil {
		return nil, err
	}
	return NewStack(m, transforms...), nil
}

// NewMerge builds a Merge layout for a set of forms, validating that
// same-named columns agree on type and that all forms share a key column
// name.
func NewMerge(table, discriminator string, forms []FormInfo) (*Merge, error) {
	if len(forms) == 0 {
		return nil, fmt.Errorf("patterns: merge needs at least one form")
	}
	key := forms[0].KeyColumn
	cols := []relstore.Column{
		{Name: discriminator, Type: relstore.KindString, NotNull: true},
		{Name: key, Type: relstore.KindInt, NotNull: true},
	}
	seen := map[string]relstore.Kind{discriminator: relstore.KindString, key: relstore.KindInt}
	for _, f := range forms {
		if f.KeyColumn != key {
			return nil, fmt.Errorf("patterns: merge: key column %q of %s differs from %q", f.KeyColumn, f.Name, key)
		}
		for _, c := range f.Schema.Columns {
			if c.Name == f.KeyColumn {
				continue
			}
			if k, ok := seen[c.Name]; ok {
				if k != c.Type {
					return nil, fmt.Errorf("patterns: merge: column %q has conflicting types %s and %s", c.Name, k, c.Type)
				}
				continue
			}
			seen[c.Name] = c.Type
			// All merged columns are nullable: other forms have no value.
			cols = append(cols, relstore.Column{Name: c.Name, Type: c.Type})
		}
	}
	shared, err := relstore.NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("patterns: merge: %w", err)
	}
	return &Merge{Table: table, Discriminator: discriminator, Forms: forms, shared: shared}, nil
}

// Name implements Layout.
func (*Merge) Name() string { return "Merge" }

// Describe implements Layout.
func (*Merge) Describe() string {
	return "Data from several forms are drawn from the same table; pull only data where the discriminator column equals the form name."
}

func (m *Merge) knows(form FormInfo) error {
	for _, f := range m.Forms {
		if f.Name == form.Name {
			return nil
		}
	}
	names := make([]string, len(m.Forms))
	for i, f := range m.Forms {
		names[i] = f.Name
	}
	sort.Strings(names)
	return fmt.Errorf("patterns: merge table %s does not include form %q (has %v)", m.Table, form.Name, names)
}

// Install implements Layout.
func (m *Merge) Install(db *relstore.DB, form FormInfo) error {
	if err := m.knows(form); err != nil {
		return err
	}
	_, err := db.EnsureTable(m.Table, m.shared)
	return err
}

// Write implements Layout.
func (m *Merge) Write(db *relstore.DB, form FormInfo, row relstore.Row) error {
	if err := m.knows(form); err != nil {
		return err
	}
	t, err := db.Table(m.Table)
	if err != nil {
		return err
	}
	wide := make(relstore.Row, m.shared.Arity())
	wide[0] = relstore.Str(form.Name)
	for i, c := range form.Schema.Columns {
		j := m.shared.Index(c.Name)
		if j < 0 {
			return fmt.Errorf("patterns: merge write: column %q not in shared table", c.Name)
		}
		wide[j] = row[i]
	}
	return t.Insert(wide)
}

// Read implements Layout.
func (m *Merge) Read(db *relstore.DB, form FormInfo) (*relstore.Rows, error) {
	if err := m.knows(form); err != nil {
		return nil, err
	}
	t, err := db.Table(m.Table)
	if err != nil {
		return nil, err
	}
	mine, err := relstore.Select(t.Rows(), relstore.Eq(m.Discriminator, relstore.Str(form.Name)))
	if err != nil {
		return nil, err
	}
	return relstore.Project(mine, form.Schema.Names()...)
}

// Update implements Layout.
func (m *Merge) Update(db *relstore.DB, form FormInfo, key relstore.Value, col string, v relstore.Value) (int, error) {
	if err := m.knows(form); err != nil {
		return 0, err
	}
	t, err := db.Table(m.Table)
	if err != nil {
		return 0, err
	}
	i := m.shared.Index(col)
	if i < 0 {
		return 0, fmt.Errorf("patterns: merge update: no column %q", col)
	}
	pred := relstore.And(
		relstore.Eq(m.Discriminator, relstore.Str(form.Name)),
		relstore.Eq(form.KeyColumn, key),
	)
	return t.Update(pred, func(r relstore.Row) relstore.Row {
		r[i] = v
		return r
	})
}

// PhysicalTables implements Layout.
func (m *Merge) PhysicalTables(FormInfo) []string { return []string{m.Table} }
