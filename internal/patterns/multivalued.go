package patterns

import (
	"fmt"

	"guava/internal/relstore"
)

// MultiValued is the multi-valued answer-table pattern from the paper's
// extended catalog: designated answers move out of the main record into one
// side table per question, holding one row per answer, so the tool can store
// several answers where the form shows a single control. The naive relation
// only exists when each instance carries at most one answer per question —
// a second answer makes the record ambiguous, which is exactly the hazard
// this pattern imports and the reason Read refuses instead of picking one.
//
// Physical tables per form:
//
//	<form>_main(<key>, …unmoved columns…)
//	<form>_<col>_answers(<key>, <col>)      — one per designated column
//
// The misuse hazard (vetted as GV314): designating the key column, a column
// the form does not have, or the same column twice.
type MultiValued struct {
	// Columns names the controls whose answers move to side tables.
	Columns []string
}

// Name implements Layout.
func (MultiValued) Name() string { return "MultiValued" }

// Describe implements Layout.
func (MultiValued) Describe() string {
	return "Designated answers move to one side table per question, one row per answer; reading requires at most one answer per instance."
}

func mainTable(form FormInfo) string { return form.Name + "_main" }

func answerTable(form FormInfo, col string) string { return form.Name + "_" + col + "_answers" }

// Check validates the designated-column set without a database. Install
// runs it before touching storage; guavavet calls it to report misuse as
// GV314.
func (m MultiValued) Check(form FormInfo) error { return m.check(form) }

// check validates the designated-column set against the form.
func (m MultiValued) check(form FormInfo) error {
	if len(m.Columns) == 0 {
		return fmt.Errorf("patterns: multi-valued: no columns designated")
	}
	seen := make(map[string]bool, len(m.Columns))
	for _, c := range m.Columns {
		if c == form.KeyColumn {
			return fmt.Errorf("patterns: multi-valued: key column %s cannot be multi-valued", c)
		}
		if !form.Schema.Has(c) {
			return fmt.Errorf("patterns: multi-valued: form %s has no column %q", form.Name, c)
		}
		if seen[c] {
			return fmt.Errorf("patterns: multi-valued: column %q designated twice", c)
		}
		seen[c] = true
	}
	return nil
}

func (m MultiValued) moved(col string) bool {
	for _, c := range m.Columns {
		if c == col {
			return true
		}
	}
	return false
}

func (m MultiValued) mainSchema(form FormInfo) *relstore.Schema {
	cols := make([]relstore.Column, 0, form.Schema.Arity())
	for _, c := range form.Schema.Columns {
		if !m.moved(c.Name) {
			cols = append(cols, c)
		}
	}
	return relstore.MustSchema(cols...)
}

func (m MultiValued) answerSchema(form FormInfo, col string) *relstore.Schema {
	ki := form.Schema.Index(form.KeyColumn)
	ci := form.Schema.Index(col)
	return relstore.MustSchema(
		form.Schema.Columns[ki],
		relstore.Column{Name: col, Type: form.Schema.Columns[ci].Type, NotNull: true},
	)
}

// Install implements Layout.
func (m MultiValued) Install(db *relstore.DB, form FormInfo) error {
	if err := m.check(form); err != nil {
		return err
	}
	mt, err := db.EnsureTable(mainTable(form), m.mainSchema(form))
	if err != nil {
		return err
	}
	if err := mt.CreateIndex(form.KeyColumn); err != nil {
		return err
	}
	for _, c := range m.Columns {
		at, err := db.EnsureTable(answerTable(form, c), m.answerSchema(form, c))
		if err != nil {
			return err
		}
		if err := at.CreateIndex(form.KeyColumn); err != nil {
			return err
		}
	}
	return nil
}

// Write implements Layout.
func (m MultiValued) Write(db *relstore.DB, form FormInfo, row relstore.Row) error {
	if err := m.check(form); err != nil {
		return err
	}
	mt, err := db.Table(mainTable(form))
	if err != nil {
		return err
	}
	ki := form.Schema.Index(form.KeyColumn)
	var mainRow relstore.Row
	for i, c := range form.Schema.Columns {
		if !m.moved(c.Name) {
			mainRow = append(mainRow, row[i])
		}
	}
	if err := mt.Insert(mainRow); err != nil {
		return err
	}
	for _, c := range m.Columns {
		v := row[form.Schema.Index(c)]
		if v.IsNull() {
			continue
		}
		at, err := db.Table(answerTable(form, c))
		if err != nil {
			return err
		}
		if err := at.Insert(relstore.Row{row[ki], v}); err != nil {
			return err
		}
	}
	return nil
}

// assemble joins per-question answers back onto the main records, refusing
// when any instance carries more than one answer for a question.
func (m MultiValued) assemble(form FormInfo, main *relstore.Rows, answers map[string]*relstore.Rows) (*relstore.Rows, error) {
	cols := append([]relstore.Column{}, main.Schema.Columns...)
	for _, c := range m.Columns {
		ci := form.Schema.Index(c)
		cols = append(cols, relstore.Column{Name: c, Type: form.Schema.Columns[ci].Type})
	}
	byKey := make(map[string]map[string]relstore.Value)
	for _, c := range m.Columns {
		for _, ar := range answers[c].Data {
			k := ar[0].Key()
			if byKey[k] == nil {
				byKey[k] = make(map[string]relstore.Value)
			}
			if _, dup := byKey[k][c]; dup {
				return nil, fmt.Errorf("patterns: multi-valued: ambiguous record: %s=%s has multiple %s answers",
					form.KeyColumn, ar[0].Display(), c)
			}
			byKey[k][c] = ar[1]
		}
	}
	ki := main.Schema.Index(form.KeyColumn)
	out := &relstore.Rows{Schema: relstore.MustSchema(cols...), Data: make([]relstore.Row, len(main.Data))}
	for r, row := range main.Data {
		nr := append(append(relstore.Row{}, row...), make(relstore.Row, len(m.Columns))...)
		for i, c := range m.Columns {
			v, ok := byKey[row[ki].Key()][c]
			if !ok {
				v = relstore.Null()
			}
			nr[len(row)+i] = v
		}
		out.Data[r] = nr
	}
	return out, nil
}

// Read implements Layout.
func (m MultiValued) Read(db *relstore.DB, form FormInfo) (*relstore.Rows, error) {
	if err := m.check(form); err != nil {
		return nil, err
	}
	mt, err := db.Table(mainTable(form))
	if err != nil {
		return nil, err
	}
	answers := make(map[string]*relstore.Rows, len(m.Columns))
	for _, c := range m.Columns {
		at, err := db.Table(answerTable(form, c))
		if err != nil {
			return nil, err
		}
		answers[c] = at.Rows()
	}
	return m.assemble(form, mt.Rows(), answers)
}

// ReadKeys implements KeyedReader: the main table and every answer table are
// probed through their key indexes.
func (m MultiValued) ReadKeys(db *relstore.DB, form FormInfo, keys []relstore.Value) (*relstore.Rows, error) {
	if err := m.check(form); err != nil {
		return nil, err
	}
	mt, err := db.Table(mainTable(form))
	if err != nil {
		return nil, err
	}
	var mainData []relstore.Row
	for _, k := range keys {
		rows, err := mt.Lookup(form.KeyColumn, k)
		if err != nil {
			return nil, err
		}
		mainData = append(mainData, rows...)
	}
	answers := make(map[string]*relstore.Rows, len(m.Columns))
	for _, c := range m.Columns {
		at, err := db.Table(answerTable(form, c))
		if err != nil {
			return nil, err
		}
		var data []relstore.Row
		for _, k := range keys {
			rows, err := at.Lookup(form.KeyColumn, k)
			if err != nil {
				return nil, err
			}
			data = append(data, rows...)
		}
		answers[c] = &relstore.Rows{Schema: at.Schema(), Data: data}
	}
	return m.assemble(form, &relstore.Rows{Schema: mt.Schema(), Data: mainData}, answers)
}

// Update implements Layout: moved columns rewrite their answer row (insert
// or delete as the value is non-NULL or NULL); unmoved columns update the
// main record in place.
func (m MultiValued) Update(db *relstore.DB, form FormInfo, key relstore.Value, col string, v relstore.Value) (int, error) {
	if err := m.check(form); err != nil {
		return 0, err
	}
	if col == form.KeyColumn {
		return 0, fmt.Errorf("patterns: multi-valued update: cannot update key column")
	}
	if !form.Schema.Has(col) {
		return 0, fmt.Errorf("patterns: multi-valued update: no column %q", col)
	}
	mt, err := db.Table(mainTable(form))
	if err != nil {
		return 0, err
	}
	if !m.moved(col) {
		i := mt.Schema().Index(col)
		return mt.Update(relstore.Eq(form.KeyColumn, key), func(r relstore.Row) relstore.Row {
			r[i] = v
			return r
		})
	}
	exists, err := mt.Lookup(form.KeyColumn, key)
	if err != nil {
		return 0, err
	}
	if len(exists) == 0 {
		return 0, nil
	}
	at, err := db.Table(answerTable(form, col))
	if err != nil {
		return 0, err
	}
	if _, err := at.Delete(relstore.Eq(form.KeyColumn, key)); err != nil {
		return 0, err
	}
	if !v.IsNull() {
		if err := at.Insert(relstore.Row{key, v}); err != nil {
			return 0, err
		}
	}
	return len(exists), nil
}

// PhysicalTables implements Layout.
func (m MultiValued) PhysicalTables(form FormInfo) []string {
	out := []string{mainTable(form)}
	for _, c := range m.Columns {
		out = append(out, answerTable(form, c))
	}
	return out
}
