package patterns

import (
	"fmt"
	"testing"
	"testing/quick"

	"guava/internal/relstore"
)

// pushdownStacks enumerates stacks whose every layer supports pushdown.
func pushdownStacks(t *testing.T) map[string]*Stack {
	t.Helper()
	form, _ := testForm(t)
	merge, err := NewMerge("AllForms", "FormName", []FormInfo{form})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Stack{
		"naive":           NewStack(Naive{}),
		"merge":           NewStack(merge),
		"part":            NewStack(&Partitioned{Base: Naive{}, N: 3}),
		"audit":           NewStack(Naive{}, &Audit{}),
		"rename":          NewStack(Naive{}, &Rename{Physical: map[string]string{"Smoking": "fld_0107", "Age": "fld_9"}}),
		"encode":          NewStack(Naive{}, &Encode{}),
		"sentinel":        NewStack(Naive{}, &Sentinel{}),
		"lookup":          NewStack(Naive{}, &Lookup{Columns: []string{"Smoking", "Alcohol"}}),
		"delim-untouched": NewStack(Naive{}, &Delimited{Into: "packed", Columns: []string{"Smoking", "Alcohol"}}),
		"deep":            NewStack(Naive{}, &Audit{}, &Rename{Physical: map[string]string{"Smoking": "s"}}, &Encode{}),
	}
}

// pushdownPreds enumerates predicates spanning the rewrite cases. The bool
// reports whether the named stack is expected to push the predicate down.
func pushdownPreds() []struct {
	name string
	pred relstore.Pred
	// noPush lists stacks that must fall back for this predicate.
	noPush map[string]bool
} {
	all := func() map[string]bool { return map[string]bool{} }
	return []struct {
		name   string
		pred   relstore.Pred
		noPush map[string]bool
	}{
		{"eq-string", relstore.Eq("Smoking", relstore.Str("Current")), map[string]bool{"delim-untouched": true}},
		{"eq-bool", relstore.Eq("Hypoxia", relstore.Bool(true)), all()},
		{"truth-bool", relstore.Truth(relstore.Col("Hypoxia")), all()},
		{"ordered-float", relstore.Cmp(relstore.CmpGt, relstore.Col("PacksPerDay"), relstore.Lit(relstore.Float(1))), all()},
		{"ordered-mirrored", relstore.Cmp(relstore.CmpLe, relstore.Lit(relstore.Int(50)), relstore.Col("Age")), all()},
		{"is-null", relstore.IsNull(relstore.Col("Smoking")), map[string]bool{"delim-untouched": true}},
		{"is-not-null", relstore.IsNotNull(relstore.Col("PacksPerDay")), all()},
		{"eq-null", relstore.Eq("Alcohol", relstore.Null()), map[string]bool{"delim-untouched": true}},
		{"in-list", relstore.In(relstore.Col("Smoking"), relstore.Str("Current"), relstore.Str("Previous")), map[string]bool{"delim-untouched": true}},
		{"conjunction", relstore.And(
			relstore.Eq("Smoking", relstore.Str("Current")),
			relstore.Cmp(relstore.CmpGe, relstore.Col("Age"), relstore.Lit(relstore.Int(40))),
		), map[string]bool{"delim-untouched": true}},
		{"disjunction", relstore.Or(
			relstore.Eq("Hypoxia", relstore.Bool(true)),
			relstore.IsNull(relstore.Col("Smoking")),
		), map[string]bool{"delim-untouched": true}},
		{"negation", relstore.Not(relstore.Eq("Smoking", relstore.Str("None"))), map[string]bool{"delim-untouched": true}},
		{"unseen-label", relstore.Eq("Smoking", relstore.Str("NeverWritten")), map[string]bool{"delim-untouched": true}},
	}
}

// TestPushdownEquivalence: for every cooperative stack and every predicate
// shape, the pushed-down query returns exactly what the fallback
// (materialize-then-filter) path returns, and pushdown actually engaged.
func TestPushdownEquivalence(t *testing.T) {
	form, rows := testForm(t)
	for name, stack := range pushdownStacks(t) {
		db := relstore.NewDB("contrib")
		if err := stack.Install(db, form); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range rows {
			if err := stack.WriteRow(db, form, r); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		for _, pc := range pushdownPreds() {
			got, err := stack.QueryWithInfo(db, form, pc.pred, nil)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, pc.name, err)
			}
			want, err := stack.QueryNoPushdown(db, form, pc.pred, nil)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, pc.name, err)
			}
			if !got.Rows.EqualUnordered(want) {
				t.Errorf("%s/%s: pushdown result differs\npushed:\n%s\nfallback:\n%s",
					name, pc.name, got.Rows.Format(), want.Format())
			}
			wantPush := !pc.noPush[name]
			if got.PushedDown != wantPush {
				t.Errorf("%s/%s: PushedDown = %v, want %v", name, pc.name, got.PushedDown, wantPush)
			}
		}
	}
}

// TestPushdownFallsBackOnPackedColumns: predicates touching Delimited's
// packed columns must fall back, not fail.
func TestPushdownFallsBackOnPackedColumns(t *testing.T) {
	form, rows := testForm(t)
	stack := NewStack(Naive{}, &Delimited{Into: "packed", Columns: []string{"Smoking", "Alcohol"}})
	db := relstore.NewDB("x")
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	res, err := stack.QueryWithInfo(db, form, relstore.Eq("Smoking", relstore.Str("Current")), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PushedDown {
		t.Error("packed-column predicate must not push down")
	}
	if res.Rows.Len() != 2 {
		t.Errorf("rows = %d, want 2", res.Rows.Len())
	}
	// Age is not packed: pushes down.
	res, err = stack.QueryWithInfo(db, form, relstore.Cmp(relstore.CmpGt, relstore.Col("Age"), relstore.Lit(relstore.Int(60))), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PushedDown {
		t.Error("non-packed predicate must push down")
	}
}

// TestPushdownGenericFallsBack: the EAV layout has no filtered read; queries
// still work via fallback.
func TestPushdownGenericFallsBack(t *testing.T) {
	form, rows := testForm(t)
	stack := NewStack(Generic{}, &Audit{})
	db := relstore.NewDB("x")
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	res, err := stack.QueryWithInfo(db, form, relstore.Eq("Smoking", relstore.Str("Current")), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PushedDown {
		t.Error("Generic layout cannot push down")
	}
	if res.Rows.Len() != 2 {
		t.Errorf("rows = %d", res.Rows.Len())
	}
}

// TestPushdownSentinelOrderedGuard is the trap the Sentinel rewrite must not
// fall into: the sentinel (-9999) satisfies "PacksPerDay < 2" physically but
// represents NULL, which must not match.
func TestPushdownSentinelOrderedGuard(t *testing.T) {
	form, rows := testForm(t)
	stack := NewStack(Naive{}, &Sentinel{})
	db := relstore.NewDB("x")
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	res, err := stack.QueryWithInfo(db, form,
		relstore.Cmp(relstore.CmpLt, relstore.Col("PacksPerDay"), relstore.Lit(relstore.Float(2))), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PushedDown {
		t.Fatal("expected pushdown")
	}
	// Rows 2 (packs 0) and 4 (packs 1.5) match; row 3 (NULL) must not.
	if res.Rows.Len() != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", res.Rows.Len(), res.Rows.Format())
	}
	for _, r := range res.Rows.Data {
		if r[0].Equal(relstore.Int(3)) {
			t.Error("NULL row matched ordered comparison via sentinel")
		}
	}
}

// TestPushdownPropertyRandom: quick-check that pushdown ≡ fallback over
// random data and random simple predicates, across three stacks.
func TestPushdownPropertyRandom(t *testing.T) {
	form, _ := testForm(t)
	stacks := []*Stack{
		NewStack(Naive{}, &Sentinel{}),
		NewStack(Naive{}, &Lookup{Columns: []string{"Smoking"}}),
		NewStack(Naive{}, &Audit{}, &Encode{}),
	}
	statuses := []string{"Current", "None", "Previous"}
	f := func(keys []uint8, packs []int8, smoke []uint8, threshold int8, pickStatus uint8) bool {
		db := relstore.NewDB("prop")
		stack := stacks[int(pickStatus)%len(stacks)]
		if err := stack.Install(db, form); err != nil {
			return false
		}
		seen := map[uint8]bool{}
		for i, k := range keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			var p relstore.Value
			if i < len(packs) && packs[i] >= 0 {
				p = relstore.Float(float64(packs[i]))
			} else {
				p = relstore.Null()
			}
			var sm relstore.Value
			if i < len(smoke) && smoke[i]%4 != 3 {
				sm = relstore.Str(statuses[int(smoke[i])%3])
			} else {
				sm = relstore.Null()
			}
			row := relstore.Row{relstore.Int(int64(k)), sm, p, relstore.Bool(i%2 == 0), relstore.Null(), relstore.Int(int64(i))}
			if err := stack.WriteRow(db, form, row); err != nil {
				return false
			}
		}
		pred := relstore.Or(
			relstore.And(
				relstore.Eq("Smoking", relstore.Str(statuses[int(pickStatus)%3])),
				relstore.Cmp(relstore.CmpGe, relstore.Col("PacksPerDay"), relstore.Lit(relstore.Int(int64(threshold)))),
			),
			relstore.IsNull(relstore.Col("Smoking")),
		)
		got, err := stack.QueryWithInfo(db, form, pred, nil)
		if err != nil {
			return false
		}
		want, err := stack.QueryNoPushdown(db, form, pred, nil)
		if err != nil {
			return false
		}
		return got.Rows.EqualUnordered(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPredColumns covers the column-collection helper.
func TestPredColumns(t *testing.T) {
	p := relstore.And(
		relstore.Eq("A", relstore.Int(1)),
		relstore.Or(
			relstore.IsNull(relstore.Col("B")),
			relstore.Truth(relstore.Col("C")),
		),
		relstore.Cmp(relstore.CmpLt, relstore.Arith(relstore.OpAdd, relstore.Col("D"), relstore.Col("A")), relstore.Lit(relstore.Int(9))),
	)
	got := relstore.PredColumns(p)
	want := []string{"A", "B", "C", "D"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("PredColumns = %v, want %v", got, want)
	}
}
