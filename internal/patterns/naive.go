package patterns

import (
	"fmt"

	"guava/internal/relstore"
)

// Naive is the identity layout of Table 1: the physical database is exactly
// the in-memory naive schema — one table per form, one column per control.
type Naive struct{}

// Name implements Layout.
func (Naive) Name() string { return "Naive" }

// Describe implements Layout.
func (Naive) Describe() string {
	return "No transformations are applied to the data — this is just the in-memory database."
}

// Install implements Layout. The form's key column gets a hash index so
// key-equality queries and updates probe instead of scanning.
func (Naive) Install(db *relstore.DB, form FormInfo) error {
	t, err := db.EnsureTable(form.Name, form.Schema)
	if err != nil {
		return err
	}
	return t.CreateIndex(form.KeyColumn)
}

// Write implements Layout.
func (Naive) Write(db *relstore.DB, form FormInfo, row relstore.Row) error {
	t, err := db.Table(form.Name)
	if err != nil {
		return err
	}
	return t.Insert(row)
}

// Read implements Layout.
func (Naive) Read(db *relstore.DB, form FormInfo) (*relstore.Rows, error) {
	t, err := db.Table(form.Name)
	if err != nil {
		return nil, err
	}
	return t.Rows(), nil
}

// ReadKeys implements KeyedReader: one index probe per key against the hash
// index Install created.
func (Naive) ReadKeys(db *relstore.DB, form FormInfo, keys []relstore.Value) (*relstore.Rows, error) {
	t, err := db.Table(form.Name)
	if err != nil {
		return nil, err
	}
	var data []relstore.Row
	for _, k := range keys {
		rows, err := t.Lookup(form.KeyColumn, k)
		if err != nil {
			return nil, err
		}
		data = append(data, rows...)
	}
	return &relstore.Rows{Schema: t.Schema(), Data: data}, nil
}

// Update implements Layout.
func (Naive) Update(db *relstore.DB, form FormInfo, key relstore.Value, col string, v relstore.Value) (int, error) {
	t, err := db.Table(form.Name)
	if err != nil {
		return 0, err
	}
	i := t.Schema().Index(col)
	if i < 0 {
		return 0, fmt.Errorf("patterns: naive update: no column %q", col)
	}
	return t.Update(relstore.Eq(form.KeyColumn, key), func(r relstore.Row) relstore.Row {
		r[i] = v
		return r
	})
}

// PhysicalTables implements Layout.
func (Naive) PhysicalTables(form FormInfo) []string { return []string{form.Name} }
