package patterns

import (
	"fmt"

	"guava/internal/relstore"
)

// Encode is the pattern where boolean answers are stored as coded strings —
// clinical tools commonly store "Y"/"N" characters rather than a boolean
// type. Every boolean naive column (key excluded) becomes a TEXT column
// physically.
type Encode struct {
	// TrueCode and FalseCode are the stored strings (defaults "Y" and "N").
	TrueCode, FalseCode string
}

func (e *Encode) codes() (string, string) {
	t, f := e.TrueCode, e.FalseCode
	if t == "" {
		t = "Y"
	}
	if f == "" {
		f = "N"
	}
	return t, f
}

// Name implements Transform.
func (*Encode) Name() string { return "Encode" }

// Describe implements Transform.
func (*Encode) Describe() string {
	return "Boolean answers are stored as coded strings (e.g. 'Y'/'N') rather than a boolean type."
}

// Adapt implements Transform.
func (e *Encode) Adapt(form FormInfo) (FormInfo, error) {
	tc, fc := e.codes()
	if tc == fc {
		return FormInfo{}, fmt.Errorf("encode: true and false codes are both %q", tc)
	}
	cols := make([]relstore.Column, form.Schema.Arity())
	for i, c := range form.Schema.Columns {
		if c.Type == relstore.KindBool {
			c.Type = relstore.KindString
		}
		cols[i] = c
	}
	s, err := relstore.NewSchema(cols...)
	if err != nil {
		return FormInfo{}, err
	}
	return FormInfo{Name: form.Name, KeyColumn: form.KeyColumn, Schema: s}, nil
}

// Install implements Transform.
func (*Encode) Install(*relstore.DB, FormInfo, FormInfo) error { return nil }

func (e *Encode) encodeValue(v relstore.Value) relstore.Value {
	if v.IsNull() || v.Kind() != relstore.KindBool {
		return v
	}
	tc, fc := e.codes()
	if v.AsBool() {
		return relstore.Str(tc)
	}
	return relstore.Str(fc)
}

// Encode implements Transform.
func (e *Encode) Encode(_ *relstore.DB, outer, _ FormInfo, row relstore.Row) (relstore.Row, error) {
	out := make(relstore.Row, len(row))
	for i, v := range row {
		if outer.Schema.Columns[i].Type == relstore.KindBool {
			out[i] = e.encodeValue(v)
		} else {
			out[i] = v
		}
	}
	return out, nil
}

// Decode implements Transform.
func (e *Encode) Decode(_ *relstore.DB, outer, inner FormInfo, rows *relstore.Rows) (*relstore.Rows, error) {
	ordered, err := relstore.Project(rows, inner.Schema.Names()...)
	if err != nil {
		return nil, err
	}
	tc, fc := e.codes()
	data := make([]relstore.Row, len(ordered.Data))
	for r, row := range ordered.Data {
		nr := make(relstore.Row, len(row))
		for i, v := range row {
			if outer.Schema.Columns[i].Type == relstore.KindBool && !v.IsNull() {
				switch v.Display() {
				case tc:
					nr[i] = relstore.Bool(true)
				case fc:
					nr[i] = relstore.Bool(false)
				default:
					return nil, fmt.Errorf("encode: column %q holds %q, expected %q or %q",
						outer.Schema.Columns[i].Name, v.Display(), tc, fc)
				}
			} else {
				nr[i] = v
			}
		}
		data[r] = nr
	}
	return &relstore.Rows{Schema: outer.Schema, Data: data}, nil
}

// AdaptUpdate implements Transform.
func (e *Encode) AdaptUpdate(_ *relstore.DB, outer, _ FormInfo, col string, v relstore.Value) (string, relstore.Value, error) {
	if c, err := outer.Schema.Col(col); err == nil && c.Type == relstore.KindBool {
		return col, e.encodeValue(v), nil
	}
	return col, v, nil
}
