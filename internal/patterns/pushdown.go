package patterns

import (
	"guava/internal/relstore"
)

// Predicate pushdown: translating a g-tree query's WHERE clause through the
// pattern stack so filtering happens at the physical scan instead of after
// view reconstruction — the paper's "we can translate queries specified
// against the g-tree into predefined SQL queries … that depend on the
// database patterns used". Every rewrite here is conservative: a transform
// that cannot translate a predicate exactly reports !ok and the stack falls
// back to filtering the decoded view (always correct, just slower).

// PredRewriter is implemented by transforms that can translate an
// outer-schema predicate into the inner schema.
type PredRewriter interface {
	RewritePred(db *relstore.DB, outer, inner FormInfo, p relstore.Pred) (relstore.Pred, bool)
}

// FilteredReader is implemented by layouts that can apply a predicate during
// the physical scan.
type FilteredReader interface {
	ReadWhere(db *relstore.DB, form FormInfo, pred relstore.Pred) (*relstore.Rows, error)
}

// QueryResult carries a query's rows plus how it was executed, for Explain
// output and the pushdown ablation benchmarks.
type QueryResult struct {
	Rows *relstore.Rows
	// PushedDown reports whether the predicate was translated to the
	// physical scan.
	PushedDown bool
}

// QueryWithInfo is Query, reporting whether pushdown happened.
func (s *Stack) QueryWithInfo(db *relstore.DB, form FormInfo, pred relstore.Pred, cols []string) (QueryResult, error) {
	rows, pushed, err := s.read(db, form, pred, true)
	if err != nil {
		return QueryResult{}, err
	}
	// The outer predicate is re-applied after decode: with an exact rewrite
	// this is a no-op over an already-filtered subset; it also makes the
	// fallback path and the pushdown path share one correctness contract.
	rows, err = relstore.Select(rows, pred)
	if err != nil {
		return QueryResult{}, err
	}
	if cols != nil {
		rows, err = relstore.Project(rows, cols...)
		if err != nil {
			return QueryResult{}, err
		}
	}
	return QueryResult{Rows: rows, PushedDown: pushed}, nil
}

// read reconstructs the naive relation; when usePushdown is set and every
// layer cooperates, the predicate is rewritten inward and applied at the
// physical scan.
func (s *Stack) read(db *relstore.DB, form FormInfo, pred relstore.Pred, usePushdown bool) (*relstore.Rows, bool, error) {
	infos, err := s.adaptAll(form)
	if err != nil {
		return nil, false, err
	}
	var rows *relstore.Rows
	pushed := false
	if usePushdown && pred != nil {
		if inner, ok := s.rewriteInward(db, infos, pred); ok {
			if fr, ok := s.Layout.(FilteredReader); ok {
				rows, err = fr.ReadWhere(db, infos[len(infos)-1], inner)
				if err != nil {
					return nil, false, err
				}
				pushed = true
			}
		}
	}
	if rows == nil {
		rows, err = s.Layout.Read(db, infos[len(infos)-1])
		if err != nil {
			return nil, false, err
		}
	}
	for i := len(s.Transforms) - 1; i >= 0; i-- {
		rows, err = s.Transforms[i].Decode(db, infos[i], infos[i+1], rows)
		if err != nil {
			return nil, false, err
		}
	}
	rows, err = Conform(rows, form.Schema)
	if err != nil {
		return nil, false, err
	}
	return rows, pushed, nil
}

// rewriteInward pushes a predicate through every transform, outermost first.
func (s *Stack) rewriteInward(db *relstore.DB, infos []FormInfo, pred relstore.Pred) (relstore.Pred, bool) {
	cur := pred
	for i, t := range s.Transforms {
		pr, ok := t.(PredRewriter)
		if !ok {
			return nil, false
		}
		next, ok := pr.RewritePred(db, infos[i], infos[i+1], cur)
		if !ok {
			return nil, false
		}
		cur = next
	}
	return cur, true
}

// --- Layout-side filtered reads ---

// ReadWhere implements FilteredReader for the Naive layout.
func (Naive) ReadWhere(db *relstore.DB, form FormInfo, pred relstore.Pred) (*relstore.Rows, error) {
	t, err := db.Table(form.Name)
	if err != nil {
		return nil, err
	}
	return t.Select(pred)
}

// ReadWhere implements FilteredReader for the Merge layout: the pushed
// predicate conjoins with the discriminator filter at scan time.
func (m *Merge) ReadWhere(db *relstore.DB, form FormInfo, pred relstore.Pred) (*relstore.Rows, error) {
	if err := m.knows(form); err != nil {
		return nil, err
	}
	t, err := db.Table(m.Table)
	if err != nil {
		return nil, err
	}
	mine, err := t.Select(relstore.And(relstore.Eq(m.Discriminator, relstore.Str(form.Name)), pred))
	if err != nil {
		return nil, err
	}
	return relstore.Project(mine, form.Schema.Names()...)
}

// ReadWhere implements FilteredReader for Partitioned when the base layout
// filters: each partition scans with the predicate, results union.
func (p *Partitioned) ReadWhere(db *relstore.DB, form FormInfo, pred relstore.Pred) (*relstore.Rows, error) {
	fr, ok := p.Base.(FilteredReader)
	if !ok {
		// Fall back to the unfiltered read; Stack re-applies the predicate.
		return p.Read(db, form)
	}
	if err := p.check(); err != nil {
		return nil, err
	}
	parts := make([]*relstore.Rows, 0, p.N)
	for i := 0; i < p.N; i++ {
		r, err := fr.ReadWhere(db, p.partForm(form, i), pred)
		if err != nil {
			return nil, err
		}
		r, err = relstore.Project(r, form.Schema.Names()...)
		if err != nil {
			return nil, err
		}
		parts = append(parts, r)
	}
	return relstore.UnionAll(parts...)
}

// --- Transform-side predicate rewrites ---

// RewritePred implements PredRewriter for Audit: the inner schema is a
// superset of the outer one, so predicates pass through; Decode still strips
// deprecated rows afterwards. Conjoining the liveness filter here lets the
// physical scan skip dead rows too.
func (a *Audit) RewritePred(_ *relstore.DB, _, _ FormInfo, p relstore.Pred) (relstore.Pred, bool) {
	return relstore.And(relstore.Eq(a.column(), relstore.Int(0)), p), true
}

// RewritePred implements PredRewriter for Rename: column references map to
// their physical names.
func (r *Rename) RewritePred(_ *relstore.DB, _, _ FormInfo, p relstore.Pred) (relstore.Pred, bool) {
	return relstore.RewritePredWith(p, func(e relstore.Expr) (relstore.Expr, bool) {
		if c, ok := e.(relstore.ColRef); ok {
			return relstore.Col(r.physical(c.Name)), true
		}
		return e, true
	})
}

// exprIsCol returns the column name when the expression is a bare reference.
func exprIsCol(e relstore.Expr) (string, bool) {
	c, ok := e.(relstore.ColRef)
	return c.Name, ok
}

// exprIsLit returns the literal value when the expression is a constant.
func exprIsLit(e relstore.Expr) (relstore.Value, bool) {
	l, ok := e.(relstore.LitExpr)
	return l.V, ok
}

// RewritePred implements PredRewriter for Encode: comparisons and truth
// tests on boolean columns translate to their coded strings; any other use
// of a boolean column aborts the pushdown.
func (e *Encode) RewritePred(_ *relstore.DB, outer, _ FormInfo, p relstore.Pred) (relstore.Pred, bool) {
	isBool := func(name string) bool {
		c, err := outer.Schema.Col(name)
		return err == nil && c.Type == relstore.KindBool
	}
	return relstore.MapPredNodes(p, func(node relstore.Pred) (relstore.Pred, bool) {
		switch x := node.(type) {
		case relstore.AndPred, relstore.OrPred, relstore.NotPred, relstore.BoolLit:
			// Composites arrive with already-rewritten children.
			return node, true
		case relstore.CmpPred:
			lc, lIsCol := exprIsCol(x.L)
			rv, rIsLit := exprIsLit(x.R)
			if lIsCol && rIsLit && isBool(lc) {
				if x.Op != relstore.CmpEq && x.Op != relstore.CmpNe {
					return nil, false
				}
				if rv.IsNull() {
					return x, true // NULL compares unchanged
				}
				if rv.Kind() != relstore.KindBool {
					return nil, false
				}
				return relstore.Cmp(x.Op, x.L, relstore.Lit(e.encodeValue(rv))), true
			}
			rc, rIsCol := exprIsCol(x.R)
			lv, lIsLit := exprIsLit(x.L)
			if rIsCol && lIsLit && isBool(rc) {
				if x.Op != relstore.CmpEq && x.Op != relstore.CmpNe {
					return nil, false
				}
				if lv.IsNull() {
					return x, true
				}
				if lv.Kind() != relstore.KindBool {
					return nil, false
				}
				return relstore.Cmp(x.Op, relstore.Lit(e.encodeValue(lv)), x.R), true
			}
			// Comparisons not touching boolean columns pass through.
			for _, col := range relstore.PredColumns(x) {
				if isBool(col) {
					return nil, false
				}
			}
			return x, true
		case relstore.ExprPred:
			if name, ok := exprIsCol(x.E); ok && isBool(name) {
				tc, _ := e.codes()
				return relstore.Eq(name, relstore.Str(tc)), true
			}
			for _, col := range relstore.PredColumns(x) {
				if isBool(col) {
					return nil, false
				}
			}
			return x, true
		case relstore.NullPred:
			return x, true // NULL-ness is unchanged by encoding
		case relstore.InPred:
			if name, ok := exprIsCol(x.E); ok && isBool(name) {
				list := make([]relstore.Value, len(x.List))
				for i, v := range x.List {
					if v.Kind() != relstore.KindBool {
						return nil, false
					}
					list[i] = e.encodeValue(v)
				}
				return relstore.In(x.E, list...), true
			}
			return x, true
		default:
			// And/Or/Not handled by MapPredNodes; literals pass.
			for _, col := range relstore.PredColumns(node) {
				if isBool(col) {
					return nil, false
				}
			}
			return node, true
		}
	})
}

// RewritePred implements PredRewriter for Sentinel. NULL tests become
// sentinel comparisons; ordered comparisons gain a "not the sentinel" guard
// (the sentinel is numerically small and would otherwise match); boolean
// columns translate to their 0/1 integers.
func (s *Sentinel) RewritePred(_ *relstore.DB, outer, _ FormInfo, p relstore.Pred) (relstore.Pred, bool) {
	colType := func(name string) (relstore.Kind, bool) {
		c, err := outer.Schema.Col(name)
		if err != nil {
			return 0, false
		}
		return c.Type, true
	}
	sentinelFor := func(t relstore.Kind) relstore.Value {
		switch t {
		case relstore.KindInt, relstore.KindBool:
			return relstore.Int(s.intCode())
		case relstore.KindFloat:
			return relstore.Float(s.floatCode())
		case relstore.KindString:
			return relstore.Str(s.stringCode())
		default:
			return relstore.Null()
		}
	}
	guard := func(name string, t relstore.Kind, inner relstore.Pred) relstore.Pred {
		if name == outer.KeyColumn {
			return inner // keys are never NULL, never sentinel
		}
		return relstore.And(relstore.Cmp(relstore.CmpNe, relstore.Col(name), relstore.Lit(sentinelFor(t))), inner)
	}
	rewriteCmp := func(x relstore.CmpPred, col string, lit relstore.Value, colOnLeft bool) (relstore.Pred, bool) {
		t, ok := colType(col)
		if !ok {
			return nil, false
		}
		if lit.IsNull() {
			// col = NULL ⇒ col = sentinel; col <> NULL ⇒ col <> sentinel.
			switch x.Op {
			case relstore.CmpEq:
				return relstore.Eq(col, sentinelFor(t)), true
			case relstore.CmpNe:
				return relstore.Cmp(relstore.CmpNe, relstore.Col(col), relstore.Lit(sentinelFor(t))), true
			default:
				// Ordered comparison with NULL is constant false.
				return relstore.False, true
			}
		}
		if t == relstore.KindBool {
			if lit.Kind() != relstore.KindBool || (x.Op != relstore.CmpEq && x.Op != relstore.CmpNe) {
				return nil, false
			}
			v := relstore.Int(0)
			if lit.AsBool() {
				v = relstore.Int(1)
			}
			return relstore.Cmp(x.Op, relstore.Col(col), relstore.Lit(v)), true
		}
		var np relstore.Pred
		if colOnLeft {
			np = relstore.Cmp(x.Op, relstore.Col(col), relstore.Lit(lit))
		} else {
			np = relstore.Cmp(x.Op, relstore.Lit(lit), relstore.Col(col))
		}
		switch x.Op {
		case relstore.CmpEq:
			return np, true // a live value never equals the sentinel
		default:
			return guard(col, t, np), true
		}
	}
	return relstore.MapPredNodes(p, func(node relstore.Pred) (relstore.Pred, bool) {
		switch x := node.(type) {
		case relstore.BoolLit:
			return x, true
		case relstore.CmpPred:
			if col, ok := exprIsCol(x.L); ok {
				if lit, ok := exprIsLit(x.R); ok {
					return rewriteCmp(x, col, lit, true)
				}
			}
			if col, ok := exprIsCol(x.R); ok {
				if lit, ok := exprIsLit(x.L); ok {
					return rewriteCmp(x, col, lit, false)
				}
			}
			return nil, false
		case relstore.NullPred:
			col, ok := exprIsCol(x.E)
			if !ok {
				return nil, false
			}
			t, ok := colType(col)
			if !ok {
				return nil, false
			}
			if x.Negate {
				return relstore.Cmp(relstore.CmpNe, relstore.Col(col), relstore.Lit(sentinelFor(t))), true
			}
			return relstore.Eq(col, sentinelFor(t)), true
		case relstore.InPred:
			col, ok := exprIsCol(x.E)
			if !ok {
				return nil, false
			}
			t, ok := colType(col)
			if !ok || t == relstore.KindBool {
				return nil, false
			}
			for _, v := range x.List {
				if v.IsNull() {
					return nil, false
				}
			}
			return guard(col, t, x), true
		case relstore.ExprPred:
			col, ok := exprIsCol(x.E)
			if !ok {
				return nil, false
			}
			if t, _ := colType(col); t == relstore.KindBool {
				return relstore.Eq(col, relstore.Int(1)), true
			}
			return nil, false
		default:
			return node, true
		}
	})
}

// RewritePred implements PredRewriter for Lookup: equality and IN over coded
// columns translate to their dimension-table codes (an unseen label can
// match nothing, so it folds to FALSE); ordered string comparisons abort.
func (l *Lookup) RewritePred(db *relstore.DB, outer, _ FormInfo, p relstore.Pred) (relstore.Pred, bool) {
	coded, err := l.applies(outer)
	if err != nil {
		return nil, false
	}
	lookupCode := func(col, label string) (relstore.Value, bool) {
		t, err := db.Table(lookupTable(outer, col))
		if err != nil {
			return relstore.Null(), false
		}
		rows, err := t.Lookup("Label", relstore.Str(label))
		if err != nil {
			return relstore.Null(), false
		}
		if len(rows) == 0 {
			return relstore.Null(), true // no such label anywhere
		}
		return rows[0][0], true
	}
	return relstore.MapPredNodes(p, func(node relstore.Pred) (relstore.Pred, bool) {
		switch x := node.(type) {
		case relstore.AndPred, relstore.OrPred, relstore.NotPred, relstore.BoolLit:
			// Composites arrive with already-rewritten children.
			return node, true
		case relstore.CmpPred:
			col, lok := exprIsCol(x.L)
			lit, rok := exprIsLit(x.R)
			if !lok || !rok {
				// Try the mirrored orientation.
				if c2, ok := exprIsCol(x.R); ok {
					if v2, ok := exprIsLit(x.L); ok {
						col, lit, lok, rok = c2, v2, true, true
					}
				}
			}
			if lok && rok && coded[col] {
				if lit.IsNull() {
					return x, true // NULL comparisons unchanged (codes keep NULL)
				}
				if x.Op != relstore.CmpEq && x.Op != relstore.CmpNe {
					return nil, false // ordered comparisons over codes lie
				}
				code, ok := lookupCode(col, lit.Display())
				if !ok {
					return nil, false
				}
				if code.IsNull() {
					// Label never written: = matches nothing, <> matches all
					// non-NULLs.
					if x.Op == relstore.CmpEq {
						return relstore.False, true
					}
					return relstore.Pred(relstore.True), true
				}
				return relstore.Cmp(x.Op, relstore.Col(col), relstore.Lit(code)), true
			}
			// Untouched columns pass through.
			for _, c := range relstore.PredColumns(x) {
				if coded[c] {
					return nil, false
				}
			}
			return x, true
		case relstore.NullPred:
			return x, true
		case relstore.InPred:
			col, ok := exprIsCol(x.E)
			if !ok || !coded[col] {
				for _, c := range relstore.PredColumns(x) {
					if coded[c] {
						return nil, false
					}
				}
				return x, true
			}
			var list []relstore.Value
			for _, v := range x.List {
				code, ok := lookupCode(col, v.Display())
				if !ok {
					return nil, false
				}
				if !code.IsNull() {
					list = append(list, code)
				}
			}
			if len(list) == 0 {
				return relstore.False, true
			}
			return relstore.In(x.E, list...), true
		default:
			for _, c := range relstore.PredColumns(node) {
				if coded[c] {
					return nil, false
				}
			}
			return node, true
		}
	})
}

// RewritePred implements PredRewriter for Delimited: predicates that avoid
// the packed columns pass through; anything touching them aborts.
func (d *Delimited) RewritePred(_ *relstore.DB, _, _ FormInfo, p relstore.Pred) (relstore.Pred, bool) {
	packed := map[string]bool{}
	for _, c := range d.Columns {
		packed[c] = true
	}
	for _, col := range relstore.PredColumns(p) {
		if packed[col] {
			return nil, false
		}
	}
	return p, true
}
