package patterns

import (
	"fmt"
	"sort"

	"guava/internal/relstore"
)

// Lookup is the pattern where categorical answers are stored as integer
// codes with a dimension table mapping codes to labels — the classic
// star-schema trick vendor tools use for drop-down answers. Each configured
// string column C of a form gets a side table "<form>_<C>_lookup(Code,
// Label)"; the fact table stores the code.
type Lookup struct {
	// Columns names the string columns stored as codes.
	Columns []string
}

// Name implements Transform.
func (*Lookup) Name() string { return "Lookup" }

// Describe implements Transform.
func (*Lookup) Describe() string {
	return "Categorical answers are stored as integer codes resolved through per-column lookup tables."
}

func lookupTable(form FormInfo, col string) string {
	return fmt.Sprintf("%s_%s_lookup", form.Name, col)
}

var lookupSchema = relstore.MustSchema(
	relstore.Column{Name: "Code", Type: relstore.KindInt, NotNull: true},
	relstore.Column{Name: "Label", Type: relstore.KindString, NotNull: true},
)

func (l *Lookup) applies(form FormInfo) (map[string]bool, error) {
	m := make(map[string]bool, len(l.Columns))
	for _, col := range l.Columns {
		c, err := form.Schema.Col(col)
		if err != nil {
			return nil, fmt.Errorf("lookup: %w", err)
		}
		if c.Type != relstore.KindString {
			return nil, fmt.Errorf("lookup: column %q is %s, only TEXT columns can be coded", col, c.Type)
		}
		if col == form.KeyColumn {
			return nil, fmt.Errorf("lookup: key column cannot be coded")
		}
		m[col] = true
	}
	return m, nil
}

// Adapt implements Transform: coded columns become integers.
func (l *Lookup) Adapt(form FormInfo) (FormInfo, error) {
	coded, err := l.applies(form)
	if err != nil {
		return FormInfo{}, err
	}
	cols := make([]relstore.Column, form.Schema.Arity())
	for i, c := range form.Schema.Columns {
		if coded[c.Name] {
			c.Type = relstore.KindInt
		}
		cols[i] = c
	}
	schema, err := relstore.NewSchema(cols...)
	if err != nil {
		return FormInfo{}, err
	}
	return FormInfo{Name: form.Name, KeyColumn: form.KeyColumn, Schema: schema}, nil
}

// SideTables lists the dimension tables, for Stack.PhysicalTables.
func (l *Lookup) SideTables(form FormInfo) []string {
	out := make([]string, len(l.Columns))
	for i, col := range l.Columns {
		out[i] = lookupTable(form, col)
	}
	sort.Strings(out)
	return out
}

// Install implements Transform: create the dimension tables.
func (l *Lookup) Install(db *relstore.DB, outer, _ FormInfo) error {
	if _, err := l.applies(outer); err != nil {
		return err
	}
	for _, col := range l.Columns {
		if _, err := db.EnsureTable(lookupTable(outer, col), lookupSchema); err != nil {
			return err
		}
	}
	return nil
}

// codeFor returns the code for a label, allocating a new one when absent.
func (l *Lookup) codeFor(db *relstore.DB, outer FormInfo, col, label string) (int64, error) {
	t, err := db.Table(lookupTable(outer, col))
	if err != nil {
		return 0, err
	}
	rows, err := t.Lookup("Label", relstore.Str(label))
	if err != nil {
		return 0, err
	}
	if len(rows) > 0 {
		return rows[0][0].AsInt(), nil
	}
	code := int64(t.Len() + 1)
	if err := t.Insert(relstore.Row{relstore.Int(code), relstore.Str(label)}); err != nil {
		return 0, err
	}
	return code, nil
}

// labelFor resolves a code back to its label.
func (l *Lookup) labelFor(db *relstore.DB, outer FormInfo, col string, code int64) (string, error) {
	t, err := db.Table(lookupTable(outer, col))
	if err != nil {
		return "", err
	}
	rows, err := t.Lookup("Code", relstore.Int(code))
	if err != nil {
		return "", err
	}
	if len(rows) == 0 {
		return "", fmt.Errorf("lookup: dangling code %d in %s", code, lookupTable(outer, col))
	}
	return rows[0][1].AsString(), nil
}

// Encode implements Transform.
func (l *Lookup) Encode(db *relstore.DB, outer, _ FormInfo, row relstore.Row) (relstore.Row, error) {
	coded, err := l.applies(outer)
	if err != nil {
		return nil, err
	}
	out := make(relstore.Row, len(row))
	for i, v := range row {
		name := outer.Schema.Columns[i].Name
		if !coded[name] || v.IsNull() {
			out[i] = v
			continue
		}
		code, err := l.codeFor(db, outer, name, v.AsString())
		if err != nil {
			return nil, err
		}
		out[i] = relstore.Int(code)
	}
	return out, nil
}

// Decode implements Transform.
func (l *Lookup) Decode(db *relstore.DB, outer, inner FormInfo, rows *relstore.Rows) (*relstore.Rows, error) {
	coded, err := l.applies(outer)
	if err != nil {
		return nil, err
	}
	ordered, err := relstore.Project(rows, inner.Schema.Names()...)
	if err != nil {
		return nil, err
	}
	data := make([]relstore.Row, len(ordered.Data))
	for r, row := range ordered.Data {
		nr := make(relstore.Row, len(row))
		for i, v := range row {
			name := outer.Schema.Columns[i].Name
			if !coded[name] || v.IsNull() {
				nr[i] = v
				continue
			}
			label, err := l.labelFor(db, outer, name, v.AsInt())
			if err != nil {
				return nil, err
			}
			nr[i] = relstore.Str(label)
		}
		data[r] = nr
	}
	return &relstore.Rows{Schema: outer.Schema, Data: data}, nil
}

// AdaptUpdate implements Transform.
func (l *Lookup) AdaptUpdate(db *relstore.DB, outer, _ FormInfo, col string, v relstore.Value) (string, relstore.Value, error) {
	coded, err := l.applies(outer)
	if err != nil {
		return "", relstore.Null(), err
	}
	if !coded[col] || v.IsNull() {
		return col, v, nil
	}
	code, err := l.codeFor(db, outer, col, v.AsString())
	if err != nil {
		return "", relstore.Null(), err
	}
	return col, relstore.Int(code), nil
}
