package patterns

import (
	"fmt"

	"guava/internal/relstore"
)

// Partitioned horizontally partitions a base layout: records route to one of
// N partitions by key, each partition holding a full copy of the base
// layout's table design (suffix "_p<i>"). Clinics and multi-site reporting
// tools shard physical tables this way by site or time period; reading a
// form unions the per-partition reads.
type Partitioned struct {
	// Base is the layout replicated per partition.
	Base Layout
	// N is the partition count (at least 1).
	N int
}

// Name implements Layout.
func (p *Partitioned) Name() string { return fmt.Sprintf("Partitioned(%d)×%s", p.N, p.Base.Name()) }

// Describe implements Layout.
func (p *Partitioned) Describe() string {
	return fmt.Sprintf("Rows are horizontally partitioned across %d copies of the %s layout by form key; reading unions the partitions.", p.N, p.Base.Name())
}

func (p *Partitioned) check() error {
	if p.N < 1 {
		return fmt.Errorf("patterns: partitioned layout needs N >= 1, got %d", p.N)
	}
	return nil
}

func (p *Partitioned) partForm(form FormInfo, i int) FormInfo {
	return FormInfo{Name: fmt.Sprintf("%s_p%d", form.Name, i), KeyColumn: form.KeyColumn, Schema: form.Schema}
}

func (p *Partitioned) route(form FormInfo, key relstore.Value) (int, error) {
	if key.Kind() != relstore.KindInt {
		return 0, fmt.Errorf("patterns: partitioned layout requires integer keys, got %s", key)
	}
	k := key.AsInt() % int64(p.N)
	if k < 0 {
		k += int64(p.N)
	}
	return int(k), nil
}

// Install implements Layout.
func (p *Partitioned) Install(db *relstore.DB, form FormInfo) error {
	if err := p.check(); err != nil {
		return err
	}
	for i := 0; i < p.N; i++ {
		if err := p.Base.Install(db, p.partForm(form, i)); err != nil {
			return err
		}
	}
	return nil
}

// Write implements Layout.
func (p *Partitioned) Write(db *relstore.DB, form FormInfo, row relstore.Row) error {
	if err := p.check(); err != nil {
		return err
	}
	key := row[form.Schema.Index(form.KeyColumn)]
	i, err := p.route(form, key)
	if err != nil {
		return err
	}
	return p.Base.Write(db, p.partForm(form, i), row)
}

// Read implements Layout.
func (p *Partitioned) Read(db *relstore.DB, form FormInfo) (*relstore.Rows, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	parts := make([]*relstore.Rows, 0, p.N)
	for i := 0; i < p.N; i++ {
		r, err := p.Base.Read(db, p.partForm(form, i))
		if err != nil {
			return nil, err
		}
		// Conform column order across partitions before union.
		r, err = relstore.Project(r, form.Schema.Names()...)
		if err != nil {
			return nil, err
		}
		parts = append(parts, r)
	}
	return relstore.UnionAll(parts...)
}

// Update implements Layout.
func (p *Partitioned) Update(db *relstore.DB, form FormInfo, key relstore.Value, col string, v relstore.Value) (int, error) {
	if err := p.check(); err != nil {
		return 0, err
	}
	i, err := p.route(form, key)
	if err != nil {
		return 0, err
	}
	return p.Base.Update(db, p.partForm(form, i), key, col, v)
}

// PhysicalTables implements Layout.
func (p *Partitioned) PhysicalTables(form FormInfo) []string {
	var out []string
	for i := 0; i < p.N; i++ {
		out = append(out, p.Base.PhysicalTables(p.partForm(form, i))...)
	}
	return out
}
