package patterns

import (
	"fmt"
	"sort"
	"sync"

	"guava/internal/relstore"
)

// Journal is the change-capture side of the Audit discipline: every write,
// update, and deprecation that lands through a Stack is stamped with a
// monotone sequence number and the instance key it touched, into a
// "<form>__changes" table in the contributor database. An incremental
// refresh reads that log instead of re-extracting the whole relation — the
// per-row change timestamps the paper's Audit pattern models, turned into a
// queryable feed (see etl.DeltaSource).
//
// The sequence is the journal table's own length, assigned under the
// journal's mutex, so replaying the same entry/mutation order (the workload
// generators are seed-deterministic) reproduces the same sequence numbers —
// which is what lets a high-water-mark cursor persisted by one process
// remain valid in the next.
type Journal struct {
	mu sync.Mutex
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// journalTable names the change-log table backing a form.
func journalTable(form FormInfo) string { return form.Name + "__changes" }

// journalSchema is the log's shape: the sequence stamp and the touched key,
// typed after the form's own key column.
func journalSchema(form FormInfo) (*relstore.Schema, error) {
	kc, err := form.Schema.Col(form.KeyColumn)
	if err != nil {
		return nil, err
	}
	return relstore.NewSchema(
		relstore.Column{Name: "Seq", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: kc.Name, Type: kc.Type, NotNull: true},
	)
}

// table returns the form's change-log table, creating it on first use.
func (j *Journal) table(db *relstore.DB, form FormInfo) (*relstore.Table, error) {
	schema, err := journalSchema(form)
	if err != nil {
		return nil, err
	}
	return db.EnsureTable(journalTable(form), schema)
}

// Record appends one change entry for the given instance key. NULL keys are
// ignored — a record without an identity cannot be re-read by key, and the
// quarantine path owns it.
func (j *Journal) Record(db *relstore.DB, form FormInfo, key relstore.Value) error {
	if key.IsNull() {
		return nil
	}
	t, err := j.table(db, form)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	seq := int64(t.Len()) + 1
	if err := t.Insert(relstore.Row{relstore.Int(seq), key}); err != nil {
		return fmt.Errorf("patterns: journal %s: %w", form.Name, err)
	}
	return nil
}

// HighWaterMark returns the journal's current cursor position for the form:
// the highest sequence number recorded, 0 when nothing was ever journaled.
func (j *Journal) HighWaterMark(db *relstore.DB, form FormInfo) (int64, error) {
	if !db.Has(journalTable(form)) {
		return 0, nil
	}
	t, err := db.Table(journalTable(form))
	if err != nil {
		return 0, err
	}
	return int64(t.Len()), nil
}

// ChangedSince returns the distinct instance keys recorded in the half-open
// window (since, hwm], sorted by key, together with the high-water mark hwm
// the caller should advance its cursor to once the keys are applied. The
// window is captured before the scan, so entries landing concurrently are
// left for the next call.
func (j *Journal) ChangedSince(db *relstore.DB, form FormInfo, since int64) ([]relstore.Value, int64, error) {
	if !db.Has(journalTable(form)) {
		return nil, since, nil
	}
	t, err := db.Table(journalTable(form))
	if err != nil {
		return nil, since, err
	}
	hwm := int64(t.Len())
	if hwm <= since {
		return nil, hwm, nil
	}
	seen := make(map[string]bool)
	var keys []relstore.Value
	err = t.ScanSince("Seq", relstore.Int(since), func(r relstore.Row) bool {
		if r[0].AsInt() > hwm {
			return false
		}
		k := r[1]
		if !seen[k.Key()] {
			seen[k.Key()] = true
			keys = append(keys, k)
		}
		return true
	})
	if err != nil {
		return nil, since, err
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].Compare(keys[b]) < 0 })
	return keys, hwm, nil
}
