package patterns

import (
	"fmt"

	"guava/internal/relstore"
)

// Audit is the Table 1 pattern where "no rows are ever deleted or updated;
// rows can be deprecated by setting the value in a column. The reporting
// tool only displays current data." Reading pulls only data where the
// deprecation column equals the sentinel 0.
type Audit struct {
	// Column names the deprecation column (default "_deleted").
	Column string
}

func (a *Audit) column() string {
	if a.Column == "" {
		return "_deleted"
	}
	return a.Column
}

// Name implements Transform.
func (a *Audit) Name() string { return "Audit" }

// Describe implements Transform.
func (a *Audit) Describe() string {
	return "No rows are ever deleted; rows are deprecated by setting a column. Pull only data where the column is 0."
}

// Adapt implements Transform: inner layers see an extra deprecation column.
func (a *Audit) Adapt(form FormInfo) (FormInfo, error) {
	if form.Schema.Has(a.column()) {
		return FormInfo{}, fmt.Errorf("audit column %q collides with a form column", a.column())
	}
	s, err := form.Schema.Append(relstore.Column{Name: a.column(), Type: relstore.KindInt, NotNull: true})
	if err != nil {
		return FormInfo{}, err
	}
	return FormInfo{Name: form.Name, KeyColumn: form.KeyColumn, Schema: s}, nil
}

// Install implements Transform (no side tables).
func (a *Audit) Install(*relstore.DB, FormInfo, FormInfo) error { return nil }

// Encode implements Transform: new rows are live (0).
func (a *Audit) Encode(_ *relstore.DB, _, _ FormInfo, row relstore.Row) (relstore.Row, error) {
	out := make(relstore.Row, 0, len(row)+1)
	out = append(out, row...)
	out = append(out, relstore.Int(0))
	return out, nil
}

// Decode implements Transform: keep live rows, drop the deprecation column.
func (a *Audit) Decode(_ *relstore.DB, outer, _ FormInfo, rows *relstore.Rows) (*relstore.Rows, error) {
	live, err := relstore.Select(rows, relstore.Eq(a.column(), relstore.Int(0)))
	if err != nil {
		return nil, err
	}
	return relstore.Project(live, outer.Schema.Names()...)
}

// AdaptUpdate implements Transform: updates pass through unchanged.
func (a *Audit) AdaptUpdate(_ *relstore.DB, _, _ FormInfo, col string, v relstore.Value) (string, relstore.Value, error) {
	return col, v, nil
}
