package patterns

import (
	"sort"
	"strings"
	"testing"

	"guava/internal/relstore"
	"guava/internal/ui"
)

// testForm returns a FormInfo covering every column kind, with sample rows.
func testForm(t *testing.T) (FormInfo, []relstore.Row) {
	t.Helper()
	schema := relstore.MustSchema(
		relstore.Column{Name: "ProcedureID", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "Smoking", Type: relstore.KindString},
		relstore.Column{Name: "PacksPerDay", Type: relstore.KindFloat},
		relstore.Column{Name: "Hypoxia", Type: relstore.KindBool},
		relstore.Column{Name: "Alcohol", Type: relstore.KindString},
		relstore.Column{Name: "Age", Type: relstore.KindInt},
	)
	form := FormInfo{Name: "Procedure", KeyColumn: "ProcedureID", Schema: schema}
	rows := []relstore.Row{
		{relstore.Int(1), relstore.Str("Current"), relstore.Float(2), relstore.Bool(true), relstore.Str("Light"), relstore.Int(61)},
		{relstore.Int(2), relstore.Str("None"), relstore.Float(0), relstore.Bool(false), relstore.Str("None"), relstore.Int(45)},
		{relstore.Int(3), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()},
		{relstore.Int(4), relstore.Str("Previous"), relstore.Float(1.5), relstore.Bool(false), relstore.Str("Heavy"), relstore.Int(70)},
		{relstore.Int(5), relstore.Str("Current"), relstore.Float(5), relstore.Bool(true), relstore.Str(""), relstore.Int(33)},
	}
	return form, rows
}

// roundTrip installs the stack, writes the rows, reads them back, and checks
// multiset equality with the input — the bidirectionality contract of every
// pattern in Table 1.
func roundTrip(t *testing.T, stack *Stack) {
	t.Helper()
	form, rows := testForm(t)
	db := relstore.NewDB("contrib")
	if err := stack.Install(db, form); err != nil {
		t.Fatalf("%s: install: %v", stack.Describe(), err)
	}
	for _, r := range rows {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatalf("%s: write %v: %v", stack.Describe(), r, err)
		}
	}
	got, err := stack.Read(db, form)
	if err != nil {
		t.Fatalf("%s: read: %v", stack.Describe(), err)
	}
	want := &relstore.Rows{Schema: form.Schema, Data: rows}
	if !got.EqualUnordered(want) {
		t.Fatalf("%s: round trip mismatch\ngot:\n%s\nwant:\n%s", stack.Describe(), got.Format(), want.Format())
	}
}

// allStacks enumerates a representative set of pattern stacks: every layout
// alone, every transform over Naive, and deep compositions.
func allStacks(t *testing.T) map[string]*Stack {
	t.Helper()
	form, _ := testForm(t)
	merge := func() *Merge {
		m, err := NewMerge("AllForms", "FormName", []FormInfo{form})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	return map[string]*Stack{
		"naive":   NewStack(Naive{}),
		"merge":   NewStack(merge()),
		"split":   NewStack(&Split{}),
		"splitx":  NewStack(&Split{Parts: [][]string{{"Smoking", "PacksPerDay", "Hypoxia"}, {"Alcohol"}, {"Age"}}}),
		"generic": NewStack(Generic{}),
		"part":    NewStack(&Partitioned{Base: Naive{}, N: 3}),
		"partgen": NewStack(&Partitioned{Base: Generic{}, N: 2}),
		"sparse":  NewStack(SparseWide{Slots: 8}),
		"multi":   NewStack(MultiValued{Columns: []string{"Smoking", "Alcohol"}}),

		"audit":    NewStack(Naive{}, &Audit{}),
		"rename":   NewStack(Naive{}, &Rename{Physical: map[string]string{"Smoking": "fld_0107", "ProcedureID": "pk", "Hypoxia": "fld_0221"}}),
		"encode":   NewStack(Naive{}, &Encode{}),
		"sentinel": NewStack(Naive{}, &Sentinel{}),
		"lookup":   NewStack(Naive{}, &Lookup{Columns: []string{"Smoking", "Alcohol"}}),
		"delim":    NewStack(Naive{}, &Delimited{Into: "packed", Columns: []string{"Smoking", "Alcohol"}}),

		"vendor": NewStack(Generic{},
			&Audit{},
			&Rename{Physical: map[string]string{"Smoking": "fld_0107"}},
			&Encode{TrueCode: "1", FalseCode: "0"},
		),
		"legacy": NewStack(&Split{},
			&Audit{},
			&Sentinel{},
		),
		"deep": NewStack(&Partitioned{Base: &Split{}, N: 2},
			&Audit{},
			&Rename{Physical: map[string]string{"Alcohol": "etoh"}},
			&Lookup{Columns: []string{"Smoking"}},
			&Encode{},
		),
		"sparseaudit": NewStack(SparseWide{Slots: 10}, &Audit{}),
		"multirename": NewStack(MultiValued{Columns: []string{"Alcohol"}},
			&Rename{Physical: map[string]string{"Smoking": "fld_0107"}},
		),
	}
}

// TestTable1PatternsRoundTrip is the Experiment T1 core: every pattern and
// composition reconstructs the naive relation exactly.
func TestTable1PatternsRoundTrip(t *testing.T) {
	for name, stack := range allStacks(t) {
		stack := stack
		t.Run(name, func(t *testing.T) { roundTrip(t, stack) })
	}
}

func TestStackDescribe(t *testing.T) {
	s := NewStack(Generic{}, &Audit{}, &Encode{})
	if got := s.Describe(); got != "Audit ∘ Encode ∘ Generic" {
		t.Errorf("Describe = %q", got)
	}
	for name, stack := range allStacks(t) {
		if stack.Layout.Describe() == "" || stack.Layout.Name() == "" {
			t.Errorf("%s: layout must self-describe", name)
		}
		for _, tr := range stack.Transforms {
			if tr.Describe() == "" || tr.Name() == "" {
				t.Errorf("%s: transform must self-describe", name)
			}
		}
	}
}

func TestStackQuery(t *testing.T) {
	form, rows := testForm(t)
	for name, stack := range allStacks(t) {
		db := relstore.NewDB("contrib")
		if err := stack.Install(db, form); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range rows {
			if err := stack.WriteRow(db, form, r); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		got, err := stack.Query(db, form,
			relstore.Eq("Smoking", relstore.Str("Current")),
			[]string{"ProcedureID", "PacksPerDay"})
		if err != nil {
			t.Fatalf("%s: query: %v", name, err)
		}
		if got.Len() != 2 {
			t.Errorf("%s: query returned %d rows, want 2", name, got.Len())
		}
		if got.Schema.NameList() != "ProcedureID, PacksPerDay" {
			t.Errorf("%s: query schema = %s", name, got.Schema.NameList())
		}
	}
}

func TestStackUpdate(t *testing.T) {
	form, rows := testForm(t)
	for name, stack := range allStacks(t) {
		// Delimited rejects updates of packed columns; tested separately.
		if strings.Contains(name, "delim") {
			continue
		}
		db := relstore.NewDB("contrib")
		if err := stack.Install(db, form); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range rows {
			if err := stack.WriteRow(db, form, r); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		n, err := stack.Update(db, form, relstore.Int(4), "Smoking", relstore.Str("Current"))
		if err != nil {
			t.Fatalf("%s: update: %v", name, err)
		}
		if n != 1 {
			t.Fatalf("%s: update touched %d records, want 1", name, n)
		}
		got, err := stack.Query(db, form, relstore.Eq("ProcedureID", relstore.Int(4)), []string{"Smoking"})
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 1 || !got.Data[0][0].Equal(relstore.Str("Current")) {
			t.Errorf("%s: after update row = %v", name, got.Data)
		}
	}
}

func TestDelimitedRejectsPackedUpdate(t *testing.T) {
	form, rows := testForm(t)
	stack := NewStack(Naive{}, &Delimited{Into: "packed", Columns: []string{"Smoking", "Alcohol"}})
	db := relstore.NewDB("contrib")
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	if err := stack.WriteRow(db, form, rows[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := stack.Update(db, form, relstore.Int(1), "Smoking", relstore.Str("None")); err == nil {
		t.Error("updating a packed column must fail")
	}
	// Non-packed columns still update.
	if _, err := stack.Update(db, form, relstore.Int(1), "Age", relstore.Int(62)); err != nil {
		t.Errorf("non-packed update failed: %v", err)
	}
}

// TestAuditDeprecate exercises the Audit pattern's deprecation semantics
// across different inner layouts: deprecated rows stay in physical storage
// but vanish from the g-tree view.
func TestAuditDeprecate(t *testing.T) {
	form, rows := testForm(t)
	stacks := map[string]*Stack{
		"audit+naive":   NewStack(Naive{}, &Audit{}),
		"audit+generic": NewStack(Generic{}, &Audit{}),
		"audit+split":   NewStack(&Split{}, &Audit{}),
		"audit+deep":    NewStack(Generic{}, &Audit{}, &Rename{Physical: map[string]string{"Smoking": "s"}}, &Encode{}),
	}
	for name, stack := range stacks {
		db := relstore.NewDB("contrib")
		if err := stack.Install(db, form); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range rows {
			if err := stack.WriteRow(db, form, r); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		n, err := stack.Deprecate(db, form, relstore.Int(2))
		if err != nil {
			t.Fatalf("%s: deprecate: %v", name, err)
		}
		if n != 1 {
			t.Fatalf("%s: deprecate touched %d, want 1", name, n)
		}
		got, err := stack.Read(db, form)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != len(rows)-1 {
			t.Errorf("%s: read %d rows after deprecation, want %d", name, got.Len(), len(rows)-1)
		}
		for _, r := range got.Data {
			if r[0].Equal(relstore.Int(2)) {
				t.Errorf("%s: deprecated record still visible", name)
			}
		}
	}
	// A stack without Audit cannot deprecate.
	plain := NewStack(Naive{})
	db := relstore.NewDB("x")
	if err := plain.Install(db, form); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Deprecate(db, form, relstore.Int(1)); err == nil {
		t.Error("deprecate without Audit must fail")
	}
}

func TestGenericPhysicalShape(t *testing.T) {
	form, rows := testForm(t)
	stack := NewStack(Generic{})
	db := relstore.NewDB("contrib")
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	eav, err := db.Table("Procedure_eav")
	if err != nil {
		t.Fatal(err)
	}
	// Non-null values: row1 has 5, row2 has 5, row3 has 0, row4 has 5, row5 has 5.
	if eav.Len() != 20 {
		t.Errorf("EAV rows = %d, want 20", eav.Len())
	}
	ents, err := db.Table("Procedure_entities")
	if err != nil {
		t.Fatal(err)
	}
	if ents.Len() != 5 {
		t.Errorf("entity rows = %d, want 5", ents.Len())
	}
	// The all-NULL record (3) survives the read via the entity anchor.
	got, _ := stack.Read(db, form)
	found := false
	for _, r := range got.Data {
		if r[0].Equal(relstore.Int(3)) {
			found = true
			for _, v := range r[1:] {
				if !v.IsNull() {
					t.Errorf("record 3 must be all NULL, got %v", r)
				}
			}
		}
	}
	if !found {
		t.Error("all-NULL record lost by EAV round trip")
	}
}

func TestMergeSharedTable(t *testing.T) {
	procForm, procRows := testForm(t)
	findingSchema := relstore.MustSchema(
		relstore.Column{Name: "ProcedureID", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "Size", Type: relstore.KindInt},
		relstore.Column{Name: "Smoking", Type: relstore.KindString}, // shared name, same type
	)
	findingForm := FormInfo{Name: "Finding", KeyColumn: "ProcedureID", Schema: findingSchema}
	m, err := NewMerge("AllForms", "FormName", []FormInfo{procForm, findingForm})
	if err != nil {
		t.Fatal(err)
	}
	stack := NewStack(m)
	db := relstore.NewDB("contrib")
	if err := stack.Install(db, procForm); err != nil {
		t.Fatal(err)
	}
	if err := stack.Install(db, findingForm); err != nil {
		t.Fatal(err)
	}
	for _, r := range procRows {
		if err := stack.WriteRow(db, procForm, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := stack.WriteRow(db, findingForm, relstore.Row{relstore.Int(1), relstore.Int(12), relstore.Str("n/a")}); err != nil {
		t.Fatal(err)
	}
	// One physical table holds everything.
	shared, err := db.Table("AllForms")
	if err != nil {
		t.Fatal(err)
	}
	if shared.Len() != len(procRows)+1 {
		t.Errorf("shared table rows = %d", shared.Len())
	}
	// Reads separate by discriminator.
	proc, err := stack.Read(db, procForm)
	if err != nil {
		t.Fatal(err)
	}
	if proc.Len() != len(procRows) {
		t.Errorf("proc rows = %d", proc.Len())
	}
	find, err := stack.Read(db, findingForm)
	if err != nil {
		t.Fatal(err)
	}
	if find.Len() != 1 || !find.Data[0][1].Equal(relstore.Int(12)) {
		t.Errorf("finding rows = %v", find.Data)
	}
}

// TestMergeStackWithTransforms covers the composition trap NewMergeStack
// exists for: transforms like Audit change the schemas the Merge layout must
// be built from.
func TestMergeStackWithTransforms(t *testing.T) {
	form, rows := testForm(t)
	other := FormInfo{Name: "Note", KeyColumn: "ProcedureID", Schema: relstore.MustSchema(
		relstore.Column{Name: "ProcedureID", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "Text", Type: relstore.KindString},
	)}
	stack, err := NewMergeStack("Shared", "Kind", []Transform{&Audit{}, &Encode{}}, form, other)
	if err != nil {
		t.Fatal(err)
	}
	db := relstore.NewDB("x")
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	if err := stack.Install(db, other); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := stack.WriteRow(db, other, relstore.Row{relstore.Int(1), relstore.Str("note text")}); err != nil {
		t.Fatal(err)
	}
	got, err := stack.Read(db, form)
	if err != nil {
		t.Fatal(err)
	}
	want := &relstore.Rows{Schema: form.Schema, Data: rows}
	if !got.EqualUnordered(want) {
		t.Errorf("merge-stack round trip failed:\n%s", got.Format())
	}
	// Deprecation works through the shared table too.
	if _, err := stack.Deprecate(db, form, relstore.Int(1)); err != nil {
		t.Fatal(err)
	}
	got, _ = stack.Read(db, form)
	if got.Len() != len(rows)-1 {
		t.Errorf("rows after deprecate = %d", got.Len())
	}
	// The other form is untouched.
	notes, err := stack.Read(db, other)
	if err != nil || notes.Len() != 1 {
		t.Errorf("notes = %v, %v", notes, err)
	}
	// Constructor propagates transform errors.
	if _, err := NewMergeStack("T", "D", []Transform{&Encode{TrueCode: "X", FalseCode: "X"}}, form); err == nil {
		t.Error("bad transform must fail")
	}
}

func TestMergeValidation(t *testing.T) {
	form, _ := testForm(t)
	if _, err := NewMerge("T", "D", nil); err == nil {
		t.Error("merge of no forms must fail")
	}
	conflicting := FormInfo{Name: "Other", KeyColumn: "ProcedureID", Schema: relstore.MustSchema(
		relstore.Column{Name: "ProcedureID", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "Smoking", Type: relstore.KindInt}, // conflicts: string elsewhere
	)}
	if _, err := NewMerge("T", "D", []FormInfo{form, conflicting}); err == nil {
		t.Error("conflicting column types must fail")
	}
	otherKey := FormInfo{Name: "K", KeyColumn: "OtherID", Schema: relstore.MustSchema(
		relstore.Column{Name: "OtherID", Type: relstore.KindInt, NotNull: true},
	)}
	if _, err := NewMerge("T", "D", []FormInfo{form, otherKey}); err == nil {
		t.Error("mismatched key columns must fail")
	}
	m, err := NewMerge("T", "D", []FormInfo{form})
	if err != nil {
		t.Fatal(err)
	}
	db := relstore.NewDB("x")
	unknown := FormInfo{Name: "Unknown", KeyColumn: "ProcedureID", Schema: form.Schema}
	if err := m.Install(db, unknown); err == nil {
		t.Error("installing an unknown form must fail")
	}
}

func TestSplitValidation(t *testing.T) {
	form, _ := testForm(t)
	db := relstore.NewDB("x")
	bad := []*Split{
		{Parts: [][]string{{"Smoking"}}}, // misses columns
		{Parts: [][]string{{"Smoking", "Smoking"}, {"PacksPerDay", "Hypoxia", "Alcohol", "Age"}}},     // duplicate
		{Parts: [][]string{{"Nope"}, {"Smoking", "PacksPerDay", "Hypoxia", "Alcohol", "Age"}}},        // unknown
		{Parts: [][]string{{"ProcedureID"}, {"Smoking", "PacksPerDay", "Hypoxia", "Alcohol", "Age"}}}, // key in part
	}
	for i, s := range bad {
		if err := s.Install(db, form); err == nil {
			t.Errorf("bad split %d must fail install", i)
		}
	}
}

func TestSentinelCollisionDetected(t *testing.T) {
	form, _ := testForm(t)
	stack := NewStack(Naive{}, &Sentinel{IntCode: 61}) // collides with Age 61
	db := relstore.NewDB("x")
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	row := relstore.Row{relstore.Int(1), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Int(61)}
	if err := stack.WriteRow(db, form, row); err == nil {
		t.Error("sentinel collision must be detected at write time")
	}
}

func TestEncodeRejectsUnknownCode(t *testing.T) {
	form, _ := testForm(t)
	e := &Encode{}
	inner, err := e.Adapt(form)
	if err != nil {
		t.Fatal(err)
	}
	rows := &relstore.Rows{Schema: inner.Schema, Data: []relstore.Row{
		{relstore.Int(1), relstore.Null(), relstore.Null(), relstore.Str("WAT"), relstore.Null(), relstore.Null()},
	}}
	if _, err := e.Decode(nil, form, inner, rows); err == nil {
		t.Error("unknown boolean code must fail decode")
	}
	if _, err := (&Encode{TrueCode: "X", FalseCode: "X"}).Adapt(form); err == nil {
		t.Error("identical true/false codes must fail")
	}
}

func TestLookupTablesPopulated(t *testing.T) {
	form, rows := testForm(t)
	stack := NewStack(Naive{}, &Lookup{Columns: []string{"Smoking"}})
	db := relstore.NewDB("x")
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	dim, err := db.Table("Procedure_Smoking_lookup")
	if err != nil {
		t.Fatal(err)
	}
	// Distinct labels: Current, None, Previous.
	if dim.Len() != 3 {
		t.Errorf("lookup rows = %d, want 3", dim.Len())
	}
	// Codes are stable: writing the same label twice reuses the code.
	fact, err := db.Table("Procedure")
	if err != nil {
		t.Fatal(err)
	}
	codes := map[string]bool{}
	fact.Scan(func(r relstore.Row) bool {
		v := r[fact.Schema().Index("Smoking")]
		if !v.IsNull() {
			codes[v.String()] = true
		}
		return true
	})
	if len(codes) != 3 {
		t.Errorf("distinct codes in fact table = %d, want 3", len(codes))
	}
}

func TestLookupValidation(t *testing.T) {
	form, _ := testForm(t)
	if _, err := (&Lookup{Columns: []string{"Age"}}).Adapt(form); err == nil {
		t.Error("coding a non-string column must fail")
	}
	if _, err := (&Lookup{Columns: []string{"Nope"}}).Adapt(form); err == nil {
		t.Error("coding an unknown column must fail")
	}
}

func TestDelimitedEdgeCases(t *testing.T) {
	form, _ := testForm(t)
	stack := NewStack(Naive{}, &Delimited{Into: "packed", Columns: []string{"Smoking", "Alcohol"}})
	db := relstore.NewDB("x")
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	tricky := []relstore.Row{
		// Values containing the separator, backslashes, empty strings, NULLs.
		{relstore.Int(1), relstore.Str("a;b"), relstore.Null(), relstore.Null(), relstore.Str(`c\;d`), relstore.Null()},
		{relstore.Int(2), relstore.Str(""), relstore.Null(), relstore.Null(), relstore.Str("x"), relstore.Null()},
		{relstore.Int(3), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()},
		{relstore.Int(4), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Str(`\e`), relstore.Null()},
	}
	for _, r := range tricky {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := stack.Read(db, form)
	if err != nil {
		t.Fatal(err)
	}
	want := &relstore.Rows{Schema: form.Schema, Data: tricky}
	if !got.EqualUnordered(want) {
		t.Errorf("delimited round trip:\n%s\nwant:\n%s", got.Format(), want.Format())
	}
}

func TestDelimitedValidation(t *testing.T) {
	form, _ := testForm(t)
	bad := []*Delimited{
		{Into: "p", Columns: []string{"Smoking"}},              // too few
		{Into: "", Columns: []string{"Smoking", "Alcohol"}},    // no target
		{Into: "p", Columns: []string{"Smoking", "Age"}},       // non-string
		{Into: "p", Columns: []string{"Smoking", "Nope"}},      // unknown
		{Into: "Age", Columns: []string{"Smoking", "Alcohol"}}, // collides
	}
	for i, d := range bad {
		if _, err := d.Adapt(form); err == nil {
			t.Errorf("bad delimited %d must fail", i)
		}
	}
}

func TestPartitionedRouting(t *testing.T) {
	form, rows := testForm(t)
	stack := NewStack(&Partitioned{Base: Naive{}, N: 2})
	db := relstore.NewDB("x")
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	p0, err := db.Table("Procedure_p0")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := db.Table("Procedure_p1")
	if err != nil {
		t.Fatal(err)
	}
	if p0.Len() != 2 || p1.Len() != 3 { // keys 2,4 vs 1,3,5
		t.Errorf("partition sizes = %d/%d, want 2/3", p0.Len(), p1.Len())
	}
	if err := NewStack(&Partitioned{Base: Naive{}, N: 0}).Install(relstore.NewDB("y"), form); err == nil {
		t.Error("N=0 must fail")
	}
}

func TestAuditColumnCollision(t *testing.T) {
	schema := relstore.MustSchema(
		relstore.Column{Name: "ID", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "_deleted", Type: relstore.KindInt},
	)
	form := FormInfo{Name: "F", KeyColumn: "ID", Schema: schema}
	if _, err := (&Audit{}).Adapt(form); err == nil {
		t.Error("audit column collision must fail")
	}
}

func TestPhysicalTables(t *testing.T) {
	form, _ := testForm(t)
	cases := map[string][]string{}
	stacks := allStacks(t)
	cases["naive"] = []string{"Procedure"}
	cases["generic"] = []string{"Procedure_eav", "Procedure_entities"}
	cases["part"] = []string{"Procedure_p0", "Procedure_p1", "Procedure_p2"}
	cases["lookup"] = []string{"Procedure", "Procedure_Alcohol_lookup", "Procedure_Smoking_lookup"}
	for name, want := range cases {
		got, err := stacks[name].PhysicalTables(form)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sort.Strings(got)
		sort.Strings(want)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s: physical tables = %v, want %v", name, got, want)
		}
	}
}

func TestSinkWritesThroughUIForm(t *testing.T) {
	f := &ui.Form{Name: "Visit", KeyColumn: "VisitID", Controls: []*ui.Control{
		{Name: "Reason", Kind: ui.TextBox, Question: "Reason for visit?"},
		{Name: "Urgent", Kind: ui.CheckBox, Question: "Urgent?"},
	}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	info, err := FromUIForm(f)
	if err != nil {
		t.Fatal(err)
	}
	db := relstore.NewDB("contrib")
	stack := NewStack(Generic{}, &Audit{})
	if err := stack.Install(db, info); err != nil {
		t.Fatal(err)
	}
	sink := &Sink{DB: db, Stack: stack}
	e, err := ui.NewEntry(f, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Set("Reason", relstore.Str("screening")); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("Urgent", relstore.Bool(false)); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(sink); err != nil {
		t.Fatal(err)
	}
	got, err := stack.Read(db, info)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("rows = %d", got.Len())
	}
	if !got.Data[0].Equal(relstore.Row{relstore.Int(7), relstore.Str("screening"), relstore.Bool(false)}) {
		t.Errorf("row = %v", got.Data[0])
	}
}

// TestLayoutMiscCoverage exercises remaining layout surface: physical-table
// listings, custom audit/sentinel/delimiter parameters, update errors, and
// the partitioned key-type guard.
func TestLayoutMiscCoverage(t *testing.T) {
	form, rows := testForm(t)

	// Custom audit column, delimiter, and sentinel codes round-trip.
	custom := NewStack(Naive{},
		&Audit{Column: "rec_status"},
		&Delimited{Into: "pk", Columns: []string{"Smoking", "Alcohol"}, Sep: "||"},
		&Sentinel{IntCode: -1, FloatCode: -2.5, StringCode: "~none~"},
	)
	db := relstore.NewDB("x")
	if err := custom.Install(db, form); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := custom.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := custom.Read(db, form)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualUnordered(&relstore.Rows{Schema: form.Schema, Data: rows}) {
		t.Error("custom-parameter stack round trip failed")
	}
	if _, err := custom.Deprecate(db, form, relstore.Int(1)); err != nil {
		t.Fatal(err)
	}

	// Merge physical tables.
	m, err := NewMerge("Shared", "D", []FormInfo{form})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PhysicalTables(form); len(got) != 1 || got[0] != "Shared" {
		t.Errorf("merge tables = %v", got)
	}
	// Merge read of a missing physical table errors.
	if _, err := m.Read(relstore.NewDB("empty"), form); err == nil {
		t.Error("merge read without install must fail")
	}
	// Merge update on an unknown column errors.
	mdb := relstore.NewDB("m")
	if err := m.Install(mdb, form); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(mdb, form, relstore.Int(1), "Nope", relstore.Null()); err == nil {
		t.Error("merge update on unknown column must fail")
	}

	// Split physical tables.
	sp := &Split{}
	if got := sp.PhysicalTables(form); len(got) != 3 {
		t.Errorf("split tables = %v", got)
	}
	if got := (&Split{Parts: [][]string{{"Nope"}}}).PhysicalTables(form); got != nil {
		t.Errorf("invalid split must list nothing, got %v", got)
	}

	// Partitioned rejects non-integer keys.
	p := &Partitioned{Base: Naive{}, N: 2}
	pdb := relstore.NewDB("p")
	if err := p.Install(pdb, form); err != nil {
		t.Fatal(err)
	}
	badKey := relstore.Row{relstore.Str("k"), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}
	if err := p.Write(pdb, form, badKey); err == nil {
		t.Error("string key must fail partition routing")
	}
	// Negative keys route to a valid partition.
	neg := relstore.Row{relstore.Int(-7), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null(), relstore.Null()}
	if err := p.Write(pdb, form, neg); err != nil {
		t.Errorf("negative key: %v", err)
	}
	if _, err := p.Update(pdb, form, relstore.Int(-7), "Age", relstore.Int(1)); err != nil {
		t.Errorf("negative key update: %v", err)
	}

	// Generic update guards.
	g := Generic{}
	gdb := relstore.NewDB("g")
	if err := g.Install(gdb, form); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Update(gdb, form, relstore.Int(1), "ProcedureID", relstore.Int(2)); err == nil {
		t.Error("generic key update must fail")
	}
	if _, err := g.Update(gdb, form, relstore.Int(1), "Nope", relstore.Null()); err == nil {
		t.Error("generic unknown column must fail")
	}
	// Updating an absent entity touches nothing.
	if n, err := g.Update(gdb, form, relstore.Int(99), "Age", relstore.Int(1)); err != nil || n != 0 {
		t.Errorf("absent entity update = %d, %v", n, err)
	}

	// Lookup dangling code detection.
	lk := &Lookup{Columns: []string{"Smoking"}}
	ldb := relstore.NewDB("l")
	lstack := NewStack(Naive{}, lk)
	if err := lstack.Install(ldb, form); err != nil {
		t.Fatal(err)
	}
	if err := lstack.WriteRow(ldb, form, rows[0]); err != nil {
		t.Fatal(err)
	}
	// Corrupt the dimension table: drop all labels.
	dim, err := ldb.Table("Procedure_Smoking_lookup")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dim.Delete(relstore.True); err != nil {
		t.Fatal(err)
	}
	if _, err := lstack.Read(ldb, form); err == nil {
		t.Error("dangling lookup code must fail the read")
	}
}

func TestConformErrors(t *testing.T) {
	rows := &relstore.Rows{
		Schema: relstore.MustSchema(relstore.Column{Name: "A", Type: relstore.KindString}),
		Data:   []relstore.Row{{relstore.Str("zzz")}},
	}
	target := relstore.MustSchema(relstore.Column{Name: "B", Type: relstore.KindString})
	if _, err := Conform(rows, target); err == nil {
		t.Error("missing column must fail")
	}
	target2 := relstore.MustSchema(relstore.Column{Name: "A", Type: relstore.KindInt})
	if _, err := Conform(rows, target2); err == nil {
		t.Error("uncoercible value must fail")
	}
}
