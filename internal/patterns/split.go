package patterns

import (
	"fmt"

	"guava/internal/relstore"
)

// Split is the Table 1 pattern where "attributes from a single form are
// distributed over several tables"; reading requires the Join transformation
// on the shared key. Each part table holds the key plus a subset of the
// form's columns.
type Split struct {
	// Parts assigns non-key columns to part tables; part i is stored in
	// table "<form>_part<i>". Nil Parts auto-splits columns pairwise.
	Parts [][]string
}

// Name implements Layout.
func (*Split) Name() string { return "Split" }

// Describe implements Layout.
func (*Split) Describe() string {
	return "Attributes from a single form are distributed over several tables; reading joins the part tables on the form key."
}

// partition returns the resolved column groups for a form, validating
// coverage and disjointness.
func (s *Split) partition(form FormInfo) ([][]string, error) {
	nonKey := make([]string, 0, form.Schema.Arity()-1)
	for _, c := range form.Schema.Columns {
		if c.Name != form.KeyColumn {
			nonKey = append(nonKey, c.Name)
		}
	}
	if s.Parts == nil {
		// Auto-split: two columns per part table.
		var parts [][]string
		for i := 0; i < len(nonKey); i += 2 {
			end := i + 2
			if end > len(nonKey) {
				end = len(nonKey)
			}
			parts = append(parts, nonKey[i:end])
		}
		if len(parts) == 0 {
			parts = [][]string{{}}
		}
		return parts, nil
	}
	seen := map[string]bool{}
	for _, part := range s.Parts {
		for _, col := range part {
			if col == form.KeyColumn {
				return nil, fmt.Errorf("patterns: split: key column %q cannot be assigned to a part", col)
			}
			if !form.Schema.Has(col) {
				return nil, fmt.Errorf("patterns: split: unknown column %q", col)
			}
			if seen[col] {
				return nil, fmt.Errorf("patterns: split: column %q assigned twice", col)
			}
			seen[col] = true
		}
	}
	for _, col := range nonKey {
		if !seen[col] {
			return nil, fmt.Errorf("patterns: split: column %q not assigned to any part", col)
		}
	}
	return s.Parts, nil
}

func partTable(form FormInfo, i int) string { return fmt.Sprintf("%s_part%d", form.Name, i) }

func (s *Split) partSchema(form FormInfo, part []string) (*relstore.Schema, error) {
	cols := []relstore.Column{{Name: form.KeyColumn, Type: relstore.KindInt, NotNull: true}}
	for _, name := range part {
		c, err := form.Schema.Col(name)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
	}
	return relstore.NewSchema(cols...)
}

// Install implements Layout. Every part table indexes the shared key so
// per-record fetches (ReadKeys, Update) probe instead of scanning.
func (s *Split) Install(db *relstore.DB, form FormInfo) error {
	parts, err := s.partition(form)
	if err != nil {
		return err
	}
	for i, part := range parts {
		schema, err := s.partSchema(form, part)
		if err != nil {
			return err
		}
		t, err := db.EnsureTable(partTable(form, i), schema)
		if err != nil {
			return err
		}
		if err := t.CreateIndex(form.KeyColumn); err != nil {
			return err
		}
	}
	return nil
}

// Write implements Layout.
func (s *Split) Write(db *relstore.DB, form FormInfo, row relstore.Row) error {
	parts, err := s.partition(form)
	if err != nil {
		return err
	}
	key := row[form.Schema.Index(form.KeyColumn)]
	for i, part := range parts {
		t, err := db.Table(partTable(form, i))
		if err != nil {
			return err
		}
		pr := make(relstore.Row, 0, len(part)+1)
		pr = append(pr, key)
		for _, col := range part {
			pr = append(pr, row[form.Schema.Index(col)])
		}
		if err := t.Insert(pr); err != nil {
			return err
		}
	}
	return nil
}

// Read implements Layout. It joins the part tables on the key (the paper's
// Join transformation).
func (s *Split) Read(db *relstore.DB, form FormInfo) (*relstore.Rows, error) {
	return s.readParts(db, form, nil)
}

// ReadKeys implements KeyedReader: the same join pipeline as Read, but each
// part contributes only the rows for the requested keys (index probes via
// the key-membership predicate).
func (s *Split) ReadKeys(db *relstore.DB, form FormInfo, keys []relstore.Value) (*relstore.Rows, error) {
	if keys == nil {
		keys = []relstore.Value{}
	}
	return s.readParts(db, form, keys)
}

// readParts joins the part tables on the key. With keys == nil every row is
// fetched; otherwise each part is filtered to the given keys first.
func (s *Split) readParts(db *relstore.DB, form FormInfo, keys []relstore.Value) (*relstore.Rows, error) {
	parts, err := s.partition(form)
	if err != nil {
		return nil, err
	}
	fetch := func(t *relstore.Table) (*relstore.Rows, error) {
		if keys == nil {
			return t.Rows(), nil
		}
		return t.Select(relstore.In(relstore.Col(form.KeyColumn), keys...))
	}
	var acc *relstore.Rows
	for i := range parts {
		t, err := db.Table(partTable(form, i))
		if err != nil {
			return nil, err
		}
		rows, err := fetch(t)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = rows
			continue
		}
		joined, err := relstore.Join(acc, rows, form.KeyColumn, form.KeyColumn, fmt.Sprintf("p%d", i))
		if err != nil {
			return nil, err
		}
		// Drop the duplicated key column from the right side.
		keep := make([]string, 0, joined.Schema.Arity()-1)
		dup := fmt.Sprintf("p%d_%s", i, form.KeyColumn)
		for _, n := range joined.Schema.Names() {
			if n != dup {
				keep = append(keep, n)
			}
		}
		acc, err = relstore.Project(joined, keep...)
		if err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return &relstore.Rows{Schema: form.Schema}, nil
	}
	return relstore.Project(acc, form.Schema.Names()...)
}

// Update implements Layout: the change lands in whichever part table holds
// the column.
func (s *Split) Update(db *relstore.DB, form FormInfo, key relstore.Value, col string, v relstore.Value) (int, error) {
	parts, err := s.partition(form)
	if err != nil {
		return 0, err
	}
	for i, part := range parts {
		for _, name := range part {
			if name != col {
				continue
			}
			t, err := db.Table(partTable(form, i))
			if err != nil {
				return 0, err
			}
			ci := t.Schema().Index(col)
			return t.Update(relstore.Eq(form.KeyColumn, key), func(r relstore.Row) relstore.Row {
				r[ci] = v
				return r
			})
		}
	}
	return 0, fmt.Errorf("patterns: split update: no column %q", col)
}

// PhysicalTables implements Layout.
func (s *Split) PhysicalTables(form FormInfo) []string {
	parts, err := s.partition(form)
	if err != nil {
		return nil
	}
	out := make([]string, len(parts))
	for i := range parts {
		out[i] = partTable(form, i)
	}
	return out
}
