package patterns

import (
	"strings"
	"testing"

	"guava/internal/relstore"
)

// TestSparseWideMisuse covers the GV313 hazard at runtime: a form with more
// data controls than the table has slots must refuse, not truncate.
func TestSparseWideMisuse(t *testing.T) {
	form, _ := testForm(t)
	db := relstore.NewDB("contrib")
	err := NewStack(SparseWide{Slots: 3}).Install(db, form)
	if err == nil || !strings.Contains(err.Error(), "5 data controls but only 3 slots") {
		t.Fatalf("install with too few slots: err = %v", err)
	}
	if err := NewStack(SparseWide{Slots: 0}).Install(db, form); err == nil {
		t.Fatal("install with zero slots must fail")
	}
}

// TestSparseWideSparsity checks the physical encoding: unused slots exist
// and stay NULL, answered slots store display text.
func TestSparseWideSparsity(t *testing.T) {
	form, rows := testForm(t)
	db := relstore.NewDB("contrib")
	stack := NewStack(SparseWide{Slots: 9})
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	pt, err := db.Table("Procedure_wide")
	if err != nil {
		t.Fatal(err)
	}
	if got := pt.Schema().Arity(); got != 10 {
		t.Fatalf("wide table arity = %d, want 10", got)
	}
	for _, row := range pt.Rows().Data {
		for i := 6; i < 10; i++ {
			if !row[i].IsNull() {
				t.Fatalf("slot %d of row %v should be NULL", i, row)
			}
		}
	}
}

// TestMultiValuedMisuse covers the GV314 hazards: designating the key,
// an unknown column, a duplicate, or nothing at all.
func TestMultiValuedMisuse(t *testing.T) {
	form, _ := testForm(t)
	cases := map[string]MultiValued{
		"key":       {Columns: []string{"ProcedureID"}},
		"unknown":   {Columns: []string{"Nope"}},
		"duplicate": {Columns: []string{"Smoking", "Smoking"}},
		"empty":     {},
	}
	for name, layout := range cases {
		db := relstore.NewDB("contrib")
		if err := NewStack(layout).Install(db, form); err == nil {
			t.Errorf("%s: install must fail", name)
		}
	}
}

// TestMultiValuedAmbiguity checks the pattern's defining hazard: a second
// answer for the same instance makes the naive read refuse rather than
// silently pick one.
func TestMultiValuedAmbiguity(t *testing.T) {
	form, rows := testForm(t)
	db := relstore.NewDB("contrib")
	stack := NewStack(MultiValued{Columns: []string{"Alcohol"}})
	if err := stack.Install(db, form); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := stack.WriteRow(db, form, r); err != nil {
			t.Fatal(err)
		}
	}
	at, err := db.Table("Procedure_Alcohol_answers")
	if err != nil {
		t.Fatal(err)
	}
	// A reporting tool with multi-answer semantics stores a second answer.
	if err := at.Insert(relstore.Row{relstore.Int(1), relstore.Str("Moderate")}); err != nil {
		t.Fatal(err)
	}
	_, err = stack.Read(db, form)
	if err == nil || !strings.Contains(err.Error(), "ambiguous record") {
		t.Fatalf("read with duplicate answer: err = %v", err)
	}
	// ReadKeys on the poisoned key refuses too; other keys still read.
	if _, err := stack.ReadKeys(db, form, []relstore.Value{relstore.Int(1)}); err == nil {
		t.Fatal("read-keys with duplicate answer must fail")
	}
	got, err := stack.ReadKeys(db, form, []relstore.Value{relstore.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("read-keys(2) = %d rows, want 1", got.Len())
	}
}

// TestExtendedPhysicalTables pins the physical footprint of the two
// extended-catalog layouts.
func TestExtendedPhysicalTables(t *testing.T) {
	form, _ := testForm(t)
	got := SparseWide{Slots: 8}.PhysicalTables(form)
	if len(got) != 1 || got[0] != "Procedure_wide" {
		t.Errorf("sparse-wide tables = %v", got)
	}
	got = MultiValued{Columns: []string{"Smoking", "Alcohol"}}.PhysicalTables(form)
	want := []string{"Procedure_main", "Procedure_Smoking_answers", "Procedure_Alcohol_answers"}
	if len(got) != len(want) {
		t.Fatalf("multi-valued tables = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("multi-valued tables[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}
