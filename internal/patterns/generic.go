package patterns

import (
	"fmt"

	"guava/internal/relstore"
)

// Generic is the Table 1 pattern the paper calls "the most frequent type of
// schematic heterogeneity": a generic Entity-Attribute-Value layout where
// "each row in the database looks like Entity, Attribute, Value" and "each
// row in a table represents an attribute, rather than each column". Reading
// "executes an un-pivot operation, either in code or SQL if the operator
// exists in the DBMS" — relstore provides the operator natively.
//
// Physical tables per form:
//
//	<form>_entities(<key>)                  — anchor row per form instance
//	<form>_eav(<key>, Attribute, Value)     — one row per non-NULL answer
type Generic struct{}

// Name implements Layout.
func (Generic) Name() string { return "Generic" }

// Describe implements Layout.
func (Generic) Describe() string {
	return "Each row in a table represents an attribute rather than each column; reading executes an un-pivot operation."
}

func entityTable(form FormInfo) string { return form.Name + "_entities" }
func eavTable(form FormInfo) string    { return form.Name + "_eav" }

func (Generic) entitySchema(form FormInfo) *relstore.Schema {
	return relstore.MustSchema(relstore.Column{Name: form.KeyColumn, Type: relstore.KindInt, NotNull: true})
}

func (Generic) eavSchema(form FormInfo) *relstore.Schema {
	return relstore.MustSchema(
		relstore.Column{Name: form.KeyColumn, Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "Attribute", Type: relstore.KindString, NotNull: true},
		relstore.Column{Name: "Value", Type: relstore.KindString},
	)
}

// Install implements Layout. Both tables index the key column so entity
// probes and per-record updates avoid scans.
func (g Generic) Install(db *relstore.DB, form FormInfo) error {
	et, err := db.EnsureTable(entityTable(form), g.entitySchema(form))
	if err != nil {
		return err
	}
	if err := et.CreateIndex(form.KeyColumn); err != nil {
		return err
	}
	vt, err := db.EnsureTable(eavTable(form), g.eavSchema(form))
	if err != nil {
		return err
	}
	return vt.CreateIndex(form.KeyColumn)
}

// Write implements Layout.
func (g Generic) Write(db *relstore.DB, form FormInfo, row relstore.Row) error {
	et, err := db.Table(entityTable(form))
	if err != nil {
		return err
	}
	vt, err := db.Table(eavTable(form))
	if err != nil {
		return err
	}
	ki := form.Schema.Index(form.KeyColumn)
	key := row[ki]
	if err := et.Insert(relstore.Row{key}); err != nil {
		return err
	}
	for i, c := range form.Schema.Columns {
		if i == ki || row[i].IsNull() {
			continue
		}
		r := relstore.Row{key, relstore.Str(c.Name), relstore.Str(row[i].Display())}
		if err := vt.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Read implements Layout: un-pivot the EAV rows and left-join onto the
// entity anchors so all-NULL instances survive.
func (g Generic) Read(db *relstore.DB, form FormInfo) (*relstore.Rows, error) {
	et, err := db.Table(entityTable(form))
	if err != nil {
		return nil, err
	}
	vt, err := db.Table(eavTable(form))
	if err != nil {
		return nil, err
	}
	return g.assemble(form, et.Rows(), vt.Rows())
}

// ReadKeys implements KeyedReader: both tables are probed through their key
// indexes, then the subset runs the same un-pivot + left-join pipeline as a
// full Read.
func (g Generic) ReadKeys(db *relstore.DB, form FormInfo, keys []relstore.Value) (*relstore.Rows, error) {
	et, err := db.Table(entityTable(form))
	if err != nil {
		return nil, err
	}
	vt, err := db.Table(eavTable(form))
	if err != nil {
		return nil, err
	}
	pred := relstore.In(relstore.Col(form.KeyColumn), keys...)
	entities, err := et.Select(pred)
	if err != nil {
		return nil, err
	}
	eav, err := vt.Select(pred)
	if err != nil {
		return nil, err
	}
	return g.assemble(form, entities, eav)
}

// assemble reconstructs the naive relation from entity anchors and EAV rows.
func (g Generic) assemble(form FormInfo, entities, eav *relstore.Rows) (*relstore.Rows, error) {
	var attrs []relstore.Column
	for _, c := range form.Schema.Columns {
		if c.Name != form.KeyColumn {
			attrs = append(attrs, relstore.Column{Name: c.Name, Type: c.Type})
		}
	}
	wide, err := relstore.Unpivot(eav, []string{form.KeyColumn}, "Attribute", "Value", attrs)
	if err != nil {
		return nil, err
	}
	joined, err := relstore.LeftJoin(entities, wide, form.KeyColumn, form.KeyColumn, "v")
	if err != nil {
		return nil, err
	}
	return relstore.Project(joined, form.Schema.Names()...)
}

// Update implements Layout: rewrite the EAV row for (key, col), inserting or
// deleting it as the new value is non-NULL or NULL.
func (g Generic) Update(db *relstore.DB, form FormInfo, key relstore.Value, col string, v relstore.Value) (int, error) {
	if col == form.KeyColumn {
		return 0, fmt.Errorf("patterns: generic update: cannot update key column")
	}
	if !form.Schema.Has(col) {
		return 0, fmt.Errorf("patterns: generic update: no column %q", col)
	}
	et, err := db.Table(entityTable(form))
	if err != nil {
		return 0, err
	}
	exists, err := et.Lookup(form.KeyColumn, key)
	if err != nil {
		return 0, err
	}
	if len(exists) == 0 {
		return 0, nil
	}
	vt, err := db.Table(eavTable(form))
	if err != nil {
		return 0, err
	}
	pred := relstore.And(
		relstore.Eq(form.KeyColumn, key),
		relstore.Eq("Attribute", relstore.Str(col)),
	)
	if _, err := vt.Delete(pred); err != nil {
		return 0, err
	}
	if !v.IsNull() {
		if err := vt.Insert(relstore.Row{key, relstore.Str(col), relstore.Str(v.Display())}); err != nil {
			return 0, err
		}
	}
	return len(exists), nil
}

// PhysicalTables implements Layout.
func (Generic) PhysicalTables(form FormInfo) []string {
	return []string{entityTable(form), eavTable(form)}
}
