// Package patterns implements the database design patterns of Table 1 of
// the paper, plus the extended set the paper alludes to ("we have identified
// 11 distinct database patterns so far"). A pattern describes how the naive
// schema of a form — one table per screen, one column per control — maps to
// the physical layout a reporting tool actually uses, and "each pattern
// describes a data transformation; several put together describe how to
// translate a query against the g-tree into one against the database".
//
// The package models a pattern stack as zero or more Transforms (row- and
// schema-level rewrites such as Audit, Rename, Encode, Sentinel, Lookup,
// Delimited) wrapped around exactly one Layout (a physical table design:
// Naive, Merge, Split, Generic/EAV, Partitioned). Stacks are bidirectional:
// Write pushes a naive row down to physical storage, Read reconstructs the
// naive relation, and Update routes a single-column change through every
// layer — so the g-tree behaves like a view over any physical design.
//
// The eleven named patterns:
//
//	Layouts:    Naive, Merge, Split (read side: Join), Generic (read side:
//	            un-pivot), Partitioned
//	Transforms: Audit, Rename, Encode, Sentinel, Lookup, Delimited
package patterns

import (
	"fmt"

	"guava/internal/relstore"
	"guava/internal/ui"
)

// FormInfo carries what a pattern needs to know about a form: its name, its
// instance-key column, and its naive schema (key column first).
type FormInfo struct {
	Name      string
	KeyColumn string
	Schema    *relstore.Schema
}

// FromUIForm derives the FormInfo of a ui.Form.
func FromUIForm(f *ui.Form) (FormInfo, error) {
	s, err := f.NaiveSchema()
	if err != nil {
		return FormInfo{}, err
	}
	return FormInfo{Name: f.Name, KeyColumn: f.KeyColumn, Schema: s}, nil
}

// Layout is a physical table design for one form's data.
type Layout interface {
	// Name returns the pattern name as listed in Table 1.
	Name() string
	// Describe returns the Table 1 description of the pattern's data
	// transformation.
	Describe() string
	// Install creates the physical tables for the form.
	Install(db *relstore.DB, form FormInfo) error
	// Write stores one naive-schema row.
	Write(db *relstore.DB, form FormInfo, row relstore.Row) error
	// Read reconstructs the entire naive relation from physical storage.
	Read(db *relstore.DB, form FormInfo) (*relstore.Rows, error)
	// Update sets one column of the record with the given key, returning
	// how many records changed.
	Update(db *relstore.DB, form FormInfo, key relstore.Value, col string, v relstore.Value) (int, error)
	// PhysicalTables lists the physical table names backing the form.
	PhysicalTables(form FormInfo) []string
}

// Transform is a reversible rewrite layered above a Layout (or above another
// Transform).
type Transform interface {
	// Name returns the pattern name.
	Name() string
	// Describe returns the pattern's data-transformation description.
	Describe() string
	// Adapt rewrites the form info seen by inner layers.
	Adapt(form FormInfo) (FormInfo, error)
	// Install creates any side tables the transform needs (e.g. lookup
	// dimension tables).
	Install(db *relstore.DB, outer, inner FormInfo) error
	// Encode rewrites one outer-schema row into the inner schema.
	Encode(db *relstore.DB, outer, inner FormInfo, row relstore.Row) (relstore.Row, error)
	// Decode rewrites the full inner relation back to the outer schema.
	Decode(db *relstore.DB, outer, inner FormInfo, rows *relstore.Rows) (*relstore.Rows, error)
	// AdaptUpdate rewrites a single-column update for inner layers.
	AdaptUpdate(db *relstore.DB, outer, inner FormInfo, col string, v relstore.Value) (string, relstore.Value, error)
}

// KeyedReader is the optional fast path behind Stack.ReadKeys: a Layout
// that can reconstruct only the records with the given instance keys
// (index probes instead of a full relation rebuild). Layouts without it
// fall back to Read plus a key-membership filter.
type KeyedReader interface {
	ReadKeys(db *relstore.DB, form FormInfo, keys []relstore.Value) (*relstore.Rows, error)
}

// Stack is a complete pattern configuration: outermost transform first, then
// inward to the base layout.
type Stack struct {
	Transforms []Transform
	Layout     Layout

	// Journal, when set, records the instance key of every WriteRow,
	// Update, and Deprecate that lands — the change log an incremental
	// (delta) refresh reads instead of re-extracting the whole relation.
	Journal *Journal
}

// NewStack builds a stack over a layout.
func NewStack(layout Layout, transforms ...Transform) *Stack {
	return &Stack{Transforms: transforms, Layout: layout}
}

// Describe renders the whole stack for documentation: pattern names from the
// outside in.
func (s *Stack) Describe() string {
	out := ""
	for _, t := range s.Transforms {
		out += t.Name() + " ∘ "
	}
	return out + s.Layout.Name()
}

// adaptAll returns the form info at every level: index 0 is the outer naive
// form, index len(Transforms) is what the layout sees.
func (s *Stack) adaptAll(form FormInfo) ([]FormInfo, error) {
	infos := make([]FormInfo, 0, len(s.Transforms)+1)
	infos = append(infos, form)
	cur := form
	for _, t := range s.Transforms {
		next, err := t.Adapt(cur)
		if err != nil {
			return nil, fmt.Errorf("patterns: %s: %w", t.Name(), err)
		}
		infos = append(infos, next)
		cur = next
	}
	return infos, nil
}

// Install creates all physical storage for the form.
func (s *Stack) Install(db *relstore.DB, form FormInfo) error {
	infos, err := s.adaptAll(form)
	if err != nil {
		return err
	}
	for i, t := range s.Transforms {
		if err := t.Install(db, infos[i], infos[i+1]); err != nil {
			return fmt.Errorf("patterns: install %s: %w", t.Name(), err)
		}
	}
	if err := s.Layout.Install(db, infos[len(infos)-1]); err != nil {
		return fmt.Errorf("patterns: install %s: %w", s.Layout.Name(), err)
	}
	return nil
}

// WriteValues stores one record given as a column→value map over the naive
// schema (the shape ui.Entry submits).
func (s *Stack) WriteValues(db *relstore.DB, form FormInfo, values map[string]relstore.Value) error {
	row := make(relstore.Row, form.Schema.Arity())
	for i, c := range form.Schema.Columns {
		row[i] = values[c.Name]
	}
	return s.WriteRow(db, form, row)
}

// WriteRow stores one naive-schema row.
func (s *Stack) WriteRow(db *relstore.DB, form FormInfo, row relstore.Row) error {
	infos, err := s.adaptAll(form)
	if err != nil {
		return err
	}
	if err := form.Schema.Validate(row); err != nil {
		return fmt.Errorf("patterns: write %s: %w", form.Name, err)
	}
	cur := row
	for i, t := range s.Transforms {
		cur, err = t.Encode(db, infos[i], infos[i+1], cur)
		if err != nil {
			return fmt.Errorf("patterns: encode %s: %w", t.Name(), err)
		}
	}
	if err := s.Layout.Write(db, infos[len(infos)-1], cur); err != nil {
		return fmt.Errorf("patterns: write %s: %w", s.Layout.Name(), err)
	}
	if s.Journal != nil {
		return s.Journal.Record(db, form, row[form.Schema.Index(form.KeyColumn)])
	}
	return nil
}

// Read reconstructs the naive relation, with column order and types conformed
// exactly to the form's naive schema.
func (s *Stack) Read(db *relstore.DB, form FormInfo) (*relstore.Rows, error) {
	infos, err := s.adaptAll(form)
	if err != nil {
		return nil, err
	}
	rows, err := s.Layout.Read(db, infos[len(infos)-1])
	if err != nil {
		return nil, fmt.Errorf("patterns: read %s: %w", s.Layout.Name(), err)
	}
	for i := len(s.Transforms) - 1; i >= 0; i-- {
		rows, err = s.Transforms[i].Decode(db, infos[i], infos[i+1], rows)
		if err != nil {
			return nil, fmt.Errorf("patterns: decode %s: %w", s.Transforms[i].Name(), err)
		}
	}
	return Conform(rows, form.Schema)
}

// ReadKeys reconstructs only the records with the given instance keys,
// conformed to the naive schema exactly like Read. Keyed layouts probe
// their key indexes; other layouts fall back to a full read filtered by
// key membership. Duplicate and NULL keys are dropped, so the result is a
// function of the key set. The delta-refresh contract this leans on: every
// transform preserves the key column's values (true of all Table 1
// transforms — they rename or re-encode non-key answers, never instance
// keys), so filtering at the layout level selects exactly the outer-level
// records. Records deprecated through Audit decode to nothing, yielding an
// empty group for their key.
func (s *Stack) ReadKeys(db *relstore.DB, form FormInfo, keys []relstore.Value) (*relstore.Rows, error) {
	infos, err := s.adaptAll(form)
	if err != nil {
		return nil, err
	}
	inner := infos[len(infos)-1]
	uniq := make([]relstore.Value, 0, len(keys))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if k.IsNull() || seen[k.Key()] {
			continue
		}
		seen[k.Key()] = true
		uniq = append(uniq, k)
	}
	var rows *relstore.Rows
	if kr, ok := s.Layout.(KeyedReader); ok {
		rows, err = kr.ReadKeys(db, inner, uniq)
	} else {
		rows, err = s.Layout.Read(db, inner)
		if err == nil {
			rows, err = relstore.Select(rows, relstore.In(relstore.Col(inner.KeyColumn), uniq...))
		}
	}
	if err != nil {
		return nil, fmt.Errorf("patterns: read-keys %s: %w", s.Layout.Name(), err)
	}
	for i := len(s.Transforms) - 1; i >= 0; i-- {
		rows, err = s.Transforms[i].Decode(db, infos[i], infos[i+1], rows)
		if err != nil {
			return nil, fmt.Errorf("patterns: decode %s: %w", s.Transforms[i].Name(), err)
		}
	}
	return Conform(rows, form.Schema)
}

// Query reads the naive relation, filters it with pred, and projects the
// named columns (all columns when cols is nil). This is the translation of a
// g-tree query through the pattern stack; when every layer cooperates the
// predicate is pushed down to the physical scan (see pushdown.go).
func (s *Stack) Query(db *relstore.DB, form FormInfo, pred relstore.Pred, cols []string) (*relstore.Rows, error) {
	res, err := s.QueryWithInfo(db, form, pred, cols)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// QueryNoPushdown is Query with pushdown disabled — the ablation baseline.
func (s *Stack) QueryNoPushdown(db *relstore.DB, form FormInfo, pred relstore.Pred, cols []string) (*relstore.Rows, error) {
	rows, _, err := s.read(db, form, nil, false)
	if err != nil {
		return nil, err
	}
	rows, err = relstore.Select(rows, pred)
	if err != nil {
		return nil, err
	}
	if cols == nil {
		return rows, nil
	}
	return relstore.Project(rows, cols...)
}

// Update changes one column of the record identified by key, routing the
// change through every transform down to physical storage.
func (s *Stack) Update(db *relstore.DB, form FormInfo, key relstore.Value, col string, v relstore.Value) (int, error) {
	infos, err := s.adaptAll(form)
	if err != nil {
		return 0, err
	}
	curCol, curV := col, v
	for i, t := range s.Transforms {
		curCol, curV, err = t.AdaptUpdate(db, infos[i], infos[i+1], curCol, curV)
		if err != nil {
			return 0, fmt.Errorf("patterns: update via %s: %w", t.Name(), err)
		}
	}
	n, err := s.Layout.Update(db, infos[len(infos)-1], key, curCol, curV)
	if err == nil && n > 0 && s.Journal != nil {
		err = s.Journal.Record(db, form, key)
	}
	return n, err
}

// Deprecate marks the record with the given key as deleted through the
// stack's Audit transform. It fails when the stack has no Audit layer.
func (s *Stack) Deprecate(db *relstore.DB, form FormInfo, key relstore.Value) (int, error) {
	infos, err := s.adaptAll(form)
	if err != nil {
		return 0, err
	}
	for i, t := range s.Transforms {
		a, ok := t.(*Audit)
		if !ok {
			continue
		}
		// The audit column exists at level i+1; route the update through
		// the remaining transforms.
		curCol, curV := a.column(), relstore.Int(1)
		for j := i + 1; j < len(s.Transforms); j++ {
			curCol, curV, err = s.Transforms[j].AdaptUpdate(db, infos[j], infos[j+1], curCol, curV)
			if err != nil {
				return 0, fmt.Errorf("patterns: deprecate via %s: %w", s.Transforms[j].Name(), err)
			}
		}
		n, err := s.Layout.Update(db, infos[len(infos)-1], key, curCol, curV)
		if err == nil && n > 0 && s.Journal != nil {
			err = s.Journal.Record(db, form, key)
		}
		return n, err
	}
	return 0, fmt.Errorf("patterns: stack %s has no Audit layer to deprecate through", s.Describe())
}

// PhysicalTables lists every physical table of the stack, side tables
// included, for documentation output.
func (s *Stack) PhysicalTables(form FormInfo) ([]string, error) {
	infos, err := s.adaptAll(form)
	if err != nil {
		return nil, err
	}
	var out []string
	for i, t := range s.Transforms {
		if lt, ok := t.(interface{ SideTables(FormInfo) []string }); ok {
			out = append(out, lt.SideTables(infos[i])...)
		}
	}
	out = append(out, s.Layout.PhysicalTables(infos[len(infos)-1])...)
	return out, nil
}

// Sink adapts a stack+database to the ui.RecordSink interface so form
// entries submit straight through the pattern stack, exactly as a reporting
// tool writes its own database.
type Sink struct {
	DB    *relstore.DB
	Stack *Stack
}

// WriteRecord implements ui.RecordSink.
func (s *Sink) WriteRecord(form *ui.Form, values map[string]relstore.Value) error {
	info, err := FromUIForm(form)
	if err != nil {
		return err
	}
	return s.Stack.WriteValues(s.DB, info, values)
}

// Conform reorders and retypes a relation to match the target schema by
// column name. Pattern round trips may lose column order or nullability;
// Conform restores the naive-schema contract.
func Conform(rows *relstore.Rows, target *relstore.Schema) (*relstore.Rows, error) {
	idx := make([]int, target.Arity())
	for i, c := range target.Columns {
		j := rows.Schema.Index(c.Name)
		if j < 0 {
			return nil, fmt.Errorf("patterns: conform: missing column %q (have %s)", c.Name, rows.Schema.NameList())
		}
		idx[i] = j
	}
	out := make([]relstore.Row, len(rows.Data))
	for r, row := range rows.Data {
		nr := make(relstore.Row, target.Arity())
		for i, j := range idx {
			v := row[j]
			if !v.IsNull() && v.Kind() != target.Columns[i].Type {
				cv, err := relstore.Coerce(v, target.Columns[i].Type)
				if err != nil {
					return nil, fmt.Errorf("patterns: conform %q: %w", target.Columns[i].Name, err)
				}
				v = cv
			}
			nr[i] = v
		}
		out[r] = nr
	}
	return &relstore.Rows{Schema: target, Data: out}, nil
}
