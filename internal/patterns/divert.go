package patterns

import (
	"context"
	"fmt"

	"guava/internal/relstore"
)

// SourceMiss is one source record a layout could not reconstruct into a
// naive-schema row: the seam between lossy source modalities (free-text
// reports, damaged archives) and the ETL quarantine. The layout reports
// the miss instead of failing its whole Read, and the caller decides —
// typically by dead-lettering it under the run's quarantine budget.
type SourceMiss struct {
	// Key is the instance key of the affected record, when recoverable
	// (NULL otherwise).
	Key relstore.Value
	// Rule identifies the matcher or constraint that failed, e.g.
	// "NoteReport/HISTORY/SmokeStatus".
	Rule string
	// Err is the underlying extraction error.
	Err error
	// SourceKind classifies the provenance locator: "report-span" for
	// text extraction, "db-row" for relational sources.
	SourceKind string
	// Locator pins the miss inside its source, e.g.
	// "report 17 bytes 120-168".
	Locator string
}

// DivertingReader is the optional lossy-source protocol behind
// Stack.ReadDiverting: a Layout whose source records can individually fail
// reconstruction separates the clean relation from per-record misses
// instead of failing the whole read on the first bad record.
type DivertingReader interface {
	ReadDiverting(ctx context.Context, db *relstore.DB, form FormInfo) (*relstore.Rows, []SourceMiss, error)
}

// ReadDiverting reads the naive relation like Read, but when the layout
// supports per-record miss reporting the misses come back alongside the
// clean rows instead of failing the read. Layouts without the protocol
// behave exactly like Read (no misses, first error fails).
func (s *Stack) ReadDiverting(ctx context.Context, db *relstore.DB, form FormInfo) (*relstore.Rows, []SourceMiss, error) {
	dr, ok := s.Layout.(DivertingReader)
	if !ok {
		rows, err := s.Read(db, form)
		return rows, nil, err
	}
	infos, err := s.adaptAll(form)
	if err != nil {
		return nil, nil, err
	}
	rows, misses, err := dr.ReadDiverting(ctx, db, infos[len(infos)-1])
	if err != nil {
		return nil, nil, fmt.Errorf("patterns: read %s: %w", s.Layout.Name(), err)
	}
	for i := len(s.Transforms) - 1; i >= 0; i-- {
		rows, err = s.Transforms[i].Decode(db, infos[i], infos[i+1], rows)
		if err != nil {
			return nil, nil, fmt.Errorf("patterns: decode %s: %w", s.Transforms[i].Name(), err)
		}
	}
	rows, err = Conform(rows, form.Schema)
	if err != nil {
		return nil, nil, err
	}
	return rows, misses, nil
}
