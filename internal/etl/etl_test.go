package etl

import (
	"context"
	"strings"
	"testing"

	"guava/internal/classifier"
	"guava/internal/gtree"
	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/ui"
)

// contribFixture builds a contributor: a small Procedure form, a pattern
// stack, a populated database, and the derived g-tree.
func contribFixture(t *testing.T, name string, stack *patterns.Stack, records []map[string]relstore.Value) *ContributorPlan {
	t.Helper()
	f := &ui.Form{
		Name: "Procedure", KeyColumn: "ProcedureID",
		Controls: []*ui.Control{
			{Name: "PacksPerDay", Kind: ui.TextBox, Question: "Packs per day", DataType: relstore.KindFloat},
			{Name: "Hypoxia", Kind: ui.CheckBox, Question: "Hypoxia?"},
			{Name: "SurgeryPerformed", Kind: ui.CheckBox, Question: "Surgery?"},
		},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	tree, err := gtree.Derive(name, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	info, err := patterns.FromUIForm(f)
	if err != nil {
		t.Fatal(err)
	}
	db := relstore.NewDB(name)
	if err := stack.Install(db, info); err != nil {
		t.Fatal(err)
	}
	sink := &patterns.Sink{DB: db, Stack: stack}
	for i, rec := range records {
		e, err := ui.NewEntry(f, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range rec {
			if err := e.Set(k, v); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Submit(sink); err != nil {
			t.Fatal(err)
		}
	}
	return &ContributorPlan{Name: name, DB: db, Tree: tree, Stack: stack, Form: info}
}

var habitsTarget = classifier.Target{
	Entity: "Procedure", Attribute: "Smoking", Domain: "D3",
	Kind: relstore.KindString, Elements: []string{"None", "Light", "Moderate", "Heavy"},
}

func studyFixture(t *testing.T) *StudySpec {
	t.Helper()
	stackA := patterns.NewStack(patterns.Generic{}, &patterns.Audit{})
	stackB := patterns.NewStack(&patterns.Split{}, &patterns.Encode{})

	recsA := []map[string]relstore.Value{
		{"PacksPerDay": relstore.Float(0), "Hypoxia": relstore.Bool(false), "SurgeryPerformed": relstore.Bool(true)},
		{"PacksPerDay": relstore.Float(3), "Hypoxia": relstore.Bool(true), "SurgeryPerformed": relstore.Bool(true)},
		{"PacksPerDay": relstore.Float(7), "Hypoxia": relstore.Bool(true), "SurgeryPerformed": relstore.Bool(false)},
	}
	recsB := []map[string]relstore.Value{
		{"PacksPerDay": relstore.Float(1), "Hypoxia": relstore.Bool(false), "SurgeryPerformed": relstore.Bool(true)},
		{"Hypoxia": relstore.Bool(true), "SurgeryPerformed": relstore.Bool(true)}, // packs unanswered
	}
	ca := contribFixture(t, "clinicA", stackA, recsA)
	cb := contribFixture(t, "clinicB", stackB, recsB)

	entity, err := classifier.ParseEntity("Relevant", "surgery only", "Procedure",
		"Procedure <- Procedure AND SurgeryPerformed = TRUE")
	if err != nil {
		t.Fatal(err)
	}
	habits, err := classifier.Parse("Habits (Cancer)", "", habitsTarget, `
None     <- PacksPerDay = 0
Light    <- 0 < PacksPerDay < 2
Moderate <- 2 <= PacksPerDay < 5
Heavy    <- PacksPerDay >= 5
`)
	if err != nil {
		t.Fatal(err)
	}
	hypoxia, err := classifier.Parse("Hypoxia passthrough", "", classifier.Target{
		Entity: "Procedure", Attribute: "Hypoxia", Domain: "D1", Kind: relstore.KindBool,
	}, "Hypoxia <- TRUE")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*ContributorPlan{ca, cb} {
		c.Entity = entity
		c.Classifiers = map[string]*classifier.Classifier{
			"Smoking_D3": habits,
			"Hypoxia_D1": hypoxia,
		}
	}
	return &StudySpec{
		Name: "exsmoker",
		Columns: []ColumnSpec{
			{As: "Smoking_D3", Attribute: "Smoking", Domain: "D3", Kind: relstore.KindString},
			{As: "Hypoxia_D1", Attribute: "Hypoxia", Domain: "D1", Kind: relstore.KindBool},
		},
		Contributors: []*ContributorPlan{ca, cb},
	}
}

// TestFigure6Compile checks the compiled workflow's three-stage shape and
// its execution result.
func TestFigure6Compile(t *testing.T) {
	spec := studyFixture(t)
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Per contributor: extract, select, classify; plus the final union.
	if got := len(compiled.Workflow.Steps); got != 7 {
		t.Errorf("steps = %d, want 7", got)
	}
	plan := compiled.Workflow.Render()
	for _, want := range []string{
		"extract/clinicA", "select/clinicA", "classify/clinicA",
		"extract/clinicB", "load/union",
		"pattern stack [Audit ∘ Generic]",
		"pattern stack [Encode ∘ Split]",
		"CASE WHEN",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}

	rows, err := compiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	// clinicA: records 1,2 pass surgery filter; clinicB: records 1,2.
	if rows.Len() != 4 {
		t.Fatalf("study rows = %d, want 4\n%s", rows.Len(), rows.Format())
	}
	if rows.Schema.NameList() != "EntityKey, Contributor, Smoking_D3, Hypoxia_D1" {
		t.Errorf("schema = %s", rows.Schema.NameList())
	}
	// Row (clinicA, 1): packs 0 -> None.
	if !rows.Data[0].Equal(relstore.Row{relstore.Int(1), relstore.Str("clinicA"), relstore.Str("None"), relstore.Bool(false)}) {
		t.Errorf("row 0 = %v", rows.Data[0])
	}
	// Row (clinicB, 2): packs unanswered -> NULL classification.
	last := rows.Data[3]
	if !last[0].Equal(relstore.Int(2)) || !last[1].Equal(relstore.Str("clinicB")) || !last[2].IsNull() {
		t.Errorf("row 3 = %v", last)
	}
}

// TestHypothesis3Equivalence: the compiled ETL workflow and direct classifier
// evaluation produce identical study outputs, across pattern stacks.
func TestHypothesis3Equivalence(t *testing.T) {
	spec := studyFixture(t)
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	viaETL, err := compiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := DirectEval(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !viaETL.EqualUnordered(direct) {
		t.Errorf("ETL and direct evaluation differ:\nETL:\n%s\ndirect:\n%s", viaETL.Format(), direct.Format())
	}
}

func TestStudyCondition(t *testing.T) {
	spec := studyFixture(t)
	// "writes conditions similar to a WHERE clause in SQL to filter out
	// unwanted data": exclude hypoxia cases.
	for _, c := range spec.Contributors {
		c.Condition = "Hypoxia = FALSE"
	}
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := compiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("rows = %d, want 2\n%s", rows.Len(), rows.Format())
	}
	direct, err := DirectEval(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.EqualUnordered(direct) {
		t.Error("condition: ETL and direct evaluation differ")
	}
	// Bad condition fails compilation.
	spec.Contributors[0].Condition = "Nonexistent = 1"
	if _, err := Compile(spec); err == nil {
		t.Error("unknown node in condition must fail compile")
	}
}

func TestCompileValidation(t *testing.T) {
	spec := studyFixture(t)
	// No contributors.
	if _, err := Compile(&StudySpec{Name: "x"}); err == nil {
		t.Error("empty study must fail")
	}
	// Duplicate contributor names.
	dup := *spec
	dup.Contributors = []*ContributorPlan{spec.Contributors[0], spec.Contributors[0]}
	if _, err := Compile(&dup); err == nil {
		t.Error("duplicate contributors must fail")
	}
	// Missing classifier for a column.
	spec2 := studyFixture(t)
	delete(spec2.Contributors[0].Classifiers, "Smoking_D3")
	if _, err := Compile(spec2); err == nil {
		t.Error("missing classifier must fail")
	}
	// Entity classifier in a domain slot.
	spec3 := studyFixture(t)
	spec3.Contributors[0].Classifiers["Smoking_D3"] = spec3.Contributors[0].Entity
	if _, err := Compile(spec3); err == nil {
		t.Error("entity classifier as domain must fail")
	}
	// Domain classifier in the entity slot.
	spec4 := studyFixture(t)
	spec4.Contributors[0].Entity = spec4.Contributors[0].Classifiers["Smoking_D3"]
	if _, err := Compile(spec4); err == nil {
		t.Error("domain classifier as entity must fail")
	}
	// No entity classifier at all.
	spec5 := studyFixture(t)
	spec5.Contributors[0].Entity = nil
	if _, err := Compile(spec5); err == nil {
		t.Error("missing entity classifier must fail")
	}
	// Column without a name.
	spec6 := studyFixture(t)
	spec6.Columns[0].As = ""
	if _, err := Compile(spec6); err == nil {
		t.Error("unnamed column must fail")
	}
}

func TestEmitSQLPlans(t *testing.T) {
	spec := studyFixture(t)
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := compiled.EmitSQLPlans()
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %d", len(plans))
	}
	if !strings.Contains(plans["clinicA"], "FROM Procedure") || !strings.Contains(plans["clinicA"], "AS Smoking_D3") {
		t.Errorf("clinicA plan:\n%s", plans["clinicA"])
	}
}

func TestWorkflowDAG(t *testing.T) {
	mk := func() (*Workflow, *Context) {
		ctx := NewContext(nil)
		src := ctx.DB("src")
		s := relstore.MustSchema(relstore.Column{Name: "K", Type: relstore.KindInt})
		tab, _ := src.CreateTable("T", s)
		for i := 0; i < 4; i++ {
			if err := tab.Insert(relstore.Row{relstore.Int(int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		return &Workflow{Name: "w"}, ctx
	}

	// Diamond: a -> b, a -> c, (b,c) -> d.
	w, ctx := mk()
	a := w.Add("a", &Query{From: TableRef{"src", "T"}, To: TableRef{"tmp", "A"}})
	b := w.Add("b", &Query{From: TableRef{"tmp", "A"}, Where: relstore.Cmp(relstore.CmpLt, relstore.Col("K"), relstore.Lit(relstore.Int(2))), To: TableRef{"tmp", "B"}}, a)
	c := w.Add("c", &Query{From: TableRef{"tmp", "A"}, Where: relstore.Cmp(relstore.CmpGe, relstore.Col("K"), relstore.Lit(relstore.Int(2))), To: TableRef{"tmp", "C"}}, a)
	w.Add("d", &Union{From: []TableRef{{"tmp", "B"}, {"tmp", "C"}}, To: TableRef{"out", "D"}}, b, c)
	if err := w.Run(context.Background(), ctx); err != nil {
		t.Fatal(err)
	}
	got, err := ctx.DB("out").Table("D")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Errorf("diamond output = %d rows", got.Len())
	}

	// Cycle detection.
	w2, ctx2 := mk()
	w2.Add("x", &Query{From: TableRef{"src", "T"}, To: TableRef{"tmp", "X"}}, "y")
	w2.Add("y", &Query{From: TableRef{"tmp", "X"}, To: TableRef{"tmp", "Y"}}, "x")
	if err := w2.Run(context.Background(), ctx2); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle must fail: %v", err)
	}

	// Unknown dependency.
	w3, ctx3 := mk()
	w3.Add("x", &Query{From: TableRef{"src", "T"}, To: TableRef{"tmp", "X"}}, "ghost")
	if err := w3.Run(context.Background(), ctx3); err == nil {
		t.Error("unknown dependency must fail")
	}

	// Duplicate IDs.
	w4, ctx4 := mk()
	w4.Add("x", &Query{From: TableRef{"src", "T"}, To: TableRef{"tmp", "X"}})
	w4.Add("x", &Query{From: TableRef{"src", "T"}, To: TableRef{"tmp", "Y"}})
	if err := w4.Run(context.Background(), ctx4); err == nil {
		t.Error("duplicate IDs must fail")
	}

	// Empty step ID.
	w5, ctx5 := mk()
	w5.Add("", &Query{From: TableRef{"src", "T"}, To: TableRef{"tmp", "X"}})
	if err := w5.Run(context.Background(), ctx5); err == nil {
		t.Error("empty ID must fail")
	}
}

func TestComponentErrors(t *testing.T) {
	ctx := NewContext(nil)
	// Query from a missing table.
	q := &Query{From: TableRef{"nope", "T"}, To: TableRef{"out", "X"}}
	if err := q.Run(context.Background(), ctx); err == nil {
		t.Error("missing table must fail")
	}
	// Union with no inputs.
	u := &Union{To: TableRef{"out", "X"}}
	if err := u.Run(context.Background(), ctx); err == nil {
		t.Error("empty union must fail")
	}
	// Extract from unregistered source.
	e := &Extract{SourceDB: "ghost", Stack: patterns.NewStack(patterns.Naive{}),
		Form: patterns.FormInfo{Name: "F", KeyColumn: "K", Schema: relstore.MustSchema(
			relstore.Column{Name: "K", Type: relstore.KindInt, NotNull: true})},
		To: TableRef{"out", "X"}}
	if err := e.Run(context.Background(), ctx); err == nil {
		t.Error("unknown source must fail")
	}
}

func TestJoinStep(t *testing.T) {
	ctx := NewContext(nil)
	db := ctx.DB("d")
	ps := relstore.MustSchema(relstore.Column{Name: "PID", Type: relstore.KindInt})
	fs := relstore.MustSchema(relstore.Column{Name: "PID", Type: relstore.KindInt}, relstore.Column{Name: "Size", Type: relstore.KindInt})
	p, _ := db.CreateTable("P", ps)
	f, _ := db.CreateTable("F", fs)
	_ = p.Insert(relstore.Row{relstore.Int(1)})
	_ = p.Insert(relstore.Row{relstore.Int(2)})
	_ = f.Insert(relstore.Row{relstore.Int(1), relstore.Int(10)})
	j := &JoinStep{Left: TableRef{"d", "P"}, Right: TableRef{"d", "F"}, LeftCol: "PID", RightCol: "PID", RightPrefix: "f", To: TableRef{"d", "J"}}
	if err := j.Run(context.Background(), ctx); err != nil {
		t.Fatal(err)
	}
	out, _ := ctx.DB("d").Table("J")
	if out.Len() != 1 {
		t.Errorf("join rows = %d", out.Len())
	}
	if !strings.Contains(j.Describe(), "JOIN d.F ON d.P.PID = d.F.PID") {
		t.Errorf("describe = %s", j.Describe())
	}
}

func TestQueryOptions(t *testing.T) {
	ctx := NewContext(nil)
	db := ctx.DB("d")
	s := relstore.MustSchema(relstore.Column{Name: "K", Type: relstore.KindInt})
	tab, _ := db.CreateTable("T", s)
	for _, k := range []int64{1, 1, 2} {
		_ = tab.Insert(relstore.Row{relstore.Int(k)})
	}
	q := &Query{From: TableRef{"d", "T"}, Distinct: true, To: TableRef{"d", "U"}}
	if err := q.Run(context.Background(), ctx); err != nil {
		t.Fatal(err)
	}
	u, _ := db.Table("U")
	if u.Len() != 2 {
		t.Errorf("distinct rows = %d", u.Len())
	}
	// Rewriting an existing output table replaces it.
	if err := q.Run(context.Background(), ctx); err != nil {
		t.Fatal(err)
	}
	u, _ = db.Table("U")
	if u.Len() != 2 {
		t.Errorf("rerun rows = %d", u.Len())
	}
	if !strings.Contains(q.Describe(), "SELECT * FROM d.T") {
		t.Errorf("describe = %s", q.Describe())
	}
}
