package etl

import (
	"context"
	"reflect"
	"testing"

	"guava/internal/obs"
	"guava/internal/patterns"
	"guava/internal/relstore"
)

// TestRefreshLifecycle: first refresh inserts everything; an identical
// second refresh changes nothing; new records and in-place updates merge
// correctly.
func TestRefreshLifecycle(t *testing.T) {
	spec := studyFixture(t)
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	warehouse := relstore.NewDB("warehouse")

	stats, err := compiled.Refresh(warehouse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 4 || stats.Updated != 0 || stats.Unchanged != 0 {
		t.Fatalf("first refresh = %+v", stats)
	}

	stats, err = compiled.Refresh(warehouse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 0 || stats.Updated != 0 || stats.Unchanged != 4 {
		t.Fatalf("idempotent refresh = %+v", stats)
	}

	// A clinic submits a new report and corrects an old one.
	clinicA := spec.Contributors[0]
	if err := clinicA.Stack.WriteValues(clinicA.DB, clinicA.Form, map[string]relstore.Value{
		"ProcedureID":      relstore.Int(10),
		"PacksPerDay":      relstore.Float(1),
		"Hypoxia":          relstore.Bool(false),
		"SurgeryPerformed": relstore.Bool(true),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := clinicA.Stack.Update(clinicA.DB, clinicA.Form, relstore.Int(1), "PacksPerDay", relstore.Float(3)); err != nil {
		t.Fatal(err)
	}
	stats, err = compiled.Refresh(warehouse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 1 || stats.Updated != 1 || stats.Unchanged != 3 {
		t.Fatalf("incremental refresh = %+v", stats)
	}
	if stats.String() == "" {
		t.Error("stats must render")
	}

	// The warehouse table reflects the update.
	table, err := warehouse.Table("Study_exsmoker")
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 5 {
		t.Fatalf("warehouse rows = %d, want 5", table.Len())
	}
	rows, err := table.Select(relstore.And(
		relstore.Eq(ContributorColumn, relstore.Str("clinicA")),
		relstore.Eq(EntityKeyColumn, relstore.Int(1)),
	))
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || !rows.Data[0][2].Equal(relstore.Str("Moderate")) {
		t.Errorf("updated row = %v", rows.Data)
	}
}

// TestRefreshContextCancellation: a canceled context aborts the refresh
// before it can touch the warehouse.
func TestRefreshContextCancellation(t *testing.T) {
	spec := studyFixture(t)
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	warehouse := relstore.NewDB("warehouse")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := compiled.RefreshContext(ctx, warehouse, RunPolicy{}); err == nil {
		t.Fatal("refresh under a canceled context must fail")
	}
	if warehouse.Has("Study_exsmoker") {
		t.Error("canceled refresh must not create the warehouse table")
	}
}

// TestRefreshContextMetrics: the merge publishes refresh.* counters into the
// registry carried by the context.
func TestRefreshContextMetrics(t *testing.T) {
	spec := studyFixture(t)
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	warehouse := relstore.NewDB("warehouse")
	o := obs.NewObserver()
	ctx := obs.WithObserver(context.Background(), o)
	stats, err := compiled.RefreshContext(ctx, warehouse, RunPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Changed() {
		t.Fatalf("first refresh must report changes, got %+v", stats)
	}
	if got := o.Metrics.Counter("refresh.added").Value(); got != int64(stats.Added) {
		t.Errorf("refresh.added = %d, want %d", got, stats.Added)
	}
	if got := o.Metrics.Counter("refresh.runs").Value(); got != 1 {
		t.Errorf("refresh.runs = %d, want 1", got)
	}
	stats, err = compiled.RefreshContext(ctx, warehouse, RunPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Changed() {
		t.Fatalf("idempotent refresh must not report changes, got %+v", stats)
	}
	if got := o.Metrics.Counter("refresh.unchanged").Value(); got != int64(stats.Unchanged) {
		t.Errorf("refresh.unchanged = %d, want %d", got, stats.Unchanged)
	}
}

// dupKeyRows builds a study-shaped relation where one (Contributor,
// EntityKey) identity legitimately owns several rows — the has-a child
// shape — in the given order.
func dupKeyRows(t *testing.T, vals ...string) *relstore.Rows {
	t.Helper()
	schema := relstore.MustSchema(
		relstore.Column{Name: EntityKeyColumn, Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: ContributorColumn, Type: relstore.KindString, NotNull: true},
		relstore.Column{Name: "Finding", Type: relstore.KindString},
	)
	rows := &relstore.Rows{Schema: schema}
	for _, v := range vals {
		rows.Data = append(rows.Data, relstore.Row{relstore.Int(1), relstore.Str("clinicA"), relstore.Str(v)})
	}
	return rows
}

// TestMergeDeterministicUnderDuplicateKeys is the regression test for the
// refresh-divergence risk: when an entity key maps to several output rows,
// the old row-by-row merge (keyed map built once, Update matching every row
// of the key) oscillated between states and reported spurious updates
// forever. The group-wise merge must converge: two refreshes of identical
// input report Updated == 0 on the second pass, regardless of row order.
func TestMergeDeterministicUnderDuplicateKeys(t *testing.T) {
	fresh := dupKeyRows(t, "polyp", "ulcer")
	table := relstore.NewTable("Study_x", fresh.Schema)

	stats, err := Merge(table, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 2 || stats.Updated != 0 {
		t.Fatalf("first merge = %+v, want 2 added", stats)
	}

	// Identical content, opposite order: still a no-op.
	again := dupKeyRows(t, "ulcer", "polyp")
	for i := 0; i < 3; i++ {
		stats, err = Merge(table, again)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Updated != 0 || stats.Added != 0 || stats.Unchanged != 2 {
			t.Fatalf("re-merge %d of identical input = %+v, want all unchanged", i, stats)
		}
	}
	if table.Len() != 2 {
		t.Fatalf("table rows = %d, want 2", table.Len())
	}

	// A genuine change rewrites the whole group exactly once, then settles.
	changed := dupKeyRows(t, "polyp", "biopsy")
	stats, err = Merge(table, changed)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Updated != 2 || stats.Added != 0 {
		t.Fatalf("changed merge = %+v, want 2 updated", stats)
	}
	stats, err = Merge(table, changed)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Updated != 0 || stats.Unchanged != 2 {
		t.Fatalf("post-change re-merge = %+v, want all unchanged", stats)
	}
}

// TestEmptyDeltaRefreshNoWrites is the regression test for the empty-delta
// path: a RefreshDelta with nothing past the cursors must report zero
// Added/Updated (Changed() false — the signal serving layers use to keep
// their result-cache generation, and with it every cached extract) and must
// leave the warehouse bit-identical.
func TestEmptyDeltaRefreshNoWrites(t *testing.T) {
	ctx := context.Background()
	spec := studyFixture(t)
	for _, c := range spec.Contributors {
		c.Stack.Journal = patterns.NewJournal()
	}
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	warehouse := relstore.NewDB("warehouse")
	if _, err := compiled.Refresh(warehouse); err != nil {
		t.Fatal(err)
	}
	cursors := NewDeltaCursors()
	if err := compiled.SeedDeltaCursors(cursors); err != nil {
		t.Fatal(err)
	}

	// Sanity: a real change flows through the delta path first.
	ca := spec.Contributors[0]
	if _, err := ca.Stack.Update(ca.DB, ca.Form, relstore.Int(2), "PacksPerDay", relstore.Float(7)); err != nil {
		t.Fatal(err)
	}
	report, err := compiled.RefreshDelta(ctx, warehouse, DeltaOptions{Cursors: cursors})
	if err != nil {
		t.Fatal(err)
	}
	if report.Keys != 1 || report.Stats.Updated != 1 || !report.Stats.Changed() {
		t.Fatalf("priming delta = %+v (keys %d), want 1 key, 1 updated", report.Stats, report.Keys)
	}

	table, err := warehouse.Table(compiled.Output.Table)
	if err != nil {
		t.Fatal(err)
	}
	before, err := relstore.SortBy(table.Rows(), table.Schema().Names()...)
	if err != nil {
		t.Fatal(err)
	}
	beforeCursors := cursors.Snapshot()

	// Nothing has changed since: the delta must be empty and writeless.
	report, err = compiled.RefreshDelta(ctx, warehouse, DeltaOptions{Cursors: cursors})
	if err != nil {
		t.Fatal(err)
	}
	if report.Keys != 0 || report.Stats.Added != 0 || report.Stats.Updated != 0 || report.Stats.Total != 0 {
		t.Fatalf("empty delta = %+v (keys %d), want all zero", report.Stats, report.Keys)
	}
	if report.Stats.Changed() {
		t.Fatal("empty delta reports Changed() — serving layers would needlessly invalidate caches")
	}
	after, err := relstore.SortBy(table.Rows(), table.Schema().Names()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Data) != len(after.Data) {
		t.Fatalf("warehouse row count changed: %d -> %d", len(before.Data), len(after.Data))
	}
	for i := range before.Data {
		if before.Data[i].Key() != after.Data[i].Key() {
			t.Fatalf("warehouse row %d changed under an empty delta", i)
		}
	}
	if got := cursors.Snapshot(); !reflect.DeepEqual(got, beforeCursors) {
		t.Fatalf("empty delta moved cursors: %v -> %v", beforeCursors, got)
	}
}
