package etl

import (
	"testing"

	"guava/internal/relstore"
)

// TestRefreshLifecycle: first refresh inserts everything; an identical
// second refresh changes nothing; new records and in-place updates merge
// correctly.
func TestRefreshLifecycle(t *testing.T) {
	spec := studyFixture(t)
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	warehouse := relstore.NewDB("warehouse")

	stats, err := compiled.Refresh(warehouse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 4 || stats.Updated != 0 || stats.Unchanged != 0 {
		t.Fatalf("first refresh = %+v", stats)
	}

	stats, err = compiled.Refresh(warehouse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 0 || stats.Updated != 0 || stats.Unchanged != 4 {
		t.Fatalf("idempotent refresh = %+v", stats)
	}

	// A clinic submits a new report and corrects an old one.
	clinicA := spec.Contributors[0]
	if err := clinicA.Stack.WriteValues(clinicA.DB, clinicA.Form, map[string]relstore.Value{
		"ProcedureID":      relstore.Int(10),
		"PacksPerDay":      relstore.Float(1),
		"Hypoxia":          relstore.Bool(false),
		"SurgeryPerformed": relstore.Bool(true),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := clinicA.Stack.Update(clinicA.DB, clinicA.Form, relstore.Int(1), "PacksPerDay", relstore.Float(3)); err != nil {
		t.Fatal(err)
	}
	stats, err = compiled.Refresh(warehouse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 1 || stats.Updated != 1 || stats.Unchanged != 3 {
		t.Fatalf("incremental refresh = %+v", stats)
	}
	if stats.String() == "" {
		t.Error("stats must render")
	}

	// The warehouse table reflects the update.
	table, err := warehouse.Table("Study_exsmoker")
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 5 {
		t.Fatalf("warehouse rows = %d, want 5", table.Len())
	}
	rows, err := table.Select(relstore.And(
		relstore.Eq(ContributorColumn, relstore.Str("clinicA")),
		relstore.Eq(EntityKeyColumn, relstore.Int(1)),
	))
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || !rows.Data[0][2].Equal(relstore.Str("Moderate")) {
		t.Errorf("updated row = %v", rows.Data)
	}
}
