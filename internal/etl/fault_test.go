package etl_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"guava/internal/etl"
	"guava/internal/etl/faulty"
)

// tracked is a no-op component that records that it ran.
type tracked struct {
	id  string
	mu  *sync.Mutex
	ran map[string]bool
}

func (c tracked) Name() string     { return "nop" }
func (c tracked) Describe() string { return "tracked no-op " + c.id }
func (c tracked) Run(ctx context.Context, env *etl.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.ran[c.id] = true
	c.mu.Unlock()
	return nil
}

// randomDeps draws a random DAG over n steps: deps[i] lists earlier step
// indices step i depends on.
func randomDeps(r *rand.Rand, n int) [][]int {
	deps := make([][]int, n)
	for i := 1; i < n; i++ {
		for d := 0; d < i; d++ {
			if r.Float64() < 0.35 {
				deps[i] = append(deps[i], d)
			}
		}
	}
	return deps
}

// transitiveDependents returns the indices that transitively depend on k.
func transitiveDependents(deps [][]int, k int) map[int]bool {
	out := map[int]bool{}
	for i := k + 1; i < len(deps); i++ {
		for _, d := range deps[i] {
			if d == k || out[d] {
				out[i] = true
				break
			}
		}
	}
	return out
}

// buildFaultDAG materializes the random DAG as a workflow with the step at
// failAt wrapped in a permanently failing Chaos.
func buildFaultDAG(deps [][]int, failAt int) (*etl.Workflow, *sync.Mutex, map[string]bool) {
	mu := &sync.Mutex{}
	ran := map[string]bool{}
	w := &etl.Workflow{Name: "chaos-dag"}
	for i := range deps {
		var ds []string
		for _, d := range deps[i] {
			ds = append(ds, stepID(d))
		}
		var comp etl.Component = tracked{id: stepID(i), mu: mu, ran: ran}
		if i == failAt {
			comp = &faulty.Chaos{FailForever: true}
		}
		w.Add(stepID(i), comp, ds...)
	}
	return w, mu, ran
}

func stepID(i int) string { return fmt.Sprintf("s%d", i) }

// TestRunParallelFaultInjection injects a permanent failure at every step
// index of several random DAGs and asserts that RunParallel (a) returns —
// i.e. its WaitGroup drains and no worker is left behind, (b) surfaces the
// injected error naming the failed step, and (c) under ContinueOnError
// skips exactly the failed step's transitive dependents while everything
// else still runs.
func TestRunParallelFaultInjection(t *testing.T) {
	base := runtime.NumGoroutine()
	r := rand.New(rand.NewSource(7))
	const n = 9
	for dag := 0; dag < 4; dag++ {
		deps := randomDeps(r, n)
		for failAt := 0; failAt < n; failAt++ {
			workers := 1 + (dag+failAt)%4
			// (a)+(b): fail-fast surfaces the first error and returns.
			w, _, _ := buildFaultDAG(deps, failAt)
			err := w.RunParallel(context.Background(), etl.NewContext(nil), workers)
			if err == nil {
				t.Fatalf("dag %d failAt %d: no error", dag, failAt)
			}
			if !errors.Is(err, faulty.ErrInjected) {
				t.Fatalf("dag %d failAt %d: err = %v, want ErrInjected", dag, failAt, err)
			}
			if !strings.Contains(err.Error(), "step "+fmt.Sprintf("%q", stepID(failAt))) {
				t.Fatalf("dag %d failAt %d: err %q does not name the failed step", dag, failAt, err)
			}

			// (c): ContinueOnError prunes exactly the transitive dependents.
			w2, mu, ran := buildFaultDAG(deps, failAt)
			rep, err := w2.Execute(context.Background(), etl.NewContext(nil), etl.RunPolicy{ContinueOnError: true}, workers)
			if err != nil {
				t.Fatalf("dag %d failAt %d: ContinueOnError returned %v", dag, failAt, err)
			}
			if got := rep.Failed(); len(got) != 1 || got[0] != stepID(failAt) {
				t.Fatalf("dag %d failAt %d: failed = %v", dag, failAt, got)
			}
			wantSkipped := transitiveDependents(deps, failAt)
			skipped := map[string]bool{}
			for _, id := range rep.Skipped() {
				skipped[id] = true
			}
			if len(skipped) != len(wantSkipped) {
				t.Fatalf("dag %d failAt %d: skipped %v, want %d dependents", dag, failAt, rep.Skipped(), len(wantSkipped))
			}
			mu.Lock()
			for i := 0; i < n; i++ {
				id := stepID(i)
				switch {
				case i == failAt:
					if rep.Step(id).Status != etl.StepFailed {
						t.Errorf("dag %d failAt %d: step %s = %v, want failed", dag, failAt, id, rep.Step(id).Status)
					}
				case wantSkipped[i]:
					if !skipped[id] {
						t.Errorf("dag %d failAt %d: dependent %s not skipped", dag, failAt, id)
					}
					if ran[id] {
						t.Errorf("dag %d failAt %d: skipped step %s ran", dag, failAt, id)
					}
					if got := rep.Step(id).SkippedBecause; len(got) == 0 {
						t.Errorf("dag %d failAt %d: step %s has no skip cause", dag, failAt, id)
					}
				default:
					if !ran[id] {
						t.Errorf("dag %d failAt %d: independent step %s did not run", dag, failAt, id)
					}
					if rep.Step(id).Status != etl.StepOK {
						t.Errorf("dag %d failAt %d: step %s = %v, want ok", dag, failAt, id, rep.Step(id).Status)
					}
				}
			}
			mu.Unlock()
		}
	}
	// No goroutine leak: worker counts settle back to the baseline.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base+2 {
		t.Errorf("goroutines leaked: %d running, baseline %d", got, base)
	}
}

// TestExecutePanicContainedAndRetried: a step that panics on its first
// attempt is converted to a step error and succeeds on retry.
func TestExecutePanicContainedAndRetried(t *testing.T) {
	w := &etl.Workflow{Name: "panicky"}
	ch := &faulty.Chaos{PanicOnAttempt: 1}
	w.Add("boom", ch)
	rep, err := w.Execute(context.Background(), etl.NewContext(nil), etl.RunPolicy{MaxAttempts: 2}, 1)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	res := rep.Step("boom")
	if res.Status != etl.StepOK || res.Attempts != 2 {
		t.Fatalf("step = %v attempts=%d, want ok after 2 attempts", res.Status, res.Attempts)
	}
	if ch.Attempts() != 2 {
		t.Fatalf("chaos attempts = %d", ch.Attempts())
	}

	// A persistent panic fails the step with a contained error.
	w2 := &etl.Workflow{Name: "panicky2"}
	w2.Add("boom", &faulty.Chaos{PanicOnAttempt: 1})
	err = w2.RunParallel(context.Background(), etl.NewContext(nil), 2)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want contained panic", err)
	}
}
