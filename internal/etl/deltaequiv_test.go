package etl_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"guava/internal/baseline"
	"guava/internal/etl"
	"guava/internal/relstore"
	"guava/internal/workload"
)

// The delta refresh's correctness anchor: for any warehouse state w and any
// mutation history d, deltaRefresh(w, d) must be observationally identical to
// fullRefresh(apply(w, d)) — byte-identical warehouse relations and the same
// Added/Updated counts. The harness drives two universes built from the same
// seed (so they start bit-identical), applies the same randomized mutation
// batches to both, refreshes one through RefreshDelta and the other through
// the full RefreshContext, and compares after every round. On failure the
// offending history is greedily shrunk to a minimal counterexample before
// reporting.

// equivUniverse is one self-contained world: the three form contributors
// plus the free-text Notes contributor, and the two studies studyd serves
// over them (reference and its cohort subset).
type equivUniverse struct {
	contribs []*workload.Contributor
	studies  []*etl.Compiled
}

// buildEquivUniverse constructs the contributors and compiles the reference
// and cohort studies, mirroring studyd's -with-text setup. Including Notes
// makes the randomized property cover the text path too: inserts dictate
// reports, updates re-dictate stored documents, and the delta refresh
// re-extracts exactly the journaled keys.
func buildEquivUniverse(seed int64, n int) (*equivUniverse, error) {
	contribs, err := workload.BuildAll(seed, n)
	if err != nil {
		return nil, err
	}
	notes, err := workload.BuildNotes(seed+3, n)
	if err != nil {
		return nil, err
	}
	contribs = append(contribs, notes)
	ref, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		return nil, err
	}
	cohort, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		return nil, err
	}
	cohort.Name = "cohort"
	cohort.Columns = cohort.Columns[:1]
	for _, c := range cohort.Contributors {
		delete(c.Classifiers, "Hypoxia_D1")
	}
	var studies []*etl.Compiled
	for _, spec := range []*etl.StudySpec{ref, cohort} {
		compiled, err := etl.Compile(spec)
		if err != nil {
			return nil, err
		}
		studies = append(studies, compiled)
	}
	return &equivUniverse{contribs: contribs, studies: studies}, nil
}

// canonicalBytes serializes a warehouse study table sorted on every column,
// so physical row order (which legitimately differs between the delta patch
// and a full merge) cannot mask or fake a divergence.
func canonicalBytes(db *relstore.DB, table string) ([]byte, error) {
	if !db.Has(table) {
		return nil, nil
	}
	t, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	rows := t.Rows()
	sorted, err := relstore.SortBy(rows, rows.Schema.Names()...)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := relstore.WriteTyped(&buf, sorted); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// compareWarehouses returns a description of the first relation mismatch
// between the two warehouses, or "".
func compareWarehouses(du *equivUniverse, dw, fw *relstore.DB) (string, error) {
	for _, study := range du.studies {
		table := study.Output.Table
		db, err := canonicalBytes(dw, table)
		if err != nil {
			return "", err
		}
		fb, err := canonicalBytes(fw, table)
		if err != nil {
			return "", err
		}
		if !bytes.Equal(db, fb) {
			return fmt.Sprintf("relation %s diverged:\n--- delta ---\n%s\n--- full ---\n%s", table, db, fb), nil
		}
	}
	return "", nil
}

// checkEquivalence replays the mutation history through both refresh paths
// and returns a description of the first divergence ("" when equivalent).
func checkEquivalence(seed int64, n int, history [][]workload.Mutation) (string, error) {
	ctx := context.Background()
	du, err := buildEquivUniverse(seed, n)
	if err != nil {
		return "", err
	}
	fu, err := buildEquivUniverse(seed, n)
	if err != nil {
		return "", err
	}
	dw := relstore.NewDB("warehouse_delta")
	fw := relstore.NewDB("warehouse_full")

	// Initial load: both universes run a full refresh; the delta universe
	// then pins its cursors at the journals' current high-water marks.
	cursors := make(map[string]*etl.DeltaCursors)
	for _, s := range du.studies {
		if _, err := s.RefreshContext(ctx, dw, etl.RunPolicy{}); err != nil {
			return "", err
		}
		cur := etl.NewDeltaCursors()
		if err := s.SeedDeltaCursors(cur); err != nil {
			return "", err
		}
		cursors[s.Spec.Name] = cur
	}
	for _, s := range fu.studies {
		if _, err := s.RefreshContext(ctx, fw, etl.RunPolicy{}); err != nil {
			return "", err
		}
	}
	if d, err := compareWarehouses(du, dw, fw); err != nil || d != "" {
		return d, err
	}

	var totalKeys, totalWrites int
	for ri, batch := range history {
		if err := workload.Apply(du.contribs, batch); err != nil {
			return "", err
		}
		if err := workload.Apply(fu.contribs, batch); err != nil {
			return "", err
		}
		for si := range du.studies {
			ds := du.studies[si]
			report, err := ds.RefreshDelta(ctx, dw, etl.DeltaOptions{Cursors: cursors[ds.Spec.Name]})
			if err != nil {
				return "", err
			}
			totalKeys += report.Keys
			totalWrites += report.Stats.Added + report.Stats.Updated
			full, err := fu.studies[si].RefreshContext(ctx, fw, etl.RunPolicy{})
			if err != nil {
				return "", err
			}
			// Added and Updated are warehouse writes — provably identical
			// on both paths. Unchanged/Total are delta-scoped by design and
			// deliberately not compared.
			if report.Stats.Added != full.Added || report.Stats.Updated != full.Updated ||
				report.Stats.Changed() != full.Changed() {
				return fmt.Sprintf("round %d study %s stats diverged: delta %+v vs full %+v",
					ri, ds.Spec.Name, report.Stats, full), nil
			}
		}
		if d, err := compareWarehouses(du, dw, fw); err != nil || d != "" {
			if d != "" {
				d = fmt.Sprintf("after round %d: %s", ri, d)
			}
			return d, err
		}
	}
	// Guard the property against vacuity: a history that never produced a
	// non-empty delta (or never wrote to the warehouse) tests nothing.
	if len(history) > 0 && (totalKeys == 0 || totalWrites == 0) {
		return "", fmt.Errorf("vacuous harness: %d delta keys, %d warehouse writes across %d rounds",
			totalKeys, totalWrites, len(history))
	}
	return "", nil
}

// shrinkHistory greedily removes single mutations while the divergence
// persists, yielding a (locally) minimal failing history.
func shrinkHistory(seed int64, n int, history [][]workload.Mutation) [][]workload.Mutation {
	improved := true
	for improved {
		improved = false
		for ri := range history {
			for mi := 0; mi < len(history[ri]); mi++ {
				cand := make([][]workload.Mutation, len(history))
				for i := range history {
					if i != ri {
						cand[i] = history[i]
						continue
					}
					cand[i] = append(append([]workload.Mutation{}, history[i][:mi]...), history[i][mi+1:]...)
				}
				d, err := checkEquivalence(seed, n, cand)
				if err == nil && d != "" {
					history = cand
					improved = true
					mi--
				}
			}
		}
	}
	return history
}

// TestDeltaEquivalence is the randomized delta ≡ full-recompute property
// test over the reference and cohort studies.
func TestDeltaEquivalence(t *testing.T) {
	const (
		seed      = 7
		n         = 40
		rounds    = 4
		batchSize = 12
	)
	// Generate the history against a probe universe so each round's batch
	// targets the record population as it stands after the previous rounds.
	probe, err := buildEquivUniverse(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	var history [][]workload.Mutation
	for r := 0; r < rounds; r++ {
		batch := workload.RandomBatch(probe.contribs, seed*1000+int64(r), batchSize)
		if err := workload.Apply(probe.contribs, batch); err != nil {
			t.Fatal(err)
		}
		history = append(history, batch)
	}

	divergence, err := checkEquivalence(seed, n, history)
	if err != nil {
		t.Fatal(err)
	}
	if divergence == "" {
		return
	}
	shrunk := shrinkHistory(seed, n, history)
	var trace bytes.Buffer
	for ri, batch := range shrunk {
		for _, m := range batch {
			fmt.Fprintf(&trace, "  round %d: %s\n", ri, m)
		}
	}
	d, _ := checkEquivalence(seed, n, shrunk)
	t.Fatalf("delta refresh diverged from full recompute.\nMinimal history:\n%s\n%s", trace.String(), d)
}
