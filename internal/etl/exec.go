package etl

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"guava/internal/obs"
)

// Execute runs the workflow under a RunPolicy and returns a RunReport
// describing every step's fate. It is the engine beneath Run and
// RunParallel: a dependency-counting scheduler with per-step retry,
// per-step and per-workflow deadlines, and — with policy.ContinueOnError —
// graceful pruning of a failed step's transitive dependents while every
// independent step still runs.
//
// workers bounds concurrency (<= 0 means one goroutine per ready step).
//
// The returned error is non-nil when the workflow is structurally invalid,
// when ctx is canceled or a deadline expires, or — without ContinueOnError —
// on the first step failure. With ContinueOnError, step failures are
// recorded in the report (report.Err holds the first one) and the call
// itself returns nil so the caller can salvage partial results.
func (w *Workflow) Execute(ctx context.Context, env *Context, policy RunPolicy, workers int) (*RunReport, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	steps, err := w.order() // validates IDs, deps, acyclicity
	if err != nil {
		return nil, err
	}
	// The workflow span opens before the timeout wrap and before execCtx
	// derives, so every step, attempt, and component span nests under it
	// and deadline overruns show up inside its duration.
	metrics := obs.MetricsFrom(ctx)
	ctx, wfSpan := obs.StartSpan(ctx, "workflow "+w.Name,
		obs.String("workflow", w.Name), obs.Int("steps", int64(len(steps))))
	metrics.Gauge("etl.workflow.active").Add(1)
	defer metrics.Gauge("etl.workflow.active").Add(-1)
	if policy.WorkflowTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, policy.WorkflowTimeout)
		defer cancel()
	}
	// Own cancel scope: aborting the run tells in-flight components to
	// stop, so the scheduler never waits on work it no longer needs.
	execCtx, cancelExec := context.WithCancel(ctx)
	defer cancelExec()

	report := &RunReport{Workflow: w.Name, Trace: wfSpan, byID: make(map[string]*StepResult, len(steps))}
	var quar *quarantine
	if policy.MaxQuarantinedRows > 0 {
		quar = newQuarantine(w.Name, policy.MaxQuarantinedRows)
		execCtx = withQuarantine(execCtx, quar)
		report.q = quar
	}
	ckpt := policy.Checkpoint
	fingerprint := policy.CheckpointKey
	if ckpt != nil && fingerprint == "" {
		fingerprint = w.Fingerprint()
	}
	for _, s := range steps {
		res := &StepResult{ID: s.ID, Status: StepSkipped}
		report.Steps = append(report.Steps, res)
		report.byID[s.ID] = res
	}

	indegree := make(map[string]int, len(steps))
	children := make(map[string][]*Step, len(steps))
	byID := make(map[string]*Step, len(steps))
	for _, s := range steps {
		byID[s.ID] = s
		indegree[s.ID] = len(s.DependsOn)
		for _, d := range s.DependsOn {
			children[d] = append(children[d], s)
		}
	}

	if workers <= 0 {
		workers = len(steps)
	}
	wfSpan.SetAttr(obs.Int("workers", int64(workers)))
	type item struct {
		step     *Step
		comp     Component
		enqueued time.Time // when the step became ready, for queue-wait
	}
	work := make(chan item, len(steps))
	done := make(chan *Step, len(steps))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case it, ok := <-work:
					if !ok {
						return
					}
					res := report.byID[it.step.ID]
					res.QueueWait = time.Since(it.enqueued)
					metrics.Histogram("etl.step.queue_wait_ms").Observe(float64(res.QueueWait) / float64(time.Millisecond))
					w.runStep(execCtx, env, it.step, it.comp, policy, res)
					// Only fully-successful steps checkpoint: a degraded
					// step's output reflects a pruned plan, and restoring it
					// into a healthy later run would silently drop
					// contributors.
					if ckpt != nil && res.Status == StepOK && res.Err == nil {
						saveCheckpoint(execCtx, env, ckpt, fingerprint, it.step, quar)
					}
					done <- it.step
				}
			}
		}()
	}

	// taint[id] = the failed or skipped transitive ancestors of a step,
	// known once all its dependencies completed. Only the scheduler
	// goroutine touches it.
	taint := make(map[string]map[string]bool, len(steps))

	// dispatch hands a ready step to a worker, or resolves it inline as
	// skipped when failed ancestors starve it of inputs and it cannot
	// degrade. Returns true when resolved inline.
	dispatch := func(s *Step) bool {
		res := report.byID[s.ID]
		t := map[string]bool{}
		for _, d := range s.DependsOn {
			for id := range taint[d] {
				t[id] = true
			}
			switch report.byID[d].Status {
			case StepFailed, StepSkipped:
				t[d] = true
			}
		}
		taint[s.ID] = t
		if len(t) == 0 {
			// A step already checkpointed under this plan's fingerprint is
			// restored inline — its outputs materialize without a worker,
			// an attempt, or a re-execution. Corrupt or unreadable
			// snapshots demote to a miss and the step runs normally.
			if ckpt != nil && tryRestore(execCtx, env, ckpt, fingerprint, s, res, quar) {
				return true
			}
			res.Status = StepOK // provisional; runStep records failures
			work <- item{step: s, comp: s.Component, enqueued: time.Now()}
			return false
		}
		cause := make([]string, 0, len(t))
		for id := range t {
			cause = append(cause, id)
		}
		sort.Strings(cause)
		res.SkippedBecause = cause
		// Tables the failed/skipped ancestors would have written never
		// materialized; a degradable component may run without them.
		unavailable := map[string]bool{}
		for id := range t {
			if wr, ok := byID[id].Component.(writer); ok {
				for _, ref := range wr.Writes() {
					unavailable[ref.String()] = true
				}
			}
		}
		if dg, ok := s.Component.(degradable); ok {
			if reduced, ok2 := dg.WithoutInputs(unavailable); ok2 {
				res.Status = StepDegraded // provisional
				if rd, ok3 := s.Component.(reader); ok3 {
					for _, ref := range rd.Reads() {
						if unavailable[ref.String()] {
							res.DroppedInputs = append(res.DroppedInputs, ref)
						}
					}
				}
				work <- item{step: s, comp: reduced, enqueued: time.Now()}
				return false
			}
		}
		res.Status = StepSkipped
		// Skipped steps never reach a worker, so give them an instant span
		// here — the trace still names every step and why it was pruned.
		_, skipSpan := obs.StartSpan(execCtx, "step "+s.ID,
			obs.String("step", s.ID), obs.String("status", "skipped"),
			obs.String("because", strings.Join(cause, ",")))
		skipSpan.End()
		res.Span = skipSpan
		metrics.Counter("etl.steps.skipped").Inc()
		return true
	}

	completed := 0
	// cascade dispatches each ready step; steps resolved inline — skipped
	// for taint, or restored from a checkpoint — complete immediately and
	// unlock their own children in turn without a worker round-trip.
	cascade := func(ready []*Step) {
		queue := append([]*Step(nil), ready...)
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			if !dispatch(c) {
				continue
			}
			completed++
			for _, cc := range children[c.ID] {
				indegree[cc.ID]--
				if indegree[cc.ID] == 0 {
					queue = append(queue, cc)
				}
			}
		}
	}
	roots := make([]*Step, 0, len(steps))
	for _, s := range steps {
		if indegree[s.ID] == 0 {
			roots = append(roots, s)
		}
	}
	cascade(roots)

	var firstErr error
loop:
	for completed < len(steps) {
		select {
		case <-ctx.Done():
			firstErr = fmt.Errorf("etl: workflow %q: %w", w.Name, ctx.Err())
			break loop
		case s := <-done:
			completed++
			res := report.byID[s.ID]
			if res.Status == StepFailed {
				if report.Err == nil {
					report.Err = res.Err
				}
				if !policy.ContinueOnError {
					firstErr = res.Err
					break loop
				}
			}
			ready := make([]*Step, 0, len(children[s.ID]))
			for _, c := range children[s.ID] {
				indegree[c.ID]--
				if indegree[c.ID] == 0 {
					ready = append(ready, c)
				}
			}
			cascade(ready)
		}
	}
	cancelExec()
	close(stop)
	// work and done are buffered to len(steps); in-flight workers finish
	// without blocking. Components that honor ctx return promptly.
	wg.Wait()

	if firstErr != nil {
		// Aborted: steps that were queued or pending but never ran count
		// as skipped, not ok/degraded — but checkpoint-restored steps did
		// complete and keep their status. Their Duration stays zero —
		// absent, not measured.
		for _, res := range report.Steps {
			if res.Attempts == 0 && res.Status != StepFailed && res.Status != StepRestored {
				res.Status = StepSkipped
				if res.Span == nil {
					_, sp := obs.StartSpan(execCtx, "step "+res.ID,
						obs.String("step", res.ID), obs.String("status", "skipped"),
						obs.String("because", "workflow aborted"))
					sp.End()
					res.Span = sp
					metrics.Counter("etl.steps.skipped").Inc()
				}
			}
		}
		if report.Err == nil {
			report.Err = firstErr
		}
	}
	if quar != nil {
		for _, res := range report.Steps {
			res.Quarantined = quar.stepCount(res.ID)
		}
		report.Quarantined = quar.len()
		wfSpan.SetAttr(obs.Int("rows.quarantined", int64(report.Quarantined)))
	}
	wfSpan.SetAttr(
		obs.Int("steps.failed", int64(len(report.Failed()))),
		obs.Int("steps.skipped", int64(len(report.Skipped()))),
		obs.Int("steps.degraded", int64(len(report.Degraded()))),
		obs.Int("steps.restored", int64(len(report.Restored()))),
	)
	wfSpan.EndErr(report.Err)
	return report, firstErr
}

// tryRestore resolves a step from its checkpoint: the snapshot's tables
// materialize into env and its quarantined rows re-enter the run's
// dead-letter relation. Any problem — a corrupt snapshot, a clean miss, a
// write failure — returns false and the step runs normally; checkpointing
// never makes a run worse than not having checkpoints at all.
func tryRestore(ctx context.Context, env *Context, ckpt Checkpointer, fp string, s *Step, res *StepResult, quar *quarantine) bool {
	metrics := obs.MetricsFrom(ctx)
	snap, err := ckpt.Load(fp, s.ID)
	if err != nil {
		metrics.Counter("ckpt.corrupt").Inc()
		obs.Event(ctx, "checkpoint corrupt",
			obs.String("step", s.ID), obs.String("error", err.Error()))
		return false
	}
	if snap == nil {
		metrics.Counter("ckpt.miss").Inc()
		return false
	}
	if err := restoreSnapshot(env, snap); err != nil {
		metrics.Counter("ckpt.restore_err").Inc()
		obs.Event(ctx, "checkpoint restore failed",
			obs.String("step", s.ID), obs.String("error", err.Error()))
		return false
	}
	if quar != nil && len(snap.Quarantined) > 0 {
		quar.restore(snap.Quarantined)
	}
	res.Status = StepRestored
	_, sp := obs.StartSpan(ctx, "step "+s.ID,
		obs.String("step", s.ID), obs.String("status", "restored"),
		obs.Int("tables", int64(len(snap.Tables))))
	sp.End()
	res.Span = sp
	metrics.Counter("ckpt.restored").Inc()
	return true
}

// saveCheckpoint snapshots a completed step's written tables (and the rows
// it quarantined) into the store. Save failures are observability warnings,
// not run failures: a full checkpoint disk must not fail an otherwise
// healthy study run.
func saveCheckpoint(ctx context.Context, env *Context, ckpt Checkpointer, fp string, s *Step, quar *quarantine) {
	metrics := obs.MetricsFrom(ctx)
	start := time.Now()
	snap := &Snapshot{Step: s.ID}
	if wr, ok := s.Component.(writer); ok {
		for _, ref := range wr.Writes() {
			rows, err := ref.read(env)
			if err != nil {
				metrics.Counter("ckpt.save_err").Inc()
				obs.Event(ctx, "checkpoint save failed",
					obs.String("step", s.ID), obs.String("error", err.Error()))
				return
			}
			snap.Tables = append(snap.Tables, TableSnapshot{Ref: ref, Rows: rows})
		}
	}
	if quar != nil {
		snap.Quarantined = quar.forStep(s.ID)
	}
	if err := ckpt.Save(fp, s.ID, snap); err != nil {
		metrics.Counter("ckpt.save_err").Inc()
		obs.Event(ctx, "checkpoint save failed",
			obs.String("step", s.ID), obs.String("error", err.Error()))
		return
	}
	metrics.Counter("ckpt.saved").Inc()
	metrics.Histogram("ckpt.save_ms").Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

// runStep executes one step with retry under the policy, recording the
// outcome into res.
func (w *Workflow) runStep(ctx context.Context, env *Context, s *Step, comp Component, policy RunPolicy, res *StepResult) {
	metrics := obs.MetricsFrom(ctx)
	sctx, span := obs.StartSpan(ctx, "step "+s.ID, obs.String("step", s.ID))
	sctx = withStepID(sctx, s.ID) // provenance for quarantined rows
	res.Span = span
	if res.Status == StepDegraded {
		span.SetAttr(obs.Bool("degraded", true))
		if len(res.DroppedInputs) > 0 {
			parts := make([]string, len(res.DroppedInputs))
			for i, ref := range res.DroppedInputs {
				parts[i] = ref.String()
			}
			span.SetAttr(obs.String("dropped_inputs", strings.Join(parts, ",")))
		}
	}
	// start carries a monotonic clock reading, so res.Duration is immune
	// to wall-clock adjustments mid-run.
	start := time.Now()
	max := policy.attempts()
	for attempt := 1; attempt <= max; attempt++ {
		res.Attempts = attempt
		metrics.Counter("etl.attempts").Inc()
		if attempt > 1 {
			metrics.Counter("etl.retries").Inc()
		}
		if quar := quarantineFrom(ctx); quar != nil {
			quar.resetStep(s.ID)
		}
		actx, aspan := obs.StartSpan(sctx, fmt.Sprintf("attempt %d", attempt))
		err := runAttempt(actx, env, comp, policy.StepTimeout)
		aspan.EndErr(err)
		if err == nil {
			res.Err = nil
			break
		}
		if errors.Is(err, context.DeadlineExceeded) {
			metrics.Counter("etl.timeouts").Inc()
		}
		res.Err = fmt.Errorf("etl: workflow %q step %q: %w", w.Name, s.ID, err)
		if attempt == max || ctx.Err() != nil || !policy.retryable(err) {
			break
		}
		if err := policy.sleep(ctx, policy.delay(attempt)); err != nil {
			break
		}
	}
	res.Duration = time.Since(start)
	if res.Err != nil {
		res.Status = StepFailed
		metrics.Counter("etl.steps.failed").Inc()
	} else if res.Status == StepDegraded {
		metrics.Counter("etl.steps.degraded").Inc()
	} else {
		metrics.Counter("etl.steps.ok").Inc()
	}
	metrics.Histogram("etl.step.run_ms").Observe(float64(res.Duration) / float64(time.Millisecond))
	span.SetAttr(obs.String("status", res.Status.String()), obs.Int("attempts", int64(res.Attempts)))
	span.EndErr(res.Err)
}

// runAttempt runs one attempt with an optional per-attempt deadline,
// converting panics into errors so a misbehaving component cannot take the
// scheduler down with it.
func runAttempt(ctx context.Context, env *Context, comp Component, timeout time.Duration) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("step panicked: %v", r)
		}
	}()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return comp.Run(ctx, env)
}
