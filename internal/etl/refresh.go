package etl

import (
	"fmt"

	"guava/internal/relstore"
)

// The paper's warehouse receives contributor data periodically ("Data from
// the CORI software tool is periodically sent for inclusion in the CORI
// warehouse"). Refresh re-runs a compiled study and merges its output into a
// persistent warehouse table keyed by (Contributor, EntityKey): new entities
// insert, changed entities update in place, unchanged entities are left
// alone — so annotations and downstream extracts can rely on stable history.

// RefreshStats summarizes one warehouse refresh.
type RefreshStats struct {
	Added     int
	Updated   int
	Unchanged int
	Total     int
}

// String renders the stats for CLI output.
func (s RefreshStats) String() string {
	return fmt.Sprintf("%d rows: %d added, %d updated, %d unchanged", s.Total, s.Added, s.Updated, s.Unchanged)
}

// Refresh runs the study and merges its output into warehouse table
// "Study_<name>", creating it on first refresh. It returns the merge stats.
func (c *Compiled) Refresh(warehouse *relstore.DB) (RefreshStats, error) {
	var stats RefreshStats
	fresh, err := c.Run()
	if err != nil {
		return stats, err
	}
	stats.Total = fresh.Len()
	tableName := c.Output.Table
	table, err := warehouse.EnsureTable(tableName, fresh.Schema)
	if err != nil {
		return stats, err
	}
	keyOf := func(r relstore.Row) string {
		return r[1].Key() + "\x1f" + r[0].Key() // Contributor, EntityKey
	}
	existing := map[string]relstore.Row{}
	table.Scan(func(r relstore.Row) bool {
		existing[keyOf(r)] = r.Clone()
		return true
	})
	for _, r := range fresh.Data {
		k := keyOf(r)
		old, ok := existing[k]
		if !ok {
			if err := table.Insert(r); err != nil {
				return stats, err
			}
			stats.Added++
			continue
		}
		if old.Equal(r) {
			stats.Unchanged++
			continue
		}
		pred := relstore.And(
			relstore.Eq(ContributorColumn, r[1]),
			relstore.Eq(EntityKeyColumn, r[0]),
		)
		row := r.Clone()
		if _, err := table.Update(pred, func(relstore.Row) relstore.Row { return row.Clone() }); err != nil {
			return stats, err
		}
		stats.Updated++
	}
	return stats, nil
}
