package etl

import (
	"context"
	"fmt"
	"sort"

	"guava/internal/obs"
	"guava/internal/relstore"
)

// The paper's warehouse receives contributor data periodically ("Data from
// the CORI software tool is periodically sent for inclusion in the CORI
// warehouse"). Refresh re-runs a compiled study and merges its output into a
// persistent warehouse table keyed by (Contributor, EntityKey): new entities
// insert, changed entities update in place, unchanged entities are left
// alone — so annotations and downstream extracts can rely on stable history.

// RefreshStats summarizes one warehouse refresh.
type RefreshStats struct {
	Added     int
	Updated   int
	Unchanged int
	Removed   int // warehouse rows deleted because their entity left the study output
	Total     int
}

// Changed reports whether the refresh wrote anything — the signal serving
// layers use to decide whether cached extracts are stale.
func (s RefreshStats) Changed() bool { return s.Added > 0 || s.Updated > 0 || s.Removed > 0 }

// String renders the stats for CLI output.
func (s RefreshStats) String() string {
	out := fmt.Sprintf("%d rows: %d added, %d updated, %d unchanged", s.Total, s.Added, s.Updated, s.Unchanged)
	if s.Removed > 0 {
		out += fmt.Sprintf(", %d removed", s.Removed)
	}
	return out
}

// Refresh runs the study and merges its output into warehouse table
// "Study_<name>", creating it on first refresh. It returns the merge stats.
func (c *Compiled) Refresh(warehouse *relstore.DB) (RefreshStats, error) {
	return c.RefreshContext(context.Background(), warehouse, RunPolicy{})
}

// RefreshContext is Refresh under a RunPolicy: the study re-runs through the
// resilient executor (retries, timeouts, quarantine, checkpoints, graceful
// degradation all apply), honoring ctx cancellation, and the output merges
// into the warehouse. A degraded run merges only the surviving contributors'
// rows; a dead contributor's existing warehouse history is left untouched,
// never deleted — the stable-history contract of the CORI warehouse. For
// contributors that did run, the warehouse converges to the study output:
// entities the run no longer produces (deprecated rows, entities that fell
// out of the selection) are removed from their groups.
//
// The merge publishes refresh.runs/added/updated/unchanged counters into the
// metrics registry carried by ctx (obs.MetricsFrom), so both the batch CLI
// and the serving daemon account refresh traffic the same way.
func (c *Compiled) RefreshContext(ctx context.Context, warehouse *relstore.DB, policy RunPolicy) (RefreshStats, error) {
	var stats RefreshStats
	ctx, span := obs.StartSpan(ctx, "refresh "+c.Spec.Name, obs.String("study", c.Spec.Name))
	var err error
	defer func() { span.EndErr(err) }()
	var fresh *relstore.Rows
	var runReport *RunReport
	fresh, runReport, err = c.RunResilient(ctx, policy, 0)
	if err != nil {
		return stats, err
	}
	table, err := warehouse.EnsureTable(c.Output.Table, fresh.Schema)
	if err != nil {
		return stats, err
	}
	stats, err = Merge(table, fresh, runReport.DegradedContributors...)
	if err != nil {
		return stats, err
	}
	m := obs.MetricsFrom(ctx)
	m.Counter("refresh.runs").Inc()
	m.Counter("refresh.added").Add(int64(stats.Added))
	m.Counter("refresh.updated").Add(int64(stats.Updated))
	m.Counter("refresh.unchanged").Add(int64(stats.Unchanged))
	m.Counter("refresh.removed").Add(int64(stats.Removed))
	span.SetAttr(obs.Int("added", int64(stats.Added)), obs.Int("updated", int64(stats.Updated)),
		obs.Int("unchanged", int64(stats.Unchanged)), obs.Int("removed", int64(stats.Removed)))
	return stats, nil
}

// refreshKey is the merge identity: (Contributor, EntityKey), read off the
// fixed leading columns of every compiled study output.
func refreshKey(r relstore.Row) string {
	return r[1].Key() + "\x1f" + r[0].Key()
}

// Merge merges a freshly computed study relation into the warehouse table,
// grouping both sides by (Contributor, EntityKey) and comparing the groups
// as sorted multisets. Comparing whole groups — not row-by-row against a
// point-in-time map — keeps the merge deterministic and convergent even
// when an entity key legitimately maps to several output rows (a has-a
// child join): re-merging identical input is always a no-op, whatever order
// the union produced the duplicates in.
//
// After patching the fresh groups, Merge removes warehouse groups the run no
// longer produced — a deprecated entity's rows must not survive a refresh, or
// the warehouse diverges from what a from-scratch run would build. The
// exception is degraded contributors: pass the names of contributors whose
// chains failed (RunReport.DegradedContributors) as keepContributors and
// their existing history is preserved verbatim, since their absence from the
// fresh output means "didn't run", not "has no data".
//
// Merge is exported separately from RefreshContext so a serving layer can
// run the (expensive) study outside its warehouse write lock and hold the
// lock only for this merge.
func Merge(table *relstore.Table, fresh *relstore.Rows, keepContributors ...string) (RefreshStats, error) {
	var stats RefreshStats
	stats.Total = fresh.Len()

	// Group keys on both sides are extracted through the columnar batch
	// kernel — key-string building dominates a large merge, and each row's
	// key is independent, so it fans out across relstore's worker pool while
	// the ordered grouping below stays sequential and deterministic.
	snapshot := table.Rows()
	existingKeys := relstore.ParallelRowKeys(snapshot.Data, refreshKey)
	existing := map[string][]relstore.Row{}
	for i, r := range snapshot.Data {
		existing[existingKeys[i]] = append(existing[existingKeys[i]], r)
	}

	freshKeys := relstore.ParallelRowKeys(fresh.Data, refreshKey)
	var order []string
	groups := map[string][]relstore.Row{}
	for i, r := range fresh.Data {
		k := freshKeys[i]
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}

	for _, k := range order {
		group := groups[k]
		old, ok := existing[k]
		if !ok {
			if err := table.InsertAll(group); err != nil {
				return stats, err
			}
			stats.Added += len(group)
			continue
		}
		if sameRowSet(old, group) {
			stats.Unchanged += len(group)
			continue
		}
		pred := relstore.And(
			relstore.Eq(ContributorColumn, group[0][1]),
			relstore.Eq(EntityKeyColumn, group[0][0]),
		)
		if _, err := table.Delete(pred); err != nil {
			return stats, err
		}
		if err := table.InsertAll(group); err != nil {
			return stats, err
		}
		stats.Updated += len(group)
	}

	// Stale groups: present in the warehouse, absent from the fresh run.
	// Deleting them keeps the warehouse convergent with a from-scratch
	// build, except for contributors the run degraded past.
	keep := make(map[string]bool, len(keepContributors))
	for _, name := range keepContributors {
		keep[relstore.Str(name).Key()] = true
	}
	var stale []string
	for k, old := range existing {
		if _, live := groups[k]; live {
			continue
		}
		if keep[old[0][1].Key()] {
			continue
		}
		stale = append(stale, k)
	}
	sort.Strings(stale)
	for _, k := range stale {
		old := existing[k]
		pred := relstore.And(
			relstore.Eq(ContributorColumn, old[0][1]),
			relstore.Eq(EntityKeyColumn, old[0][0]),
		)
		if _, err := table.Delete(pred); err != nil {
			return stats, err
		}
		stats.Removed += len(old)
	}
	return stats, nil
}

// sameRowSet compares two row groups as multisets, order-independently.
func sameRowSet(a, b []relstore.Row) bool {
	if len(a) != len(b) {
		return false
	}
	ka := relstore.ParallelRowKeys(a, relstore.Row.Key)
	kb := relstore.ParallelRowKeys(b, relstore.Row.Key)
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
