package etl

import (
	"strings"
	"testing"

	"guava/internal/patterns"
	"guava/internal/relstore"
)

// TestLintCompiledStudies: every compiled study passes the dataflow linter.
func TestLintCompiledStudies(t *testing.T) {
	spec := studyFixture(t)
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := compiled.Workflow.Lint(); err != nil {
		t.Errorf("compiled workflow fails lint: %v", err)
	}
}

func TestLintCatchesDataflowBugs(t *testing.T) {
	src := TableRef{"src", "T"}
	// A step reading a table no step produces.
	w := &Workflow{Name: "w1"}
	w.Add("a", &Query{From: TableRef{"tmp", "ghost"}, To: TableRef{"tmp", "A"}})
	if err := w.Lint(); err == nil || !strings.Contains(err.Error(), "no step produces") {
		t.Errorf("err = %v", err)
	}

	// A step reading a produced table without depending on the producer.
	w2 := &Workflow{Name: "w2"}
	w2.Add("produce", &Extract{SourceDB: "src",
		Form: patternsFormFixture(), To: src})
	w2.Add("consume", &Query{From: src, To: TableRef{"tmp", "B"}}) // no dep!
	if err := w2.Lint(); err == nil || !strings.Contains(err.Error(), "does not depend on") {
		t.Errorf("err = %v", err)
	}

	// Adding the dependency fixes it.
	w3 := &Workflow{Name: "w3"}
	p := w3.Add("produce", &Extract{SourceDB: "src", Form: patternsFormFixture(), To: src})
	w3.Add("consume", &Query{From: src, To: TableRef{"tmp", "B"}}, p)
	if err := w3.Lint(); err != nil {
		t.Errorf("valid workflow fails lint: %v", err)
	}

	// Transitive dependencies count.
	w4 := &Workflow{Name: "w4"}
	a := w4.Add("a", &Extract{SourceDB: "src", Form: patternsFormFixture(), To: src})
	b := w4.Add("b", &Query{From: src, To: TableRef{"tmp", "B"}}, a)
	w4.Add("c", &Query{From: src, To: TableRef{"tmp", "C"}}, b) // reads src via transitive dep on a
	if err := w4.Lint(); err != nil {
		t.Errorf("transitive dep fails lint: %v", err)
	}

	// Lint still reports structural errors (cycles).
	w5 := &Workflow{Name: "w5"}
	w5.Add("x", &Query{From: src, To: src}, "y")
	w5.Add("y", &Query{From: src, To: src}, "x")
	if err := w5.Lint(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("err = %v", err)
	}
}

// patternsFormFixture builds a minimal FormInfo for lint tests.
func patternsFormFixture() patterns.FormInfo {
	return patterns.FormInfo{
		Name:      "T",
		KeyColumn: "K",
		Schema: relstore.MustSchema(
			relstore.Column{Name: "K", Type: relstore.KindInt, NotNull: true},
		),
	}
}
