// Package etl implements the ETL workflow substrate the paper compiles
// studies into (Section 4.1, Figure 6): reusable components that each
// execute one query over the previous component's results, chained through
// temporary databases, with the final load unioning contributors into the
// study output. "Thus, we can leverage existing ETL and still offer the
// flexibility that analysts require."
//
// # Execution
//
// A Workflow is a DAG of Steps. Workflow.Execute runs it under a
// RunPolicy — per-step retry with backoff, per-step and per-workflow
// deadlines, and, with ContinueOnError, graceful degradation: a failed
// contributor chain is pruned, its transitive dependents are skipped,
// and a degradable load step (Union) runs on the surviving inputs. The
// outcome of every step lands in a RunReport.
//
// # Observability
//
// Execution is instrumented through guava/internal/obs. When the
// incoming context carries an observer (obs.WithObserver), Execute
// opens a "workflow <name>" span and nests a "step <id>" span per step
// and an "attempt <n>" span per try beneath it; skipped steps get
// instant spans naming their failed ancestors, and degraded steps
// record the inputs they dropped. Components annotate the current span
// with rows.in/rows.out and feed the same numbers to the run's metrics
// registry. Without an observer every hook is a nil-safe no-op.
package etl

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"guava/internal/obs"
	"guava/internal/patterns"
	"guava/internal/relstore"
)

// recordIO notes a component's row flow on the current span (the
// attempt span when the run is observed) and on the run's metrics
// registry. Both sides are no-ops without an observer.
func recordIO(ctx context.Context, rowsIn, rowsOut int) {
	m := obs.MetricsFrom(ctx)
	m.Counter("etl.rows.in").Add(int64(rowsIn))
	m.Counter("etl.rows.out").Add(int64(rowsOut))
	obs.CurrentSpan(ctx).SetAttr(obs.Int("rows.in", int64(rowsIn)), obs.Int("rows.out", int64(rowsOut)))
}

// Context carries the named databases a workflow operates over. Workflows
// create temporary databases on demand. Contexts are safe for concurrent
// use, so independent workflow steps can run in parallel.
type Context struct {
	mu  sync.Mutex
	dbs map[string]*relstore.DB
}

// NewContext builds a context pre-populated with the given databases.
func NewContext(dbs map[string]*relstore.DB) *Context {
	c := &Context{dbs: make(map[string]*relstore.DB, len(dbs))}
	for n, db := range dbs {
		c.dbs[n] = db
	}
	return c
}

// DB returns the named database, creating an empty one on first use (the
// paper's temporary DBs between ETL stages).
func (c *Context) DB(name string) *relstore.DB {
	c.mu.Lock()
	defer c.mu.Unlock()
	if db, ok := c.dbs[name]; ok {
		return db
	}
	db := relstore.NewDB(name)
	c.dbs[name] = db
	return db
}

// Has reports whether a database is registered.
func (c *Context) Has(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.dbs[name]
	return ok
}

// TableRef addresses one table in one database.
type TableRef struct {
	DB    string
	Table string
}

// String renders the reference as db.table.
func (r TableRef) String() string { return r.DB + "." + r.Table }

// read fetches the referenced table's rows.
func (r TableRef) read(ctx *Context) (*relstore.Rows, error) {
	t, err := ctx.DB(r.DB).Table(r.Table)
	if err != nil {
		return nil, err
	}
	return t.Rows(), nil
}

// write materializes rows into the referenced table, creating it.
func (r TableRef) write(ctx *Context, rows *relstore.Rows) error {
	db := ctx.DB(r.DB)
	if db.Has(r.Table) {
		if err := db.Drop(r.Table); err != nil {
			return err
		}
	}
	t, err := db.CreateTable(r.Table, rows.Schema)
	if err != nil {
		return err
	}
	return t.InsertAll(rows.Data)
}

// Component is one ETL step.
type Component interface {
	// Name returns a short component-kind name ("extract", "query", …).
	Name() string
	// Describe renders what the step does, for the analyst-facing plan.
	Describe() string
	// Run executes the step against env. Implementations must honor ctx
	// cancellation and deadlines: long-running or blocking work must return
	// (with ctx.Err()) promptly once ctx is done, or workflow-level
	// cancellation and timeouts cannot take effect.
	Run(ctx context.Context, env *Context) error
}

// degradable is implemented by components that can run with a subset of
// their declared inputs when upstream steps failed — Union drops the failed
// contributors and loads the survivors. unavailable is keyed by
// TableRef.String(). The second return is false when nothing useful remains.
type degradable interface {
	WithoutInputs(unavailable map[string]bool) (Component, bool)
}

// Extract reads a form's naive relation out of a contributor database
// through its pattern stack — the GUAVA stage of Figure 6 — and materializes
// it into a temporary table.
type Extract struct {
	// SourceDB names the contributor database.
	SourceDB string
	// Stack is the contributor's pattern configuration.
	Stack *patterns.Stack
	// Form is the form being extracted.
	Form patterns.FormInfo
	// To receives the naive relation.
	To TableRef
}

// Name implements Component.
func (*Extract) Name() string { return "extract" }

// Describe implements Component.
func (e *Extract) Describe() string {
	return fmt.Sprintf("extract %s from %s via pattern stack [%s] into %s",
		e.Form.Name, e.SourceDB, e.Stack.Describe(), e.To)
}

// Run implements Component.
func (e *Extract) Run(ctx context.Context, env *Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !env.Has(e.SourceDB) {
		return fmt.Errorf("etl: extract: unknown source database %q", e.SourceDB)
	}
	quar := quarantineFrom(ctx)
	if quar == nil {
		rows, err := e.Stack.Read(env.DB(e.SourceDB), e.Form)
		if err != nil {
			return fmt.Errorf("etl: extract %s: %w", e.Form.Name, err)
		}
		recordIO(ctx, len(rows.Data), len(rows.Data))
		return e.To.write(env, rows)
	}
	// With a quarantine budget, the diverting read separates source-level
	// misses (e.g. free-text extraction failures, with report-span
	// provenance) from the clean relation instead of failing the read.
	rows, misses, err := e.Stack.ReadDiverting(ctx, env.DB(e.SourceDB), e.Form)
	if err != nil {
		return fmt.Errorf("etl: extract %s: %w", e.Form.Name, err)
	}
	rowsIn := len(rows.Data) + len(misses)
	for _, m := range misses {
		rowKey := ""
		if !m.Key.IsNull() {
			rowKey = m.Key.Display()
		}
		src := sourceRef{kind: m.SourceKind, locator: m.Locator}
		if qerr := quar.add(ctx, m.Rule, m.Err, rowKey, "", src); qerr != nil {
			return qerr
		}
	}
	// Rows whose key is missing are dead-lettered at the source too, so one
	// poison row cannot poison every downstream stage.
	if i := rows.Schema.Index(e.Form.KeyColumn); i >= 0 {
		kept := make([]relstore.Row, 0, len(rows.Data))
		for _, row := range rows.Data {
			if row[i].IsNull() {
				rerr := fmt.Errorf("extract %s: NULL key %s", e.Form.Name, e.Form.KeyColumn)
				src := dbRowRef(e.SourceDB, e.Form.Name)
				if qerr := quar.add(ctx, "extract", rerr, "", renderRow(row, rows.Schema), src); qerr != nil {
					return qerr
				}
				continue
			}
			kept = append(kept, row)
		}
		rows = &relstore.Rows{Schema: rows.Schema, Data: kept}
	}
	recordIO(ctx, rowsIn, len(rows.Data))
	return e.To.write(env, rows)
}

// Query filters, derives, and projects one table into another — the middle
// stage of Figure 6, "each [component] executing a query over the previous
// one's results".
type Query struct {
	From TableRef
	// Where filters rows (nil keeps all).
	Where relstore.Pred
	// Derive, when non-empty, replaces the output columns with computed
	// ones; otherwise Project (or all columns) pass through.
	Derive []relstore.Derivation
	// Project keeps the named columns (nil keeps all); ignored when Derive
	// is set.
	Project []string
	// Distinct deduplicates output rows.
	Distinct bool
	// Require names output columns that must be non-NULL in every row.
	// A violating row fails the step — or, when the run policy grants a
	// quarantine budget, is diverted into the dead-letter relation while
	// the rest of the relation flows on. Compiled studies require the
	// contributor key and the derived entity key, so one poison row cannot
	// silently produce an unjoinable study tuple.
	Require []string
	To      TableRef
}

// Name implements Component.
func (*Query) Name() string { return "query" }

// Describe implements Component.
func (q *Query) Describe() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	switch {
	case len(q.Derive) > 0:
		parts := make([]string, len(q.Derive))
		for i, d := range q.Derive {
			parts[i] = d.Expr.SQL() + " AS " + d.Name
		}
		sb.WriteString(strings.Join(parts, ", "))
	case len(q.Project) > 0:
		sb.WriteString(strings.Join(q.Project, ", "))
	default:
		sb.WriteString("*")
	}
	sb.WriteString(" FROM " + q.From.String())
	if q.Where != nil {
		sb.WriteString(" WHERE " + q.Where.SQL())
	}
	if q.Distinct {
		sb.WriteString(" (DISTINCT)")
	}
	if len(q.Require) > 0 {
		sb.WriteString(" REQUIRE " + strings.Join(q.Require, ", "))
	}
	sb.WriteString(" INTO " + q.To.String())
	return sb.String()
}

// Run implements Component.
func (q *Query) Run(ctx context.Context, env *Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	rows, err := q.From.read(env)
	if err != nil {
		return fmt.Errorf("etl: query from %s: %w", q.From, err)
	}
	rowsIn := len(rows.Data)
	var out *relstore.Rows
	if quar := quarantineFrom(ctx); quar != nil {
		// Row-at-a-time evaluation so a single poison row dead-letters
		// alone instead of failing the whole relation.
		out, err = q.runRowwise(ctx, quar, rows)
	} else {
		out, err = q.runBulk(rows)
	}
	if err != nil {
		return fmt.Errorf("etl: query %s: %w", q.From, err)
	}
	if q.Distinct {
		out = relstore.Distinct(out)
	}
	recordIO(ctx, rowsIn, len(out.Data))
	return q.To.write(env, out)
}

// reqCol resolves one Require column into the output schema.
type reqCol struct {
	name string
	idx  int
}

func requireCols(require []string, schema *relstore.Schema) ([]reqCol, error) {
	out := make([]reqCol, 0, len(require))
	for _, name := range require {
		i := schema.Index(name)
		if i < 0 {
			return nil, fmt.Errorf("required column %s not in output schema [%s]", name, schema.NameList())
		}
		out = append(out, reqCol{name: name, idx: i})
	}
	return out, nil
}

// runBulk is the historical whole-relation path: the first row error (or
// Require violation) fails the step.
func (q *Query) runBulk(rows *relstore.Rows) (*relstore.Rows, error) {
	rows, err := relstore.Select(rows, q.Where)
	if err != nil {
		return nil, err
	}
	switch {
	case len(q.Derive) > 0:
		rows, err = relstore.Derive(rows, q.Derive...)
	case len(q.Project) > 0:
		rows, err = relstore.Project(rows, q.Project...)
	}
	if err != nil {
		return nil, err
	}
	req, err := requireCols(q.Require, rows.Schema)
	if err != nil {
		return nil, err
	}
	for _, row := range rows.Data {
		for _, rc := range req {
			if row[rc.idx].IsNull() {
				return nil, fmt.Errorf("NULL in required column %s (row %s)",
					rc.name, renderRow(row, rows.Schema))
			}
		}
	}
	return rows, nil
}

// runRowwise evaluates the query one tuple at a time, diverting rows that
// fail the Where predicate's evaluation, a derivation, or a Require
// constraint into the quarantine — up to the policy budget, whose overflow
// error propagates as the step's failure.
func (q *Query) runRowwise(ctx context.Context, quar *quarantine, in *relstore.Rows) (*relstore.Rows, error) {
	var outSchema *relstore.Schema
	var err error
	var projIdx []int
	switch {
	case len(q.Derive) > 0:
		outSchema, err = relstore.DeriveSchema(q.Derive)
	case len(q.Project) > 0:
		outSchema, err = in.Schema.Project(q.Project...)
		if err == nil {
			projIdx = make([]int, len(q.Project))
			for i, name := range q.Project {
				projIdx[i] = in.Schema.Index(name)
			}
		}
	default:
		outSchema = in.Schema
	}
	if err != nil {
		return nil, err
	}
	req, err := requireCols(q.Require, outSchema)
	if err != nil {
		return nil, err
	}
	keyOf := func(row relstore.Row) string {
		// Best-effort row identity for the dead-letter relation: the first
		// required column present in the input, else the first column.
		for _, name := range q.Require {
			if i := in.Schema.Index(name); i >= 0 {
				return row[i].Display()
			}
		}
		if len(row) > 0 {
			return row[0].Display()
		}
		return ""
	}
	src := dbRowRef(q.From.DB, q.From.Table)
	out := &relstore.Rows{Schema: outSchema}
rowLoop:
	for _, row := range in.Data {
		if q.Where != nil {
			keep, werr := q.Where.Eval(row, in.Schema)
			if werr != nil {
				if qerr := quar.add(ctx, "where", werr, keyOf(row), renderRow(row, in.Schema), src); qerr != nil {
					return nil, qerr
				}
				continue
			}
			if !keep {
				continue
			}
		}
		outRow := row
		switch {
		case len(q.Derive) > 0:
			outRow, err = relstore.DeriveRow(q.Derive, row, in.Schema)
			if err != nil {
				if qerr := quar.add(ctx, "derive", err, keyOf(row), renderRow(row, in.Schema), src); qerr != nil {
					return nil, qerr
				}
				continue
			}
		case len(q.Project) > 0:
			nr := make(relstore.Row, len(projIdx))
			for i, j := range projIdx {
				nr[i] = row[j]
			}
			outRow = nr
		}
		for _, rc := range req {
			if outRow[rc.idx].IsNull() {
				rerr := fmt.Errorf("NULL in required column %s", rc.name)
				if qerr := quar.add(ctx, "require "+rc.name, rerr, keyOf(row), renderRow(row, in.Schema), src); qerr != nil {
					return nil, qerr
				}
				continue rowLoop
			}
		}
		out.Data = append(out.Data, outRow)
	}
	return out, nil
}

// Union concatenates same-schema tables into one — the load stage:
// "MultiClass simply unions together the results of ETL workflows from
// different contributors."
type Union struct {
	From []TableRef
	// Distinct switches from bag union to set union.
	Distinct bool
	To       TableRef
}

// Name implements Component.
func (*Union) Name() string { return "union" }

// Describe implements Component.
func (u *Union) Describe() string {
	parts := make([]string, len(u.From))
	for i, r := range u.From {
		parts[i] = r.String()
	}
	op := "UNION ALL"
	if u.Distinct {
		op = "UNION"
	}
	return fmt.Sprintf("%s(%s) INTO %s", op, strings.Join(parts, ", "), u.To)
}

// Run implements Component.
func (u *Union) Run(ctx context.Context, env *Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(u.From) == 0 {
		return fmt.Errorf("etl: union with no inputs")
	}
	all := make([]*relstore.Rows, 0, len(u.From))
	rowsIn := 0
	for _, ref := range u.From {
		rows, err := ref.read(env)
		if err != nil {
			return fmt.Errorf("etl: union input %s: %w", ref, err)
		}
		rowsIn += len(rows.Data)
		all = append(all, rows)
	}
	out, err := relstore.UnionAll(all...)
	if err != nil {
		return fmt.Errorf("etl: union: %w", err)
	}
	if u.Distinct {
		out = relstore.Distinct(out)
	}
	recordIO(ctx, rowsIn, len(out.Data))
	return u.To.write(env, out)
}

// WithoutInputs implements degradable: the load stage of a degraded study
// unions whichever contributor chains survived. It reports false when no
// input remains.
func (u *Union) WithoutInputs(unavailable map[string]bool) (Component, bool) {
	keep := make([]TableRef, 0, len(u.From))
	for _, r := range u.From {
		if !unavailable[r.String()] {
			keep = append(keep, r)
		}
	}
	if len(keep) == 0 {
		return nil, false
	}
	return &Union{From: keep, Distinct: u.Distinct, To: u.To}, true
}

// JoinStep equi-joins two tables — needed when a study pulls has-a children
// (Findings, Medications) alongside their parent entity.
type JoinStep struct {
	Left, Right       TableRef
	LeftCol, RightCol string
	RightPrefix       string
	To                TableRef
}

// Name implements Component.
func (*JoinStep) Name() string { return "join" }

// Describe implements Component.
func (j *JoinStep) Describe() string {
	return fmt.Sprintf("JOIN %s ON %s.%s = %s.%s INTO %s",
		j.Right, j.Left, j.LeftCol, j.Right, j.RightCol, j.To)
}

// Run implements Component.
func (j *JoinStep) Run(ctx context.Context, env *Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l, err := j.Left.read(env)
	if err != nil {
		return err
	}
	r, err := j.Right.read(env)
	if err != nil {
		return err
	}
	out, err := relstore.Join(l, r, j.LeftCol, j.RightCol, j.RightPrefix)
	if err != nil {
		return fmt.Errorf("etl: join: %w", err)
	}
	recordIO(ctx, len(l.Data)+len(r.Data), len(out.Data))
	return j.To.write(env, out)
}
