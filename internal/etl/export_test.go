package etl

import (
	"testing"

	"guava/internal/patterns"
)

// Hooks for the external etl_test package: the fault-injection and
// cancellation suites live outside the package so they can import
// guava/internal/etl/faulty (which imports etl) without an import cycle,
// and reuse the in-package fixtures through these exports.

// StudyFixtureForTest exposes the two-contributor study fixture.
func StudyFixtureForTest(t *testing.T) *StudySpec { return studyFixture(t) }

// PropStudySpecForTest exposes the randomized single-contributor study
// generator used by the property tests.
func PropStudySpecForTest(records []uint8, packs []int8, t1, t2 int8, surgeryOnly bool, stack *patterns.Stack) *StudySpec {
	return propStudySpec(records, packs, t1, t2, surgeryOnly, stack)
}
