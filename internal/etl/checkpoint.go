package etl

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"guava/internal/relstore"
)

// This file implements durable run state for the ETL engine: a completed
// step's output relations are snapshotted under a deterministic workflow
// fingerprint, so a killed or crashed study run resumes from the last
// durable step instead of re-executing the whole three-stage workflow.
// The store is pluggable (in-memory for tests, filesystem for real runs);
// Execute consumes it through RunPolicy.Checkpoint.

// TableSnapshot is one materialized table of a step snapshot.
type TableSnapshot struct {
	Ref  TableRef
	Rows *relstore.Rows
}

// Snapshot is the durable record of one completed step: every table the
// step wrote, plus the rows it quarantined while running (so a resumed
// run's dead-letter relation matches an uninterrupted one).
type Snapshot struct {
	Step        string
	Tables      []TableSnapshot
	Quarantined []QuarantineEntry
}

// ErrCorruptCheckpoint wraps every torn-write or bit-rot detection: a
// checkpoint that fails its checksum, is truncated, or does not parse. The
// engine treats such a Load as a miss (with a warning span) and re-runs the
// step rather than loading garbage.
var ErrCorruptCheckpoint = errors.New("etl: corrupt checkpoint")

// Checkpointer durably stores and retrieves step snapshots keyed by
// (workflow fingerprint, step ID). Implementations must be safe for
// concurrent use: parallel workers save independent steps simultaneously.
type Checkpointer interface {
	// Load returns the snapshot for the step, or (nil, nil) on a clean
	// miss. A non-nil error means the stored state is unreadable or
	// corrupt; callers re-run the step.
	Load(fingerprint, stepID string) (*Snapshot, error)
	// Save durably stores the snapshot, replacing any previous one.
	Save(fingerprint, stepID string, snap *Snapshot) error
	// Clear discards every snapshot stored under the fingerprint — a
	// caller that wants a fresh run rather than a resume.
	Clear(fingerprint string) error
}

// Fingerprint deterministically identifies the workflow's compiled plan:
// its name (the study), every step ID (which carries the contributor), each
// component's kind and rendered definition, and the dependency edges. Two
// runs share checkpoints exactly when their fingerprints match, so any
// change to the plan — a classifier edit, a contributor added — safely
// invalidates prior checkpoints.
func (w *Workflow) Fingerprint() string {
	h := sha256.New()
	io.WriteString(h, "workflow\x00"+w.Name+"\x00")
	for _, s := range w.Steps {
		io.WriteString(h, "step\x00"+s.ID+"\x00"+s.Component.Name()+"\x00"+s.Component.Describe()+"\x00")
		for _, d := range s.DependsOn {
			io.WriteString(h, "dep\x00"+d+"\x00")
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// restoreSnapshot materializes a snapshot's tables into the execution
// context — the restore half of checkpoint/restore.
func restoreSnapshot(env *Context, snap *Snapshot) error {
	for _, ts := range snap.Tables {
		if err := ts.Ref.write(env, ts.Rows); err != nil {
			return fmt.Errorf("etl: restore %s: %w", ts.Ref, err)
		}
	}
	return nil
}

// MemCheckpointer is an in-memory Checkpointer: process-local, so it
// survives a simulated crash (an aborted Execute) but not a real one. It is
// the store the crash-resume tests and single-process callers use.
type MemCheckpointer struct {
	mu    sync.Mutex
	snaps map[string]map[string]*Snapshot
}

// NewMemCheckpointer creates an empty in-memory store.
func NewMemCheckpointer() *MemCheckpointer {
	return &MemCheckpointer{snaps: make(map[string]map[string]*Snapshot)}
}

// Load implements Checkpointer.
func (m *MemCheckpointer) Load(fingerprint, stepID string) (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := m.snaps[fingerprint][stepID]
	return snap, nil
}

// Save implements Checkpointer.
func (m *MemCheckpointer) Save(fingerprint, stepID string, snap *Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snaps[fingerprint] == nil {
		m.snaps[fingerprint] = make(map[string]*Snapshot)
	}
	m.snaps[fingerprint][stepID] = snap
	return nil
}

// Clear implements Checkpointer.
func (m *MemCheckpointer) Clear(fingerprint string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.snaps, fingerprint)
	return nil
}

// Len reports how many snapshots are stored under the fingerprint.
func (m *MemCheckpointer) Len(fingerprint string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.snaps[fingerprint])
}

// FSCheckpointer stores snapshots as files under Dir, one directory per
// fingerprint and one file per step:
//
//	<dir>/<fingerprint>/<url-escaped step ID>.ckpt
//
// Each file is a line-oriented text format (see CheckpointVersion): a magic
// header, a SHA-256 checksum of the payload, then per-table sections using
// relstore's typed relation serialization. Writes go to a temp file that is
// fsynced and renamed into place, so a crash mid-save leaves either the old
// checkpoint or a stray temp file — never a half-written .ckpt under the
// live name. A torn or bit-flipped file fails its checksum on Load and is
// reported as ErrCorruptCheckpoint.
type FSCheckpointer struct {
	// Dir is the checkpoint root directory; created on first Save.
	Dir string
	// FS is the filesystem the store writes through; nil uses the real
	// one. Tests thread a faulty.FS here to exercise torn saves.
	FS FS
}

// CheckpointVersion is the on-disk format version; bump it when the file
// layout changes so stale checkpoints read as corrupt rather than garbage.
const CheckpointVersion = "guava-ckpt v1"

// NewFSCheckpointer creates a filesystem store rooted at dir.
func NewFSCheckpointer(dir string) *FSCheckpointer { return &FSCheckpointer{Dir: dir} }

// path maps a (fingerprint, step) to its checkpoint file.
func (f *FSCheckpointer) path(fingerprint, stepID string) string {
	return filepath.Join(f.Dir, fingerprint, url.PathEscape(stepID)+".ckpt")
}

// Save implements Checkpointer.
func (f *FSCheckpointer) Save(fingerprint, stepID string, snap *Snapshot) error {
	payload, err := encodeSnapshot(snap)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	header := CheckpointVersion + "\nsha256 " + hex.EncodeToString(sum[:]) + "\n"
	return WriteFileAtomic(f.FS, f.path(fingerprint, stepID), append([]byte(header), payload...))
}

// Load implements Checkpointer.
func (f *FSCheckpointer) Load(fingerprint, stepID string) (*Snapshot, error) {
	b, err := fsOrOS(f.FS).ReadFile(f.path(fingerprint, stepID))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	rest, ok := strings.CutPrefix(string(b), CheckpointVersion+"\n")
	if !ok {
		return nil, fmt.Errorf("%w: %s: bad or missing header", ErrCorruptCheckpoint, stepID)
	}
	sumLine, payload, ok := strings.Cut(rest, "\n")
	wantSum, ok2 := strings.CutPrefix(sumLine, "sha256 ")
	if !ok || !ok2 {
		return nil, fmt.Errorf("%w: %s: missing checksum line", ErrCorruptCheckpoint, stepID)
	}
	sum := sha256.Sum256([]byte(payload))
	if hex.EncodeToString(sum[:]) != wantSum {
		return nil, fmt.Errorf("%w: %s: checksum mismatch (torn or corrupted write)", ErrCorruptCheckpoint, stepID)
	}
	snap, err := decodeSnapshot(strings.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptCheckpoint, stepID, err)
	}
	return snap, nil
}

// Clear implements Checkpointer.
func (f *FSCheckpointer) Clear(fingerprint string) error {
	if fingerprint == "" {
		return fmt.Errorf("etl: refusing to clear an empty fingerprint")
	}
	return fsOrOS(f.FS).RemoveAll(filepath.Join(f.Dir, fingerprint))
}

// Steps lists the step IDs checkpointed under the fingerprint, unsorted.
func (f *FSCheckpointer) Steps(fingerprint string) ([]string, error) {
	ents, err := fsOrOS(f.FS).ReadDir(filepath.Join(f.Dir, fingerprint))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name, ok := strings.CutSuffix(e.Name(), ".ckpt")
		if !ok {
			continue
		}
		id, err := url.PathUnescape(name)
		if err != nil {
			continue
		}
		out = append(out, id)
	}
	return out, nil
}

// encodeSnapshot renders the checksummed payload of a checkpoint file:
//
//	step <url-escaped step ID>
//	tables <n>
//	table <url-escaped db> <url-escaped table> <rowcount>
//	<schema JSON line>
//	<row JSON line> × rowcount
//	…
//	quarantined <n>
//	<entry JSON line> × n
//	end
func encodeSnapshot(snap *Snapshot) ([]byte, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "step %s\n", url.PathEscape(snap.Step))
	fmt.Fprintf(&sb, "tables %d\n", len(snap.Tables))
	for _, ts := range snap.Tables {
		fmt.Fprintf(&sb, "table %s %s %d\n",
			url.PathEscape(ts.Ref.DB), url.PathEscape(ts.Ref.Table), len(ts.Rows.Data))
		if err := relstore.WriteTyped(&sb, ts.Rows); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(&sb, "quarantined %d\n", len(snap.Quarantined))
	for _, q := range snap.Quarantined {
		b, err := json.Marshal(q)
		if err != nil {
			return nil, err
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	sb.WriteString("end\n")
	return []byte(sb.String()), nil
}

// decodeSnapshot parses what encodeSnapshot produced.
func decodeSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	line := func() (string, error) {
		b, err := readCkptLine(br)
		return b, err
	}
	stepLine, err := line()
	if err != nil {
		return nil, err
	}
	rawStep, ok := strings.CutPrefix(stepLine, "step ")
	if !ok {
		return nil, fmt.Errorf("missing step line")
	}
	step, err := url.PathUnescape(rawStep)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{Step: step}
	countLine, err := line()
	if err != nil {
		return nil, err
	}
	n, err := cutCount(countLine, "tables ")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		tabLine, err := line()
		if err != nil {
			return nil, err
		}
		parts := strings.Fields(tabLine)
		if len(parts) != 4 || parts[0] != "table" {
			return nil, fmt.Errorf("bad table line %q", tabLine)
		}
		db, err1 := url.PathUnescape(parts[1])
		tbl, err2 := url.PathUnescape(parts[2])
		rowCount, err3 := strconv.Atoi(parts[3])
		if err1 != nil || err2 != nil || err3 != nil || rowCount < 0 {
			return nil, fmt.Errorf("bad table line %q", tabLine)
		}
		schemaLine, err := line()
		if err != nil {
			return nil, err
		}
		schema, err := relstore.UnmarshalSchemaJSON([]byte(schemaLine))
		if err != nil {
			return nil, err
		}
		rows := &relstore.Rows{Schema: schema}
		for j := 0; j < rowCount; j++ {
			rowLine, err := line()
			if err != nil {
				return nil, err
			}
			row, err := relstore.UnmarshalRowJSON([]byte(rowLine))
			if err != nil {
				return nil, err
			}
			if err := schema.Validate(row); err != nil {
				return nil, err
			}
			rows.Data = append(rows.Data, row)
		}
		snap.Tables = append(snap.Tables, TableSnapshot{
			Ref: TableRef{DB: db, Table: tbl}, Rows: rows,
		})
	}
	qLine, err := line()
	if err != nil {
		return nil, err
	}
	qn, err := cutCount(qLine, "quarantined ")
	if err != nil {
		return nil, err
	}
	for i := 0; i < qn; i++ {
		entLine, err := line()
		if err != nil {
			return nil, err
		}
		var ent QuarantineEntry
		if err := json.Unmarshal([]byte(entLine), &ent); err != nil {
			return nil, err
		}
		snap.Quarantined = append(snap.Quarantined, ent)
	}
	endLine, err := line()
	if err != nil || endLine != "end" {
		return nil, fmt.Errorf("missing end marker (truncated payload)")
	}
	return snap, nil
}

// readCkptLine reads one newline-terminated line; EOF or a line without a
// terminator is an error (payload sections are always complete lines).
func readCkptLine(br *bufio.Reader) (string, error) {
	b, err := br.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("truncated checkpoint payload")
	}
	return strings.TrimSuffix(b, "\n"), nil
}

// cutCount parses "<prefix><int>" lines.
func cutCount(line, prefix string) (int, error) {
	raw, ok := strings.CutPrefix(line, prefix)
	if !ok {
		return 0, fmt.Errorf("missing %q line", strings.TrimSpace(prefix))
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %q count %q", strings.TrimSpace(prefix), raw)
	}
	return n, nil
}
