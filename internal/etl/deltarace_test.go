package etl_test

import (
	"context"
	"sync"
	"testing"

	"guava/internal/etl"
	"guava/internal/relstore"
	"guava/internal/workload"
)

// TestConcurrentScansDuringDeltaRefresh races the columnar scan path against
// in-flight delta refreshes: reader goroutines run parallel chunked selects
// over the warehouse tables while the writer applies mutation batches and
// patches the warehouse through RefreshDelta. Run under -race; the assertions
// are that no scan observes a torn row and that the warehouse still matches a
// from-scratch rebuild when the dust settles.
func TestConcurrentScansDuringDeltaRefresh(t *testing.T) {
	const (
		seed   = 17
		n      = 30
		rounds = 6
	)
	ctx := context.Background()
	u, err := buildEquivUniverse(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	w := relstore.NewDB("warehouse")
	cursors := make(map[string]*etl.DeltaCursors)
	for _, s := range u.studies {
		if _, err := s.RefreshContext(ctx, w, etl.RunPolicy{}); err != nil {
			t.Fatal(err)
		}
		cur := etl.NewDeltaCursors()
		if err := s.SeedDeltaCursors(cur); err != nil {
			t.Fatal(err)
		}
		cursors[s.Spec.Name] = cur
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			preds := []relstore.Pred{
				nil,
				relstore.IsNotNull(relstore.Col(etl.EntityKeyColumn)),
				relstore.Eq(etl.ContributorColumn, relstore.Str("contrib1")),
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range u.studies {
					table, err := w.Table(s.Output.Table)
					if err != nil {
						t.Error(err)
						return
					}
					rows, err := table.Select(preds[(g+i)%len(preds)])
					if err != nil {
						t.Error(err)
						return
					}
					arity := table.Schema().Arity()
					for _, r := range rows.Data {
						if len(r) != arity {
							t.Errorf("torn row: arity %d, want %d", len(r), arity)
							return
						}
					}
				}
			}
		}(g)
	}

	for r := 0; r < rounds; r++ {
		batch := workload.RandomBatch(u.contribs, seed*100+int64(r), 10)
		if err := workload.Apply(u.contribs, batch); err != nil {
			t.Fatal(err)
		}
		for _, s := range u.studies {
			if _, err := s.RefreshDelta(ctx, w, etl.DeltaOptions{Cursors: cursors[s.Spec.Name]}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Convergence: the raced warehouse equals a from-scratch rebuild.
	fresh := relstore.NewDB("rebuild")
	for _, s := range u.studies {
		if _, err := s.RefreshContext(ctx, fresh, etl.RunPolicy{}); err != nil {
			t.Fatal(err)
		}
		got, err := canonicalBytes(w, s.Output.Table)
		if err != nil {
			t.Fatal(err)
		}
		want, err := canonicalBytes(fresh, s.Output.Table)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("study %s: raced warehouse diverged from rebuild", s.Spec.Name)
		}
	}
}
