package etl

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"guava/internal/relstore"
)

// TestRunParallelMatchesSerial: the compiled study run in parallel produces
// the same output as the serial run.
func TestRunParallelMatchesSerial(t *testing.T) {
	spec := studyFixture(t)
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := compiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 8} {
		parallel, err := compiled.RunParallel(context.Background(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !parallel.EqualUnordered(serial) {
			t.Errorf("workers=%d: parallel output differs", workers)
		}
	}
}

// TestRunParallelWideFanout drives a wide diamond: many independent branches
// feeding one union.
func TestRunParallelWideFanout(t *testing.T) {
	ctx := NewContext(nil)
	src := ctx.DB("src")
	s := relstore.MustSchema(relstore.Column{Name: "K", Type: relstore.KindInt})
	tab, err := src.CreateTable("T", s)
	if err != nil {
		t.Fatal(err)
	}
	const total = 64
	for i := 0; i < total; i++ {
		if err := tab.Insert(relstore.Row{relstore.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	w := &Workflow{Name: "fan"}
	var branches []TableRef
	var deps []string
	for i := 0; i < 16; i++ {
		ref := TableRef{DB: "tmp", Table: fmt.Sprintf("B%d", i)}
		id := w.Add(fmt.Sprintf("branch%d", i), &Query{
			From:  TableRef{"src", "T"},
			Where: relstore.Cmp(relstore.CmpEq, relstore.Arith(relstore.OpMod, relstore.Col("K"), relstore.Lit(relstore.Int(16))), relstore.Lit(relstore.Int(int64(i)))),
			To:    ref,
		})
		branches = append(branches, ref)
		deps = append(deps, id)
	}
	w.Add("union", &Union{From: branches, To: TableRef{"out", "U"}}, deps...)
	if err := w.RunParallel(context.Background(), ctx, 4); err != nil {
		t.Fatal(err)
	}
	out, err := ctx.DB("out").Table("U")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != total {
		t.Errorf("union rows = %d, want %d", out.Len(), total)
	}
}

type failingComponent struct{}

func (failingComponent) Name() string                                { return "fail" }
func (failingComponent) Describe() string                            { return "always fails" }
func (failingComponent) Run(ctx context.Context, env *Context) error { return fmt.Errorf("boom") }

// TestRunParallelErrorPropagation: a failing step aborts and reports.
func TestRunParallelErrorPropagation(t *testing.T) {
	ctx := NewContext(nil)
	src := ctx.DB("src")
	s := relstore.MustSchema(relstore.Column{Name: "K", Type: relstore.KindInt})
	if _, err := src.CreateTable("T", s); err != nil {
		t.Fatal(err)
	}
	w := &Workflow{Name: "failing"}
	w.Add("ok", &Query{From: TableRef{"src", "T"}, To: TableRef{"tmp", "A"}})
	w.Add("bad", failingComponent{})
	w.Add("after", &Query{From: TableRef{"tmp", "A"}, To: TableRef{"tmp", "B"}}, "ok", "bad")
	err := w.RunParallel(context.Background(), ctx, 2)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error = %v", err)
	}
	// Cycles are still detected up front.
	w2 := &Workflow{Name: "cyc"}
	w2.Add("a", failingComponent{}, "b")
	w2.Add("b", failingComponent{}, "a")
	if err := w2.RunParallel(context.Background(), ctx, 2); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle error = %v", err)
	}
}

// TestContextConcurrentDBCreation: Context.DB is safe under concurrency and
// returns one instance per name.
func TestContextConcurrentDBCreation(t *testing.T) {
	ctx := NewContext(nil)
	results := make(chan *relstore.DB, 32)
	for i := 0; i < 32; i++ {
		go func() { results <- ctx.DB("shared") }()
	}
	first := <-results
	for i := 1; i < 32; i++ {
		if got := <-results; got != first {
			t.Fatal("Context.DB returned different instances for one name")
		}
	}
}
