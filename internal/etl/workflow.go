package etl

import (
	"context"
	"fmt"
	"strings"
)

// Step is one named node of a workflow DAG.
type Step struct {
	// ID identifies the step within the workflow.
	ID string
	// Component does the work.
	Component Component
	// DependsOn lists step IDs that must complete first.
	DependsOn []string
}

// Workflow is a DAG of ETL steps. The study compiler emits linear
// three-stage chains per contributor plus a final union (Figure 6), but the
// engine supports arbitrary DAGs.
type Workflow struct {
	Name  string
	Steps []Step
}

// Add appends a step and returns its ID for chaining.
func (w *Workflow) Add(id string, c Component, deps ...string) string {
	w.Steps = append(w.Steps, Step{ID: id, Component: c, DependsOn: deps})
	return id
}

// order topologically sorts the steps, failing on cycles, duplicate IDs, or
// dangling dependencies.
func (w *Workflow) order() ([]*Step, error) {
	byID := make(map[string]*Step, len(w.Steps))
	for i := range w.Steps {
		s := &w.Steps[i]
		if s.ID == "" {
			return nil, fmt.Errorf("etl: workflow %q has a step with empty ID", w.Name)
		}
		if _, dup := byID[s.ID]; dup {
			return nil, fmt.Errorf("etl: workflow %q has duplicate step %q", w.Name, s.ID)
		}
		byID[s.ID] = s
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(byID))
	var out []*Step
	var visit func(id string) error
	visit = func(id string) error {
		s, ok := byID[id]
		if !ok {
			return fmt.Errorf("etl: workflow %q depends on unknown step %q", w.Name, id)
		}
		switch color[id] {
		case gray:
			return fmt.Errorf("etl: workflow %q has a dependency cycle through %q", w.Name, id)
		case black:
			return nil
		}
		color[id] = gray
		for _, d := range s.DependsOn {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[id] = black
		out = append(out, s)
		return nil
	}
	for i := range w.Steps {
		if err := visit(w.Steps[i].ID); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Run executes the workflow serially in dependency order. ctx cancellation
// is checked between steps and passed into each component.
func (w *Workflow) Run(ctx context.Context, env *Context) error {
	steps, err := w.order()
	if err != nil {
		return err
	}
	for _, s := range steps {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("etl: workflow %q: %w", w.Name, err)
		}
		if err := s.Component.Run(ctx, env); err != nil {
			return fmt.Errorf("etl: workflow %q step %q: %w", w.Name, s.ID, err)
		}
	}
	return nil
}

// RunParallel executes the workflow with independent steps running
// concurrently — the per-contributor chains of a compiled study share no
// state until the final union, so they parallelize perfectly. workers bounds
// concurrency (<= 0 means one goroutine per ready step). The first step
// error aborts scheduling and is returned. For retries, timeouts, and
// partial-failure handling, use Execute with a RunPolicy.
func (w *Workflow) RunParallel(ctx context.Context, env *Context, workers int) error {
	_, err := w.Execute(ctx, env, RunPolicy{}, workers)
	return err
}

// reader and writer are implemented by components that declare their table
// dataflow, enabling static workflow linting.
type reader interface{ Reads() []TableRef }
type writer interface{ Writes() []TableRef }

// Reads implements reader.
func (q *Query) Reads() []TableRef { return []TableRef{q.From} }

// Writes implements writer.
func (q *Query) Writes() []TableRef { return []TableRef{q.To} }

// Reads implements reader (Extract reads source databases, not workflow
// tables, so it declares none).
func (e *Extract) Reads() []TableRef { return nil }

// Writes implements writer.
func (e *Extract) Writes() []TableRef { return []TableRef{e.To} }

// Reads implements reader.
func (u *Union) Reads() []TableRef { return u.From }

// Writes implements writer.
func (u *Union) Writes() []TableRef { return []TableRef{u.To} }

// Reads implements reader.
func (j *JoinStep) Reads() []TableRef { return []TableRef{j.Left, j.Right} }

// Writes implements writer.
func (j *JoinStep) Writes() []TableRef { return []TableRef{j.To} }

// Lint statically checks the workflow's dataflow: every table a step reads
// must be written by one of its (transitive) dependencies — otherwise the
// step races against whichever order the scheduler picks, or reads a table
// that never exists. Components that do not declare their dataflow are
// skipped. Lint subsumes the cycle/ID checks of order().
func (w *Workflow) Lint() error {
	steps, err := w.order()
	if err != nil {
		return err
	}
	// Transitive closure of dependencies, computed in topological order.
	deps := make(map[string]map[string]bool, len(steps))
	byID := make(map[string]*Step, len(steps))
	for _, s := range steps {
		byID[s.ID] = s
		all := map[string]bool{}
		for _, d := range s.DependsOn {
			all[d] = true
			for dd := range deps[d] {
				all[dd] = true
			}
		}
		deps[s.ID] = all
	}
	// Who writes each table?
	writers := map[string][]string{}
	for _, s := range steps {
		if wr, ok := s.Component.(writer); ok {
			for _, ref := range wr.Writes() {
				writers[ref.String()] = append(writers[ref.String()], s.ID)
			}
		}
	}
	for _, s := range steps {
		rd, ok := s.Component.(reader)
		if !ok {
			continue
		}
		for _, ref := range rd.Reads() {
			producers := writers[ref.String()]
			if len(producers) == 0 {
				return fmt.Errorf("etl: workflow %q step %q reads %s, which no step produces", w.Name, s.ID, ref)
			}
			covered := false
			for _, p := range producers {
				if deps[s.ID][p] {
					covered = true
					break
				}
			}
			if !covered {
				return fmt.Errorf("etl: workflow %q step %q reads %s but does not depend on its producer(s) %v",
					w.Name, s.ID, ref, producers)
			}
		}
	}
	return nil
}

// Render draws the workflow plan for analysts: the generated ETL is meant to
// be inspectable, not a black box — the motivating failure of classical ETL
// is that "analysts do not completely understand the process by which data
// arrives in the warehouse".
func (w *Workflow) Render() string {
	steps, err := w.order()
	if err != nil {
		return fmt.Sprintf("workflow %s: %v", w.Name, err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "workflow %s (%d steps)\n", w.Name, len(steps))
	for i, s := range steps {
		dep := ""
		if len(s.DependsOn) > 0 {
			dep = " after " + strings.Join(s.DependsOn, ", ")
		}
		fmt.Fprintf(&sb, "%2d. [%s] %s%s\n      %s\n", i+1, s.Component.Name(), s.ID, dep, s.Component.Describe())
	}
	return sb.String()
}
