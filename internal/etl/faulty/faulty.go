// Package faulty provides deterministic fault injection for ETL workflows:
// a Chaos component wraps any real component and misbehaves on a fixed
// schedule — failing the first N attempts, failing forever, sleeping past
// deadlines, blocking until canceled, panicking on a chosen attempt,
// simulating a process crash before or after the step's work, or poisoning
// rows of the step's output — so every failure path in the scheduler is
// exercised by tests rather than hoped-for. TearFile corrupts files the way
// torn writes and bit rot do, for checkpoint-recovery tests.
package faulty

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"guava/internal/etl"
	"guava/internal/relstore"
)

// ErrInjected is the default error a Chaos failure returns; test assertions
// can errors.Is against it.
var ErrInjected = errors.New("faulty: injected failure")

// ErrCrashed is the error CrashBeforeWork/CrashAfterWork return: the
// process-crash simulation. Run it under a fail-fast policy (the default)
// and Execute aborts exactly as a kill would, leaving completed steps'
// checkpoints durable; "resume" is simply re-executing with the same
// checkpoint store and no crash scheduled.
var ErrCrashed = errors.New("faulty: injected crash")

// Chaos wraps a Component and misbehaves on a deterministic schedule. The
// zero value (no wrapped component, no knobs) runs successfully and does
// nothing. Chaos is safe for concurrent use; its attempt counter is shared
// across goroutines.
type Chaos struct {
	// Wrapped is the real component, run once the schedule allows. nil
	// means the successful attempts are no-ops.
	Wrapped etl.Component

	// FailFirst fails the first N attempts with Err, then lets attempts
	// through — a transient fault that a retry policy recovers from.
	FailFirst int
	// FailForever fails every attempt — a permanently dead source.
	FailForever bool
	// Err overrides the injected error (default ErrInjected).
	Err error
	// Delay blocks for the duration before each attempt does its work,
	// honoring ctx — long enough delays trip step or workflow deadlines.
	Delay time.Duration
	// BlockUntilCancel blocks until ctx is done and returns ctx.Err() —
	// the hung-extract scenario.
	BlockUntilCancel bool
	// PanicOnAttempt panics on the given 1-based attempt (0 = never).
	PanicOnAttempt int
	// CrashBeforeWork returns ErrCrashed before the wrapped component
	// runs — the process died between steps; no partial state exists.
	CrashBeforeWork bool
	// CrashAfterWork runs the wrapped component to completion and then
	// returns ErrCrashed — the process died mid-step, after the step's
	// tables were written but before the engine could record success (or
	// checkpoint it). Recovery must tolerate the leftover tables.
	CrashAfterWork bool
	// PoisonRows, when positive, corrupts the first N rows of the wrapped
	// step's (first) written table after a successful run: PoisonColumn is
	// set to NULL, with the table's schema relaxed so the corruption can
	// physically exist — the upstream-junk scenario row-level quarantine
	// exists for.
	PoisonRows int
	// PoisonColumn names the column PoisonRows nulls out. Empty picks the
	// table's first column.
	PoisonColumn string

	mu       sync.Mutex
	attempts int
}

// Name implements etl.Component.
func (c *Chaos) Name() string {
	if c.Wrapped != nil {
		return c.Wrapped.Name()
	}
	return "chaos"
}

// Describe implements etl.Component.
func (c *Chaos) Describe() string {
	if c.Wrapped != nil {
		return "chaos(" + c.Wrapped.Describe() + ")"
	}
	return "chaos(no-op)"
}

// Attempts returns how many times Run has been called.
func (c *Chaos) Attempts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts
}

// Reset zeroes the attempt counter so one Chaos value can serve several
// executions with a fresh schedule each time.
func (c *Chaos) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempts = 0
}

// Run implements etl.Component.
func (c *Chaos) Run(ctx context.Context, env *etl.Context) error {
	c.mu.Lock()
	c.attempts++
	n := c.attempts
	c.mu.Unlock()
	if c.PanicOnAttempt > 0 && n == c.PanicOnAttempt {
		panic(fmt.Sprintf("faulty: scheduled panic on attempt %d", n))
	}
	if c.BlockUntilCancel {
		<-ctx.Done()
		return ctx.Err()
	}
	if c.Delay > 0 {
		t := time.NewTimer(c.Delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	if c.FailForever || n <= c.FailFirst {
		if c.Err != nil {
			return c.Err
		}
		return fmt.Errorf("%w (attempt %d)", ErrInjected, n)
	}
	if c.CrashBeforeWork {
		return fmt.Errorf("%w (before %s)", ErrCrashed, c.Name())
	}
	if c.Wrapped != nil {
		if err := c.Wrapped.Run(ctx, env); err != nil {
			return err
		}
	}
	if c.PoisonRows > 0 {
		if err := c.poisonOutput(env); err != nil {
			return err
		}
	}
	if c.CrashAfterWork {
		return fmt.Errorf("%w (after %s)", ErrCrashed, c.Name())
	}
	return nil
}

// poisonOutput nulls PoisonColumn in the first PoisonRows rows of the
// wrapped step's first written table. The table is rebuilt under a relaxed
// schema (NOT NULL lifted from the poisoned column) because the store's
// insert-time validation would otherwise make the corruption impossible to
// plant — which is exactly what real upstream systems fail to guarantee.
func (c *Chaos) poisonOutput(env *etl.Context) error {
	writes := c.Writes()
	if len(writes) == 0 {
		return fmt.Errorf("faulty: PoisonRows set but %s declares no writes", c.Name())
	}
	ref := writes[0]
	db := env.DB(ref.DB)
	t, err := db.Table(ref.Table)
	if err != nil {
		return fmt.Errorf("faulty: poison %s: %w", ref, err)
	}
	rows := t.Rows()
	col := c.PoisonColumn
	if col == "" && len(rows.Schema.Columns) > 0 {
		col = rows.Schema.Columns[0].Name
	}
	idx := rows.Schema.Index(col)
	if idx < 0 {
		return fmt.Errorf("faulty: poison %s: no column %q", ref, col)
	}
	relaxed := make([]relstore.Column, len(rows.Schema.Columns))
	copy(relaxed, rows.Schema.Columns)
	relaxed[idx].NotNull = false
	schema, err := relstore.NewSchema(relaxed...)
	if err != nil {
		return fmt.Errorf("faulty: poison %s: %w", ref, err)
	}
	for i := 0; i < c.PoisonRows && i < len(rows.Data); i++ {
		rows.Data[i][idx] = relstore.Null()
	}
	if err := db.Drop(ref.Table); err != nil {
		return fmt.Errorf("faulty: poison %s: %w", ref, err)
	}
	nt, err := db.CreateTable(ref.Table, schema)
	if err != nil {
		return fmt.Errorf("faulty: poison %s: %w", ref, err)
	}
	return nt.InsertAll(rows.Data)
}

// TearTruncate and TearFlip are TearFile's corruption modes.
const (
	// TearTruncate cuts the file mid-byte-stream — a torn write.
	TearTruncate = "truncate"
	// TearFlip flips one bit in the last quarter of the file — bit rot a
	// checksum must catch.
	TearFlip = "flip"
)

// TearFile corrupts a file in place the way crashes and bad disks do. Tests
// point it at a checkpoint file and assert the engine detects the damage,
// warns, and re-runs the step instead of loading garbage.
func TearFile(path, mode string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	switch mode {
	case TearTruncate:
		if len(b) < 2 {
			return fmt.Errorf("faulty: %s too short to truncate", path)
		}
		b = b[:len(b)/2]
	case TearFlip:
		if len(b) == 0 {
			return fmt.Errorf("faulty: %s is empty", path)
		}
		b[len(b)-len(b)/4-1] ^= 0x40
	default:
		return fmt.Errorf("faulty: unknown tear mode %q", mode)
	}
	return os.WriteFile(path, b, 0o644)
}

// Reads forwards the wrapped component's declared reads so workflow linting
// and degradation still see the true dataflow through the chaos wrapper.
func (c *Chaos) Reads() []etl.TableRef {
	if r, ok := c.Wrapped.(interface{ Reads() []etl.TableRef }); ok {
		return r.Reads()
	}
	return nil
}

// Writes forwards the wrapped component's declared writes; the scheduler
// uses them to decide which tables a failed chaos step starved its
// dependents of.
func (c *Chaos) Writes() []etl.TableRef {
	if w, ok := c.Wrapped.(interface{ Writes() []etl.TableRef }); ok {
		return w.Writes()
	}
	return nil
}

// Wrap replaces the component of the workflow step with the given ID with a
// Chaos wrapper built by mk, returning the wrapper (nil if no step matched).
// It is the standard way to inject a fault into a compiled study.
func Wrap(w *etl.Workflow, stepID string, mk func(wrapped etl.Component) *Chaos) *Chaos {
	for i := range w.Steps {
		if w.Steps[i].ID == stepID {
			ch := mk(w.Steps[i].Component)
			w.Steps[i].Component = ch
			return ch
		}
	}
	return nil
}
