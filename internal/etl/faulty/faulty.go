// Package faulty provides deterministic fault injection for ETL workflows:
// a Chaos component wraps any real component and misbehaves on a fixed
// schedule — failing the first N attempts, failing forever, sleeping past
// deadlines, blocking until canceled, or panicking on a chosen attempt — so
// every failure path in the scheduler is exercised by tests rather than
// hoped-for.
package faulty

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"guava/internal/etl"
)

// ErrInjected is the default error a Chaos failure returns; test assertions
// can errors.Is against it.
var ErrInjected = errors.New("faulty: injected failure")

// Chaos wraps a Component and misbehaves on a deterministic schedule. The
// zero value (no wrapped component, no knobs) runs successfully and does
// nothing. Chaos is safe for concurrent use; its attempt counter is shared
// across goroutines.
type Chaos struct {
	// Wrapped is the real component, run once the schedule allows. nil
	// means the successful attempts are no-ops.
	Wrapped etl.Component

	// FailFirst fails the first N attempts with Err, then lets attempts
	// through — a transient fault that a retry policy recovers from.
	FailFirst int
	// FailForever fails every attempt — a permanently dead source.
	FailForever bool
	// Err overrides the injected error (default ErrInjected).
	Err error
	// Delay blocks for the duration before each attempt does its work,
	// honoring ctx — long enough delays trip step or workflow deadlines.
	Delay time.Duration
	// BlockUntilCancel blocks until ctx is done and returns ctx.Err() —
	// the hung-extract scenario.
	BlockUntilCancel bool
	// PanicOnAttempt panics on the given 1-based attempt (0 = never).
	PanicOnAttempt int

	mu       sync.Mutex
	attempts int
}

// Name implements etl.Component.
func (c *Chaos) Name() string {
	if c.Wrapped != nil {
		return c.Wrapped.Name()
	}
	return "chaos"
}

// Describe implements etl.Component.
func (c *Chaos) Describe() string {
	if c.Wrapped != nil {
		return "chaos(" + c.Wrapped.Describe() + ")"
	}
	return "chaos(no-op)"
}

// Attempts returns how many times Run has been called.
func (c *Chaos) Attempts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts
}

// Reset zeroes the attempt counter so one Chaos value can serve several
// executions with a fresh schedule each time.
func (c *Chaos) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempts = 0
}

// Run implements etl.Component.
func (c *Chaos) Run(ctx context.Context, env *etl.Context) error {
	c.mu.Lock()
	c.attempts++
	n := c.attempts
	c.mu.Unlock()
	if c.PanicOnAttempt > 0 && n == c.PanicOnAttempt {
		panic(fmt.Sprintf("faulty: scheduled panic on attempt %d", n))
	}
	if c.BlockUntilCancel {
		<-ctx.Done()
		return ctx.Err()
	}
	if c.Delay > 0 {
		t := time.NewTimer(c.Delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	if c.FailForever || n <= c.FailFirst {
		if c.Err != nil {
			return c.Err
		}
		return fmt.Errorf("%w (attempt %d)", ErrInjected, n)
	}
	if c.Wrapped == nil {
		return nil
	}
	return c.Wrapped.Run(ctx, env)
}

// Reads forwards the wrapped component's declared reads so workflow linting
// and degradation still see the true dataflow through the chaos wrapper.
func (c *Chaos) Reads() []etl.TableRef {
	if r, ok := c.Wrapped.(interface{ Reads() []etl.TableRef }); ok {
		return r.Reads()
	}
	return nil
}

// Writes forwards the wrapped component's declared writes; the scheduler
// uses them to decide which tables a failed chaos step starved its
// dependents of.
func (c *Chaos) Writes() []etl.TableRef {
	if w, ok := c.Wrapped.(interface{ Writes() []etl.TableRef }); ok {
		return w.Writes()
	}
	return nil
}

// Wrap replaces the component of the workflow step with the given ID with a
// Chaos wrapper built by mk, returning the wrapper (nil if no step matched).
// It is the standard way to inject a fault into a compiled study.
func Wrap(w *etl.Workflow, stepID string, mk func(wrapped etl.Component) *Chaos) *Chaos {
	for i := range w.Steps {
		if w.Steps[i].ID == stepID {
			ch := mk(w.Steps[i].Component)
			w.Steps[i].Component = ch
			return ch
		}
	}
	return nil
}
