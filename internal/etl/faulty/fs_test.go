package faulty

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"guava/internal/etl"
)

// TestSilentFaultsTearFiles proves the silent fault kinds leave a torn
// file under the final name while the writer saw nothing but success —
// the exact state startup recovery has to catch.
func TestSilentFaultsTearFiles(t *testing.T) {
	payload := []byte(strings.Repeat("all data must be durable\n", 40))
	for _, kind := range []FaultKind{FaultShortWrite, FaultDropSync, FaultTornRename} {
		t.Run(string(kind), func(t *testing.T) {
			dir := t.TempDir()
			dst := filepath.Join(dir, "MANIFEST")
			fs := NewFS(etl.OSFS{}, FSFault{Kind: kind, Path: "MANIFEST"})
			if err := etl.WriteFileAtomic(fs, dst, payload); err != nil {
				t.Fatalf("WriteFileAtomic reported failure, want silent success: %v", err)
			}
			if fs.InjectedCount(kind) != 1 {
				t.Fatalf("injected count = %d, want 1", fs.InjectedCount(kind))
			}
			got, err := os.ReadFile(dst)
			if err != nil {
				t.Fatalf("read back: %v", err)
			}
			if len(got) >= len(payload) {
				t.Fatalf("%s: file has %d bytes, want torn (< %d)", kind, len(got), len(payload))
			}
		})
	}
}

// TestENOSPCSurfacesAsError — real ENOSPC is observable, so the injector
// must fail the write loudly instead of tearing silently.
func TestENOSPCSurfacesAsError(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(etl.OSFS{}, FSFault{Kind: FaultENOSPC})
	err := etl.WriteFileAtomic(fs, filepath.Join(dir, "out"), []byte("x"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "out")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("destination exists after failed write")
	}
}

// TestBitFlipCorruptsReads proves read-side corruption is injected and
// deterministic.
func TestBitFlipCorruptsReads(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "data")
	if err := os.WriteFile(p, []byte("checksummed payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewFS(etl.OSFS{}, FSFault{Kind: FaultBitFlip, Path: "data"})
	got, err := fs.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == "checksummed payload" {
		t.Fatal("bit_flip fault left the content intact")
	}
	// One-shot: the second read is clean.
	got, err = fs.ReadFile(p)
	if err != nil || string(got) != "checksummed payload" {
		t.Fatalf("second read = %q, %v; want clean content", got, err)
	}
}

// TestFaultScheduleOrdinal proves @after counts matching operations, so a
// schedule can tear exactly the Nth save.
func TestFaultScheduleOrdinal(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(etl.OSFS{}, FSFault{Kind: FaultTornRename, Path: "gen", After: 1})
	for i, name := range []string{"gen-1", "gen-2", "gen-3"} {
		dst := filepath.Join(dir, name)
		if err := etl.WriteFileAtomic(fs, dst, []byte(strings.Repeat("row\n", 32))); err != nil {
			t.Fatal(err)
		}
		got, _ := os.ReadFile(dst)
		torn := len(got) < 4*32
		if want := i == 1; torn != want {
			t.Fatalf("save %d torn=%v, want %v", i, torn, want)
		}
	}
}

// TestFSCheckpointerDetectsInjectedTear closes the loop: a checkpoint save
// torn by the injector must read back as ErrCorruptCheckpoint, not data.
func TestFSCheckpointerDetectsInjectedTear(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(etl.OSFS{}, FSFault{Kind: FaultDropSync, Path: ".ckpt"})
	ck := &etl.FSCheckpointer{Dir: dir, FS: fs}
	snap := &etl.Snapshot{Step: "extract:CORI"}
	if err := ck.Save("fp", "extract:CORI", snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := ck.Load("fp", "extract:CORI"); !errors.Is(err, etl.ErrCorruptCheckpoint) {
		t.Fatalf("Load = %v, want ErrCorruptCheckpoint", err)
	}
}

func TestParseFaultSchedule(t *testing.T) {
	faults, err := ParseFaultSchedule("torn_rename:MANIFEST@1, drop_sync:table.rel, latency:gen-@2~5ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []FSFault{
		{Kind: FaultTornRename, Path: "MANIFEST", After: 1},
		{Kind: FaultDropSync, Path: "table.rel"},
		{Kind: FaultLatency, Path: "gen-", After: 2, Delay: 5 * time.Millisecond},
	}
	if len(faults) != len(want) {
		t.Fatalf("got %d faults, want %d", len(faults), len(want))
	}
	for i := range want {
		if faults[i].Kind != want[i].Kind || faults[i].Path != want[i].Path ||
			faults[i].After != want[i].After || faults[i].Delay != want[i].Delay {
			t.Fatalf("fault %d = %+v, want %+v", i, faults[i], want[i])
		}
	}
	for _, bad := range []string{"melt_cpu", "latency~xs", "torn_rename@-1"} {
		if _, err := ParseFaultSchedule(bad); err == nil {
			t.Fatalf("ParseFaultSchedule(%q) accepted", bad)
		}
	}
}
