package faulty

import (
	"context"
	"errors"
	"strings"
	"testing"

	"guava/internal/etl"
	"guava/internal/relstore"
)

// TestChaosSchedule: FailFirst fails exactly the first N attempts, the
// counter is observable, and Reset restarts the schedule.
func TestChaosSchedule(t *testing.T) {
	env := etl.NewContext(nil)
	ch := &Chaos{FailFirst: 2}
	for i := 1; i <= 2; i++ {
		if err := ch.Run(context.Background(), env); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := ch.Run(context.Background(), env); err != nil {
		t.Fatalf("attempt 3: %v", err)
	}
	if ch.Attempts() != 3 {
		t.Fatalf("attempts = %d", ch.Attempts())
	}
	ch.Reset()
	if err := ch.Run(context.Background(), env); !errors.Is(err, ErrInjected) {
		t.Fatalf("after reset: err = %v, want ErrInjected again", err)
	}

	forever := &Chaos{FailForever: true, Err: errors.New("dead source")}
	for i := 0; i < 3; i++ {
		if err := forever.Run(context.Background(), env); err == nil || err.Error() != "dead source" {
			t.Fatalf("err = %v", err)
		}
	}
}

// TestChaosBlocksAndHonorsContext: BlockUntilCancel and Delay both return
// ctx.Err() when the context dies.
func TestChaosBlocksAndHonorsContext(t *testing.T) {
	env := etl.NewContext(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := (&Chaos{BlockUntilCancel: true}).Run(ctx, env); !errors.Is(err, context.Canceled) {
		t.Fatalf("block: err = %v", err)
	}
	if err := (&Chaos{Delay: 1 << 40}).Run(ctx, env); !errors.Is(err, context.Canceled) {
		t.Fatalf("delay: err = %v", err)
	}
}

// TestChaosForwardsDataflowAndWrapping: the wrapper forwards Name/Describe
// and the Reads/Writes declarations, runs the wrapped component on clean
// attempts, and Wrap splices it into a workflow by step ID.
func TestChaosForwardsDataflowAndWrapping(t *testing.T) {
	u := &etl.Union{From: []etl.TableRef{{DB: "a", Table: "T"}}, To: etl.TableRef{DB: "o", Table: "U"}}
	ch := &Chaos{Wrapped: u}
	if ch.Name() != "union" || !strings.Contains(ch.Describe(), "chaos(") {
		t.Fatalf("name=%q describe=%q", ch.Name(), ch.Describe())
	}
	if got := ch.Reads(); len(got) != 1 || got[0].String() != "a.T" {
		t.Fatalf("reads = %v", got)
	}
	if got := ch.Writes(); len(got) != 1 || got[0].String() != "o.U" {
		t.Fatalf("writes = %v", got)
	}

	// A clean chaos wrapper is transparent: the wrapped union runs.
	env := etl.NewContext(nil)
	src := env.DB("a")
	s := relstore.MustSchema(relstore.Column{Name: "K", Type: relstore.KindInt})
	tab, err := src.CreateTable("T", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(relstore.Row{relstore.Int(1)}); err != nil {
		t.Fatal(err)
	}
	w := &etl.Workflow{Name: "wrapped"}
	w.Add("load", u)
	if got := Wrap(w, "load", func(c etl.Component) *Chaos { return &Chaos{Wrapped: c} }); got == nil {
		t.Fatal("wrap missed the step")
	}
	if got := Wrap(w, "ghost", func(c etl.Component) *Chaos { return &Chaos{Wrapped: c} }); got != nil {
		t.Fatal("wrap invented a step")
	}
	if err := w.Run(context.Background(), env); err != nil {
		t.Fatal(err)
	}
	out, err := env.DB("o").Table("U")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("union rows = %d", out.Len())
	}
}
