package faulty

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"guava/internal/etl"
	"guava/internal/relstore"
)

// TestChaosSchedule: FailFirst fails exactly the first N attempts, the
// counter is observable, and Reset restarts the schedule.
func TestChaosSchedule(t *testing.T) {
	env := etl.NewContext(nil)
	ch := &Chaos{FailFirst: 2}
	for i := 1; i <= 2; i++ {
		if err := ch.Run(context.Background(), env); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := ch.Run(context.Background(), env); err != nil {
		t.Fatalf("attempt 3: %v", err)
	}
	if ch.Attempts() != 3 {
		t.Fatalf("attempts = %d", ch.Attempts())
	}
	ch.Reset()
	if err := ch.Run(context.Background(), env); !errors.Is(err, ErrInjected) {
		t.Fatalf("after reset: err = %v, want ErrInjected again", err)
	}

	forever := &Chaos{FailForever: true, Err: errors.New("dead source")}
	for i := 0; i < 3; i++ {
		if err := forever.Run(context.Background(), env); err == nil || err.Error() != "dead source" {
			t.Fatalf("err = %v", err)
		}
	}
}

// TestChaosBlocksAndHonorsContext: BlockUntilCancel and Delay both return
// ctx.Err() when the context dies.
func TestChaosBlocksAndHonorsContext(t *testing.T) {
	env := etl.NewContext(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := (&Chaos{BlockUntilCancel: true}).Run(ctx, env); !errors.Is(err, context.Canceled) {
		t.Fatalf("block: err = %v", err)
	}
	if err := (&Chaos{Delay: 1 << 40}).Run(ctx, env); !errors.Is(err, context.Canceled) {
		t.Fatalf("delay: err = %v", err)
	}
}

// TestChaosForwardsDataflowAndWrapping: the wrapper forwards Name/Describe
// and the Reads/Writes declarations, runs the wrapped component on clean
// attempts, and Wrap splices it into a workflow by step ID.
func TestChaosForwardsDataflowAndWrapping(t *testing.T) {
	u := &etl.Union{From: []etl.TableRef{{DB: "a", Table: "T"}}, To: etl.TableRef{DB: "o", Table: "U"}}
	ch := &Chaos{Wrapped: u}
	if ch.Name() != "union" || !strings.Contains(ch.Describe(), "chaos(") {
		t.Fatalf("name=%q describe=%q", ch.Name(), ch.Describe())
	}
	if got := ch.Reads(); len(got) != 1 || got[0].String() != "a.T" {
		t.Fatalf("reads = %v", got)
	}
	if got := ch.Writes(); len(got) != 1 || got[0].String() != "o.U" {
		t.Fatalf("writes = %v", got)
	}

	// A clean chaos wrapper is transparent: the wrapped union runs.
	env := etl.NewContext(nil)
	src := env.DB("a")
	s := relstore.MustSchema(relstore.Column{Name: "K", Type: relstore.KindInt})
	tab, err := src.CreateTable("T", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(relstore.Row{relstore.Int(1)}); err != nil {
		t.Fatal(err)
	}
	w := &etl.Workflow{Name: "wrapped"}
	w.Add("load", u)
	if got := Wrap(w, "load", func(c etl.Component) *Chaos { return &Chaos{Wrapped: c} }); got == nil {
		t.Fatal("wrap missed the step")
	}
	if got := Wrap(w, "ghost", func(c etl.Component) *Chaos { return &Chaos{Wrapped: c} }); got != nil {
		t.Fatal("wrap invented a step")
	}
	if err := w.Run(context.Background(), env); err != nil {
		t.Fatal(err)
	}
	out, err := env.DB("o").Table("U")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("union rows = %d", out.Len())
	}
}

// TestChaosCrashModes: CrashBeforeWork skips the wrapped component entirely;
// CrashAfterWork runs it first — both return ErrCrashed.
func TestChaosCrashModes(t *testing.T) {
	env := etl.NewContext(nil)
	u := &etl.Union{From: []etl.TableRef{{DB: "a", Table: "T"}}, To: etl.TableRef{DB: "o", Table: "U"}}
	s := relstore.MustSchema(relstore.Column{Name: "K", Type: relstore.KindInt})
	tab, err := env.DB("a").CreateTable("T", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(relstore.Row{relstore.Int(1)}); err != nil {
		t.Fatal(err)
	}

	before := &Chaos{Wrapped: u, CrashBeforeWork: true}
	if err := before.Run(context.Background(), env); !errors.Is(err, ErrCrashed) {
		t.Fatalf("before: err = %v, want ErrCrashed", err)
	}
	if _, err := env.DB("o").Table("U"); err == nil {
		t.Fatal("CrashBeforeWork ran the wrapped component")
	}

	after := &Chaos{Wrapped: u, CrashAfterWork: true}
	if err := after.Run(context.Background(), env); !errors.Is(err, ErrCrashed) {
		t.Fatalf("after: err = %v, want ErrCrashed", err)
	}
	out, err := env.DB("o").Table("U")
	if err != nil || out.Len() != 1 {
		t.Fatalf("CrashAfterWork left no work behind: (%v, %v)", out, err)
	}
}

// TestChaosPoisonRows: the poisoner nulls the chosen column in the first N
// rows of the wrapped step's output and relaxes the schema so the corruption
// physically exists.
func TestChaosPoisonRows(t *testing.T) {
	env := etl.NewContext(nil)
	u := &etl.Union{From: []etl.TableRef{{DB: "a", Table: "T"}}, To: etl.TableRef{DB: "o", Table: "U"}}
	s := relstore.MustSchema(
		relstore.Column{Name: "K", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "V", Type: relstore.KindString},
	)
	tab, err := env.DB("a").CreateTable("T", s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := tab.Insert(relstore.Row{relstore.Int(int64(i)), relstore.Str("v")}); err != nil {
			t.Fatal(err)
		}
	}
	ch := &Chaos{Wrapped: u, PoisonRows: 2, PoisonColumn: "K"}
	if err := ch.Run(context.Background(), env); err != nil {
		t.Fatal(err)
	}
	out, err := env.DB("o").Table("U")
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Rows()
	idx := rows.Schema.Index("K")
	if rows.Schema.Columns[idx].NotNull {
		t.Fatal("poisoned column still NOT NULL")
	}
	nulls := 0
	for _, row := range rows.Data {
		if row[idx].IsNull() {
			nulls++
		}
	}
	if nulls != 2 {
		t.Fatalf("poisoned %d rows, want 2", nulls)
	}

	// Poison on a step with no declared writes is a loud failure, not a
	// silent no-op.
	if err := (&Chaos{PoisonRows: 1}).Run(context.Background(), env); err == nil || !strings.Contains(err.Error(), "declares no writes") {
		t.Fatalf("writeless poison: err = %v", err)
	}
}

// TestTearFile: both corruption modes change the file the way their names
// promise, and unknown modes are rejected.
func TestTearFile(t *testing.T) {
	dir := t.TempDir()
	orig := []byte("guava-ckpt v1\nsha256 abc\npayload payload payload payload\n")

	p1 := filepath.Join(dir, "trunc")
	if err := os.WriteFile(p1, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearFile(p1, TearTruncate); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(p1)
	if len(got) != len(orig)/2 || !bytes.HasPrefix(orig, got) {
		t.Fatalf("truncate: len %d of %d", len(got), len(orig))
	}

	p2 := filepath.Join(dir, "flip")
	if err := os.WriteFile(p2, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearFile(p2, TearFlip); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(p2)
	if len(got) != len(orig) || bytes.Equal(got, orig) {
		t.Fatal("flip: file unchanged or resized")
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("flip changed %d bytes, want 1", diff)
	}

	if err := TearFile(p2, "melt"); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := TearFile(filepath.Join(dir, "missing"), TearFlip); err == nil {
		t.Fatal("missing file accepted")
	}
}
