package faulty

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"guava/internal/etl"
	"guava/internal/obs"
)

// faulty.FS is the storage half of this package: a fault-injecting
// etl.FS that models how disks actually fail under a crash — not by
// returning tidy errors, but by silently losing data the writer thought
// was durable. Each fault fires on a deterministic schedule (the Nth
// operation matching a path substring), so a recovery test can tear
// exactly the MANIFEST rename it means to and nothing else.
//
// The silent faults (short_write, torn_rename, drop_sync, bit_flip)
// deliberately report success: the interesting failure mode is the one
// the writer cannot observe, where only startup recovery's checksums
// stand between a torn file and serving garbage. enospc is the loud
// counterexample — real ENOSPC is observable, so it surfaces as an error.

// FaultKind names one storage fault class. The names use underscores so
// they can double as metric-name suffixes (fs.fault.<kind>).
type FaultKind string

const (
	// FaultShortWrite silently persists only the first half of a Write,
	// reporting full success — a torn page that recovery must catch.
	FaultShortWrite FaultKind = "short_write"
	// FaultTornRename truncates the source file to half before the rename
	// — the rename was journaled before the data blocks were durable.
	FaultTornRename FaultKind = "torn_rename"
	// FaultDropSync makes Sync report success while truncating the file to
	// half — the page cache "lost at crash" compressed into an
	// immediately-observable state.
	FaultDropSync FaultKind = "drop_sync"
	// FaultENOSPC fails a Write with ErrNoSpace before writing anything.
	FaultENOSPC FaultKind = "enospc"
	// FaultBitFlip flips one bit in a ReadFile result — at-rest bit rot.
	FaultBitFlip FaultKind = "bit_flip"
	// FaultLatency delays a matching operation by the fault's Delay — a
	// slow device, for tail-latency experiments.
	FaultLatency FaultKind = "latency"
)

// ErrNoSpace is the injected "device full" error.
var ErrNoSpace = errors.New("faulty: injected ENOSPC (no space left on device)")

// FSFault is one scheduled fault: Kind fires on the After-th (0-based)
// operation whose path contains Path ("" matches every path). Each fault
// fires exactly once.
type FSFault struct {
	Kind  FaultKind
	Path  string
	After int
	// Delay is the injected latency for FaultLatency (default 1ms).
	Delay time.Duration

	seen  int
	fired bool
}

// FS wraps an inner etl.FS and injects the scheduled faults. The zero
// Metrics routes fs.fault.* counters to obs.Default.
type FS struct {
	Inner   etl.FS
	Metrics *obs.Registry

	mu     sync.Mutex
	faults []*FSFault
	counts map[FaultKind]int
}

// NewFS wraps inner with a deterministic fault schedule.
func NewFS(inner etl.FS, faults ...FSFault) *FS {
	f := &FS{Inner: inner, counts: make(map[FaultKind]int)}
	if f.Inner == nil {
		f.Inner = etl.OSFS{}
	}
	for i := range faults {
		fa := faults[i]
		f.faults = append(f.faults, &fa)
	}
	return f
}

// Injected returns how many faults of each kind have fired.
func (f *FS) Injected() map[FaultKind]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[FaultKind]int, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// InjectedCount returns how many faults of one kind have fired.
func (f *FS) InjectedCount(kind FaultKind) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[kind]
}

// InjectedTotal returns how many faults have fired across all kinds.
func (f *FS) InjectedTotal() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, v := range f.counts {
		n += v
	}
	return n
}

// trip consumes the next scheduled fault of one of the kinds matching
// path, if its turn has come. At most one fault fires per operation.
func (f *FS) trip(path string, kinds ...FaultKind) *FSFault {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, fa := range f.faults {
		if fa.fired || !kindIn(fa.Kind, kinds) || !strings.Contains(path, fa.Path) {
			continue
		}
		fa.seen++
		if fa.seen-1 < fa.After {
			continue
		}
		fa.fired = true
		f.counts[fa.Kind]++
		m := f.Metrics
		if m == nil {
			m = obs.Default
		}
		m.Counter("fs.fault." + string(fa.Kind)).Inc()
		return fa
	}
	return nil
}

func kindIn(k FaultKind, kinds []FaultKind) bool {
	for _, want := range kinds {
		if k == want {
			return true
		}
	}
	return false
}

func (fa *FSFault) sleep() {
	d := fa.Delay
	if d <= 0 {
		d = time.Millisecond
	}
	time.Sleep(d)
}

// MkdirAll implements etl.FS.
func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if fa := f.trip(path, FaultLatency); fa != nil {
		fa.sleep()
	}
	return f.Inner.MkdirAll(path, perm)
}

// CreateTemp implements etl.FS; the returned file carries the write-side
// fault hooks (short_write, drop_sync, enospc, latency).
func (f *FS) CreateTemp(dir, pattern string) (etl.FSFile, error) {
	inner, err := f.Inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{inner: inner, fs: f}, nil
}

// Rename implements etl.FS. A torn_rename fault truncates the source to
// half before renaming: the metadata operation was journaled before the
// data blocks were durable, so the new name points at a torn file.
func (f *FS) Rename(oldpath, newpath string) error {
	if fa := f.trip(newpath, FaultTornRename, FaultLatency); fa != nil {
		switch fa.Kind {
		case FaultTornRename:
			if b, err := f.Inner.ReadFile(oldpath); err == nil {
				_ = f.Inner.Truncate(oldpath, int64(len(b)/2))
			}
		case FaultLatency:
			fa.sleep()
		}
	}
	return f.Inner.Rename(oldpath, newpath)
}

// ReadFile implements etl.FS. A bit_flip fault flips one bit near the
// middle of the content — at-rest corruption a checksum must catch.
func (f *FS) ReadFile(path string) ([]byte, error) {
	b, err := f.Inner.ReadFile(path)
	if fa := f.trip(path, FaultBitFlip, FaultLatency); fa != nil && err == nil {
		switch fa.Kind {
		case FaultBitFlip:
			if len(b) > 0 {
				b[len(b)/2] ^= 0x04
			}
		case FaultLatency:
			fa.sleep()
		}
	}
	return b, err
}

// ReadDir implements etl.FS.
func (f *FS) ReadDir(path string) ([]os.DirEntry, error) {
	if fa := f.trip(path, FaultLatency); fa != nil {
		fa.sleep()
	}
	return f.Inner.ReadDir(path)
}

// Remove implements etl.FS.
func (f *FS) Remove(path string) error { return f.Inner.Remove(path) }

// RemoveAll implements etl.FS.
func (f *FS) RemoveAll(path string) error { return f.Inner.RemoveAll(path) }

// Truncate implements etl.FS.
func (f *FS) Truncate(path string, size int64) error { return f.Inner.Truncate(path, size) }

// ParseFaultSchedule parses the CLI form of a fault schedule: a
// comma-separated list of entries, each
//
//	kind[:pathsub][@after][~delay]
//
// e.g. "torn_rename:MANIFEST@1,drop_sync:table.rel,latency:gen-~5ms".
// kind is one of short_write, torn_rename, drop_sync, enospc, bit_flip,
// latency; pathsub is a substring the operation's path must contain;
// after is how many matching operations pass before the fault fires
// (default 0, the first); delay applies to latency faults.
func ParseFaultSchedule(s string) ([]FSFault, error) {
	var out []FSFault
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		var fa FSFault
		if i := strings.IndexByte(entry, '~'); i >= 0 {
			d, err := time.ParseDuration(entry[i+1:])
			if err != nil {
				return nil, fmt.Errorf("faulty: bad delay in fault %q: %v", entry, err)
			}
			fa.Delay = d
			entry = entry[:i]
		}
		if i := strings.IndexByte(entry, '@'); i >= 0 {
			n, err := strconv.Atoi(entry[i+1:])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faulty: bad @after in fault %q", entry)
			}
			fa.After = n
			entry = entry[:i]
		}
		kind, path, _ := strings.Cut(entry, ":")
		switch FaultKind(kind) {
		case FaultShortWrite, FaultTornRename, FaultDropSync, FaultENOSPC, FaultBitFlip, FaultLatency:
			fa.Kind = FaultKind(kind)
		default:
			return nil, fmt.Errorf("faulty: unknown fault kind %q (want short_write, torn_rename, drop_sync, enospc, bit_flip, or latency)", kind)
		}
		fa.Path = path
		out = append(out, fa)
	}
	return out, nil
}

// faultyFile intercepts Write and Sync on one temp file.
type faultyFile struct {
	inner   etl.FSFile
	fs      *FS
	written int64
}

func (w *faultyFile) Write(p []byte) (int, error) {
	if fa := w.fs.trip(w.inner.Name(), FaultENOSPC, FaultShortWrite, FaultLatency); fa != nil {
		switch fa.Kind {
		case FaultENOSPC:
			return 0, ErrNoSpace
		case FaultShortWrite:
			// Persist half, report success: the writer proceeds to rename a
			// torn file into place, exactly what a lost page does.
			n, err := w.inner.Write(p[:len(p)/2])
			w.written += int64(n)
			if err != nil {
				return n, err
			}
			return len(p), nil
		case FaultLatency:
			fa.sleep()
		}
	}
	n, err := w.inner.Write(p)
	w.written += int64(n)
	return n, err
}

func (w *faultyFile) Sync() error {
	if fa := w.fs.trip(w.inner.Name(), FaultDropSync, FaultLatency); fa != nil {
		switch fa.Kind {
		case FaultDropSync:
			// Report durable, keep only half: what the page cache held at
			// the crash never reached the platter.
			_ = w.inner.Truncate(w.written / 2)
			return nil
		case FaultLatency:
			fa.sleep()
		}
	}
	return w.inner.Sync()
}

func (w *faultyFile) Truncate(size int64) error { return w.inner.Truncate(size) }
func (w *faultyFile) Close() error              { return w.inner.Close() }
func (w *faultyFile) Name() string              { return w.inner.Name() }
