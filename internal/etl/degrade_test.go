package etl_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"guava/internal/etl"
	"guava/internal/etl/faulty"
	"guava/internal/patterns"
)

// TestStudyDegradesGracefully is the acceptance scenario: a compiled
// multi-contributor study with one contributor forced to fail completes in
// ContinueOnError mode, unions the surviving contributors, and its
// RunReport names the failed step, its attempt count, the skipped
// dependents, and the degraded contributor.
func TestStudyDegradesGracefully(t *testing.T) {
	spec := etl.StudyFixtureForTest(t) // contributors clinicA, clinicB
	clean, err := etl.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}

	compiled, err := etl.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	ch := faulty.Wrap(compiled.Workflow, "extract/clinicB", func(wrapped etl.Component) *faulty.Chaos {
		return &faulty.Chaos{Wrapped: wrapped, FailForever: true}
	})
	if ch == nil {
		t.Fatal("extract/clinicB not found")
	}

	policy := etl.RunPolicy{MaxAttempts: 3, ContinueOnError: true}
	rows, rep, err := compiled.RunResilient(context.Background(), policy, 4)
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}

	// The surviving contributor's rows are all present, and only those.
	for _, r := range rows.Data {
		if got := r[1].AsString(); got != "clinicA" {
			t.Fatalf("degraded output contains contributor %q", got)
		}
	}
	wantA := 0
	for _, r := range want.Data {
		if r[1].AsString() == "clinicA" {
			wantA++
		}
	}
	if rows.Len() != wantA {
		t.Fatalf("degraded output = %d rows, want clinicA's %d\n%s", rows.Len(), wantA, rows.Format())
	}

	// The report names the failure, its attempts, and the fallout.
	res := rep.Step("extract/clinicB")
	if res.Status != etl.StepFailed || res.Attempts != 3 {
		t.Fatalf("extract/clinicB = %v attempts=%d, want failed after 3", res.Status, res.Attempts)
	}
	if !errors.Is(res.Err, faulty.ErrInjected) {
		t.Fatalf("step error = %v", res.Err)
	}
	if got := rep.Failed(); !reflect.DeepEqual(got, []string{"extract/clinicB"}) {
		t.Fatalf("failed = %v", got)
	}
	if got := rep.Skipped(); !reflect.DeepEqual(got, []string{"classify/clinicB", "select/clinicB"}) {
		t.Fatalf("skipped = %v", got)
	}
	if got := rep.Step("select/clinicB").SkippedBecause; !reflect.DeepEqual(got, []string{"extract/clinicB"}) {
		t.Fatalf("select/clinicB skip cause = %v", got)
	}

	// The final load degraded: it dropped clinicB's classified table.
	union := rep.Step("load/union")
	if union.Status != etl.StepDegraded {
		t.Fatalf("load/union = %v, want degraded", union.Status)
	}
	if len(union.DroppedInputs) != 1 || !strings.Contains(union.DroppedInputs[0].String(), "clinicB") {
		t.Fatalf("dropped inputs = %v", union.DroppedInputs)
	}
	if !reflect.DeepEqual(rep.DegradedContributors, []string{"clinicB"}) {
		t.Fatalf("degraded contributors = %v", rep.DegradedContributors)
	}
	if rep.Err == nil || rep.OK() {
		t.Fatal("report must record the failure")
	}
	if !strings.Contains(rep.Render(), "degraded contributors: clinicB") {
		t.Fatalf("render:\n%s", rep.Render())
	}
}

// TestStudyAllContributorsFail: with every chain dead the union has nothing
// to load, and RunResilient reports the failure instead of fabricating an
// empty study.
func TestStudyAllContributorsFail(t *testing.T) {
	spec := etl.StudyFixtureForTest(t)
	compiled, err := etl.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"extract/clinicA", "extract/clinicB"} {
		if faulty.Wrap(compiled.Workflow, id, func(wrapped etl.Component) *faulty.Chaos {
			return &faulty.Chaos{Wrapped: wrapped, FailForever: true}
		}) == nil {
			t.Fatalf("%s not found", id)
		}
	}
	rows, rep, err := compiled.RunResilient(context.Background(), etl.RunPolicy{ContinueOnError: true}, 4)
	if err == nil || rows != nil {
		t.Fatalf("rows=%v err=%v, want no-output error", rows, err)
	}
	if rep == nil || len(rep.DegradedContributors) != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestStudyTransientFaultRetries: a contributor whose extract fails once
// recovers under MaxAttempts=2 and the study output is byte-identical to
// the clean run.
func TestStudyTransientFaultRetries(t *testing.T) {
	spec := etl.StudyFixtureForTest(t)
	clean, err := etl.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	ch := faulty.Wrap(compiled.Workflow, "extract/clinicA", func(wrapped etl.Component) *faulty.Chaos {
		return &faulty.Chaos{Wrapped: wrapped, FailFirst: 1}
	})
	rows, rep, err := compiled.RunResilient(context.Background(), etl.RunPolicy{MaxAttempts: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.EqualUnordered(want) {
		t.Fatal("retried run differs from clean run")
	}
	if res := rep.Step("extract/clinicA"); res.Status != etl.StepOK || res.Attempts != 2 {
		t.Fatalf("extract/clinicA = %v attempts=%d", res.Status, res.Attempts)
	}
	if ch.Attempts() != 2 {
		t.Fatalf("chaos attempts = %d", ch.Attempts())
	}
	if len(rep.DegradedContributors) != 0 || !rep.OK() {
		t.Fatalf("recovered run must not be degraded: %+v", rep)
	}
}

// TestSerialParallelEquivalenceUnderFaults is the property: for random
// acyclic compiled workflows (the shared property generator), serial
// execution, parallel execution, and both again under injected retryable
// faults that succeed on attempt 2 all produce the identical final table
// state.
func TestSerialParallelEquivalenceUnderFaults(t *testing.T) {
	stacks := []*patterns.Stack{
		patterns.NewStack(patterns.Naive{}, &patterns.Audit{}),
		patterns.NewStack(patterns.Generic{}, &patterns.Encode{}),
	}
	f := func(records []uint8, packs []int8, t1, t2 int8, surgeryOnly bool, pickStack uint8) bool {
		spec := etl.PropStudySpecForTest(records, packs, t1, t2, surgeryOnly, stacks[int(pickStack)%len(stacks)])
		if spec == nil {
			return false
		}
		clean, err := etl.Compile(spec)
		if err != nil {
			return false
		}
		want, err := clean.Run()
		if err != nil {
			return false
		}
		policy := etl.RunPolicy{MaxAttempts: 2}
		for _, workers := range []int{1, 4} {
			compiled, err := etl.Compile(spec)
			if err != nil {
				return false
			}
			// Every extract fails its first attempt, succeeds on retry.
			for _, s := range compiled.Workflow.Steps {
				if strings.HasPrefix(s.ID, "extract/") {
					faulty.Wrap(compiled.Workflow, s.ID, func(wrapped etl.Component) *faulty.Chaos {
						return &faulty.Chaos{Wrapped: wrapped, FailFirst: 1}
					})
				}
			}
			rows, rep, err := compiled.RunResilient(context.Background(), policy, workers)
			if err != nil || !rep.OK() {
				return false
			}
			if !rows.EqualUnordered(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
