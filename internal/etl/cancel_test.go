package etl_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"guava/internal/etl"
	"guava/internal/etl/faulty"
)

// TestCancelUnblocksParallel: a workflow whose mid-step blocks until
// canceled must return context.Canceled promptly once the caller cancels.
func TestCancelUnblocksParallel(t *testing.T) {
	w := &etl.Workflow{Name: "blocky"}
	first := w.Add("first", &faulty.Chaos{})
	w.Add("hang", &faulty.Chaos{BlockUntilCancel: true}, first)
	w.Add("after", &faulty.Chaos{}, "hang")

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- w.RunParallel(ctx, etl.NewContext(nil), 2) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("workflow did not return after cancel")
	}
}

// TestCancelUnblocksSerial: the serial runner also propagates ctx into the
// running component and unblocks.
func TestCancelUnblocksSerial(t *testing.T) {
	w := &etl.Workflow{Name: "blocky-serial"}
	w.Add("hang", &faulty.Chaos{BlockUntilCancel: true})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- w.Run(ctx, etl.NewContext(nil)) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serial run did not return after cancel")
	}
}

// TestStepTimeoutBeforeWorkflowTimeout: with a short per-step and a long
// per-workflow deadline, the step deadline fires — the run fails on the
// step's DeadlineExceeded long before the workflow deadline.
func TestStepTimeoutBeforeWorkflowTimeout(t *testing.T) {
	w := &etl.Workflow{Name: "slow"}
	w.Add("slow", &faulty.Chaos{Delay: time.Hour})
	policy := etl.RunPolicy{StepTimeout: 30 * time.Millisecond, WorkflowTimeout: time.Hour}
	start := time.Now()
	rep, err := w.Execute(context.Background(), etl.NewContext(nil), policy, 1)
	elapsed := time.Since(start)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("took %v; the step deadline should fire in milliseconds", elapsed)
	}
	res := rep.Step("slow")
	if res.Status != etl.StepFailed || res.Attempts != 1 {
		t.Fatalf("step = %v attempts=%d", res.Status, res.Attempts)
	}
}

// TestWorkflowTimeout: the whole-run deadline cancels a workflow with no
// per-step deadline.
func TestWorkflowTimeout(t *testing.T) {
	w := &etl.Workflow{Name: "slow-wf"}
	w.Add("slow", &faulty.Chaos{Delay: time.Hour})
	policy := etl.RunPolicy{WorkflowTimeout: 30 * time.Millisecond}
	start := time.Now()
	_, err := w.Execute(context.Background(), etl.NewContext(nil), policy, 1)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("took %v; the workflow deadline should fire in milliseconds", elapsed)
	}
}

// TestStepTimeoutRecoversOnRetry: an attempt that trips the per-step
// deadline is retried with a fresh deadline and can succeed.
func TestStepTimeoutRecoversOnRetry(t *testing.T) {
	w := &etl.Workflow{Name: "flaky-slow"}
	// First attempt blocks (trips the 30ms step deadline); attempt 2 is
	// instant because FailFirst only injects the delay error once.
	ch := &faulty.Chaos{FailFirst: 1, Err: context.DeadlineExceeded}
	w.Add("flaky", ch)
	rep, err := w.Execute(context.Background(), etl.NewContext(nil), etl.RunPolicy{MaxAttempts: 2, StepTimeout: 30 * time.Millisecond}, 1)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res := rep.Step("flaky"); res.Status != etl.StepOK || res.Attempts != 2 {
		t.Fatalf("step = %v attempts=%d, want ok after retry", res.Status, res.Attempts)
	}
}
