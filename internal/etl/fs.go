package etl

import (
	"io"
	"os"
	"path/filepath"
)

// This file is the storage seam for every durable artifact the engine
// writes — checkpoints, delta cursors, and (through internal/serve) the
// per-study generation store. All of them follow the same discipline:
// write to a temp file, fsync, close, rename into place. Routing those
// primitive operations through an interface instead of calling the os
// package directly is what makes the discipline *testable*: faulty.FS
// wraps this seam and injects short writes, torn renames, and dropped
// fsyncs on a deterministic schedule, so crash-consistency claims are
// exercised by tests rather than asserted in comments.

// FSFile is one writable file handle from an FS. It mirrors the subset of
// *os.File the atomic-write discipline needs.
type FSFile interface {
	io.Writer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the file's size — used by the fault injector to
	// model data that never reached the platter.
	Truncate(size int64) error
	Close() error
	// Name returns the path the file was opened under.
	Name() string
}

// FS is the filesystem capability surface for durable writers. OSFS is the
// real implementation; faulty.FS wraps any FS with injected storage faults.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// CreateTemp creates a new temp file in dir (pattern as os.CreateTemp).
	CreateTemp(dir, pattern string) (FSFile, error)
	Rename(oldpath, newpath string) error
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]os.DirEntry, error)
	Remove(path string) error
	RemoveAll(path string) error
	Truncate(path string, size int64) error
}

// OSFS is the passthrough FS over the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// CreateTemp implements FS.
func (OSFS) CreateTemp(dir, pattern string) (FSFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// RemoveAll implements FS.
func (OSFS) RemoveAll(path string) error { return os.RemoveAll(path) }

// Truncate implements FS.
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// fsOrOS returns fsys, defaulting to the real filesystem.
func fsOrOS(fsys FS) FS {
	if fsys == nil {
		return OSFS{}
	}
	return fsys
}

// WriteFileAtomic durably writes data to path with the temp+fsync+rename
// discipline: after it returns nil the file is complete and durable under
// its final name; after a crash at any point the old content (or no file)
// is still intact — a half-written file can only exist under a temp name.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	fsys = fsOrOS(fsys)
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp.Name(), path)
}
