package etl_test

import (
	"context"
	"testing"

	"guava/internal/etl"
	"guava/internal/etl/faulty"
	"guava/internal/patterns"
	"guava/internal/relstore"
)

// studyRows builds a study-shaped relation from (entityKey, contributor,
// finding) triples.
func studyRows(t *testing.T, triples ...[3]string) *relstore.Rows {
	t.Helper()
	schema := relstore.MustSchema(
		relstore.Column{Name: etl.EntityKeyColumn, Type: relstore.KindString, NotNull: true},
		relstore.Column{Name: etl.ContributorColumn, Type: relstore.KindString, NotNull: true},
		relstore.Column{Name: "Finding", Type: relstore.KindString},
	)
	rows := &relstore.Rows{Schema: schema}
	for _, tr := range triples {
		rows.Data = append(rows.Data, relstore.Row{relstore.Str(tr[0]), relstore.Str(tr[1]), relstore.Str(tr[2])})
	}
	return rows
}

// TestMergeRemovesStaleGroups is the regression test for refresh divergence
// through deprecation: a warehouse group absent from the fresh run (the
// entity was deprecated, or fell out of the selection) must be deleted, or
// the merged warehouse drifts away from what a from-scratch build produces.
func TestMergeRemovesStaleGroups(t *testing.T) {
	first := studyRows(t, [3]string{"1", "clinicA", "polyp"}, [3]string{"2", "clinicA", "ulcer"})
	table := relstore.NewTable("Study_x", first.Schema)
	if _, err := etl.Merge(table, first); err != nil {
		t.Fatal(err)
	}

	// Entity 2 vanished from the run.
	second := studyRows(t, [3]string{"1", "clinicA", "polyp"})
	stats, err := etl.Merge(table, second)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 1 || stats.Unchanged != 1 || stats.Added != 0 || stats.Updated != 0 {
		t.Fatalf("merge after deprecation = %+v, want 1 removed, 1 unchanged", stats)
	}
	if !stats.Changed() {
		t.Fatal("a removal-only merge must report Changed() — caches are stale")
	}
	if table.Len() != 1 {
		t.Fatalf("warehouse rows = %d, want 1", table.Len())
	}

	// Convergent: re-merging the same input is a no-op.
	stats, err = etl.Merge(table, second)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Changed() {
		t.Fatalf("re-merge of identical input = %+v, want no changes", stats)
	}
}

// TestMergeKeepsDegradedContributorHistory: when a contributor's chain
// failed, its rows are missing from the fresh output because it didn't run —
// not because its data is gone. Merge must preserve its warehouse history
// when told the contributor degraded, and only then.
func TestMergeKeepsDegradedContributorHistory(t *testing.T) {
	first := studyRows(t, [3]string{"1", "clinicA", "polyp"}, [3]string{"2", "clinicB", "ulcer"})
	table := relstore.NewTable("Study_x", first.Schema)
	if _, err := etl.Merge(table, first); err != nil {
		t.Fatal(err)
	}

	// clinicB degraded: its rows are absent from fresh but must survive.
	fresh := studyRows(t, [3]string{"1", "clinicA", "polyp"})
	stats, err := etl.Merge(table, fresh, "clinicB")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 0 || stats.Changed() {
		t.Fatalf("degraded merge = %+v, want nothing removed", stats)
	}
	if table.Len() != 2 {
		t.Fatalf("warehouse rows = %d, want clinicB history preserved (2)", table.Len())
	}

	// Without the protection the same input deletes the stale group.
	stats, err = etl.Merge(table, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 1 || table.Len() != 1 {
		t.Fatalf("unprotected merge = %+v len=%d, want clinicB group removed", stats, table.Len())
	}
}

// TestRefreshPreservesDegradedContributorHistory is the end-to-end guard for
// the stable-history contract: a full refresh whose run degrades past a dead
// contributor must not interpret that contributor's missing output as
// deprecation and wipe its warehouse rows.
func TestRefreshPreservesDegradedContributorHistory(t *testing.T) {
	spec := etl.StudyFixtureForTest(t)
	compiled, err := etl.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	warehouse := relstore.NewDB("warehouse")
	if _, err := compiled.Refresh(warehouse); err != nil {
		t.Fatal(err)
	}
	table, err := warehouse.Table(compiled.Output.Table)
	if err != nil {
		t.Fatal(err)
	}
	countB := func() int {
		rows, err := table.Select(relstore.Eq(etl.ContributorColumn, relstore.Str("clinicB")))
		if err != nil {
			t.Fatal(err)
		}
		return rows.Len()
	}
	before := countB()
	if before == 0 {
		t.Fatal("fixture must warehouse clinicB rows")
	}

	if ch := faulty.Wrap(compiled.Workflow, "extract/clinicB", func(wrapped etl.Component) *faulty.Chaos {
		return &faulty.Chaos{Wrapped: wrapped, FailForever: true}
	}); ch == nil {
		t.Fatal("extract/clinicB not found")
	}
	policy := etl.RunPolicy{MaxAttempts: 1, ContinueOnError: true}
	stats, err := compiled.RefreshContext(context.Background(), warehouse, policy)
	if err != nil {
		t.Fatalf("degraded refresh failed outright: %v", err)
	}
	if stats.Removed != 0 {
		t.Fatalf("degraded refresh removed %d rows — dead contributor history wiped", stats.Removed)
	}
	if got := countB(); got != before {
		t.Fatalf("clinicB warehouse rows %d -> %d across a degraded refresh", before, got)
	}
}

// TestDeltaRefreshRemovesDeprecatedEntities drives a deprecation through the
// journal-backed delta path and checks the warehouse converges to exactly
// what a from-scratch full build produces — the equivalence the incremental
// path promises.
func TestDeltaRefreshRemovesDeprecatedEntities(t *testing.T) {
	ctx := context.Background()
	spec := etl.StudyFixtureForTest(t)
	for _, c := range spec.Contributors {
		c.Stack.Journal = patterns.NewJournal()
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	warehouse := relstore.NewDB("warehouse")
	if _, err := compiled.Refresh(warehouse); err != nil {
		t.Fatal(err)
	}
	cursors := etl.NewDeltaCursors()
	if err := compiled.SeedDeltaCursors(cursors); err != nil {
		t.Fatal(err)
	}

	// clinicA's stack carries an Audit layer: deprecate a warehoused record.
	ca := spec.Contributors[0]
	if _, err := ca.Stack.Deprecate(ca.DB, ca.Form, relstore.Int(1)); err != nil {
		t.Fatal(err)
	}
	report, err := compiled.RefreshDelta(ctx, warehouse, etl.DeltaOptions{Cursors: cursors})
	if err != nil {
		t.Fatal(err)
	}
	if report.Stats.Removed != 1 || !report.Stats.Changed() {
		t.Fatalf("delta after deprecation = %+v, want 1 removed", report.Stats)
	}
	table, err := warehouse.Table(compiled.Output.Table)
	if err != nil {
		t.Fatal(err)
	}
	gone, err := table.Select(relstore.And(
		relstore.Eq(etl.ContributorColumn, relstore.Str("clinicA")),
		relstore.Eq(etl.EntityKeyColumn, relstore.Int(1)),
	))
	if err != nil {
		t.Fatal(err)
	}
	if gone.Len() != 0 {
		t.Fatalf("deprecated entity still warehoused: %v", gone.Data)
	}

	// Equivalence anchor: the patched warehouse matches a from-scratch build.
	scratch := relstore.NewDB("scratch")
	if _, err := compiled.Refresh(scratch); err != nil {
		t.Fatal(err)
	}
	want, err := scratch.Table(compiled.Output.Table)
	if err != nil {
		t.Fatal(err)
	}
	got, err := relstore.SortBy(table.Rows(), table.Schema().Names()...)
	if err != nil {
		t.Fatal(err)
	}
	wantRows, err := relstore.SortBy(want.Rows(), want.Schema().Names()...)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != wantRows.Len() {
		t.Fatalf("delta warehouse = %d rows, full rebuild = %d", got.Len(), wantRows.Len())
	}
	for i := range got.Data {
		if got.Data[i].Key() != wantRows.Data[i].Key() {
			t.Fatalf("row %d diverges: delta %v vs full %v", i, got.Data[i], wantRows.Data[i])
		}
	}
}
