package etl

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"guava/internal/classifier"
	"guava/internal/gtree"
	"guava/internal/obs"
	"guava/internal/patterns"
	"guava/internal/provenance"
	"guava/internal/relstore"
)

// ColumnSpec selects one study-schema domain as an output column.
type ColumnSpec struct {
	// As names the output column (e.g. "Smoking_D3").
	As string
	// Attribute and Domain locate the representation in the study schema.
	Attribute, Domain string
	// Kind is the domain's value kind.
	Kind relstore.Kind
}

// ContributorPlan is everything the compiler needs for one data source: its
// database, g-tree, pattern stack, and the classifiers the analyst chose.
type ContributorPlan struct {
	// Name identifies the contributor (also written into the Contributor
	// column of the study output).
	Name string
	// DB is the contributor's physical database.
	DB *relstore.DB
	// Tree is the g-tree of the form being studied.
	Tree *gtree.Tree
	// Stack is the contributor's pattern configuration.
	Stack *patterns.Stack
	// Form is the form's naive-schema info.
	Form patterns.FormInfo
	// Entity is the entity classifier choosing which form instances become
	// study entities.
	Entity *classifier.Classifier
	// Classifiers maps output column names to the domain classifier chosen
	// for this contributor.
	Classifiers map[string]*classifier.Classifier
	// Condition is an optional extra filter over g-tree nodes ("conditions
	// similar to a WHERE clause in SQL to filter out unwanted data").
	Condition string
	// Cleaners are data-cleaning classifiers (Section 6 extension): records
	// matching any DISCARD rule are dropped before classification.
	Cleaners []*classifier.Classifier
}

// StudySpec is a complete study: the output columns and, per contributor,
// the artifacts that produce them. "A study comprises all of the decisions
// that a data analyst makes from the time a request arrives to when final
// statistical analyses are run."
type StudySpec struct {
	Name         string
	Columns      []ColumnSpec
	Contributors []*ContributorPlan
	// Log carries the study's annotations.
	Log *provenance.Log
}

// EntityKeyColumn and ContributorColumn are the fixed leading columns of
// every compiled study output.
const (
	EntityKeyColumn   = "EntityKey"
	ContributorColumn = "Contributor"
)

// OutputSchema is the study table's schema: entity key, contributor, then
// one column per selected domain.
func (s *StudySpec) OutputSchema() (*relstore.Schema, error) {
	cols := []relstore.Column{
		{Name: EntityKeyColumn, Type: relstore.KindInt, NotNull: true},
		{Name: ContributorColumn, Type: relstore.KindString, NotNull: true},
	}
	for _, c := range s.Columns {
		if c.As == "" {
			return nil, fmt.Errorf("etl: study %q has a column without a name", s.Name)
		}
		cols = append(cols, relstore.Column{Name: c.As, Type: c.Kind})
	}
	return relstore.NewSchema(cols...)
}

// Compiled is the result of compiling a study: the executable workflow, the
// location of the output, and the per-contributor bound artifacts for
// inspection (SQL/XQuery/Datalog emission, precision/recall analysis).
type Compiled struct {
	Spec     *StudySpec
	Workflow *Workflow
	// Output locates the study result table after Run.
	Output TableRef
	// EntityBinds and ColumnBinds expose the bound classifiers per
	// contributor (ColumnBinds is keyed contributor → output column).
	EntityBinds map[string]*classifier.Bound
	ColumnBinds map[string]map[string]*classifier.Bound
	// Conditions are the bound per-contributor filter predicates.
	Conditions map[string]relstore.Pred

	// fingerprint is the workflow's checkpoint identity, captured at
	// compile time — before any test instrumentation wraps the components
	// — so a crashed run and its resume agree on the key even when one of
	// them runs with fault injectors installed.
	fingerprint string
}

// Fingerprint is the compiled plan's checkpoint identity (see
// Workflow.Fingerprint), captured before any component wrapping.
func (c *Compiled) Fingerprint() string { return c.fingerprint }

// bindContributor resolves one contributor's classifiers, condition, and
// cleaners. The returned cond already incorporates the cleaners: it is
// "condition AND NOT discarded".
func (s *StudySpec) bindContributor(c *ContributorPlan) (entity *classifier.Bound, cols map[string]*classifier.Bound, cond relstore.Pred, err error) {
	if c.Entity == nil {
		return nil, nil, nil, fmt.Errorf("etl: contributor %q has no entity classifier", c.Name)
	}
	if !c.Entity.IsEntity {
		return nil, nil, nil, fmt.Errorf("etl: contributor %q: %q is not an entity classifier", c.Name, c.Entity.Name)
	}
	entity, err = c.Entity.Bind(c.Tree)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("etl: contributor %q: %w", c.Name, err)
	}
	cols = make(map[string]*classifier.Bound, len(s.Columns))
	for _, col := range s.Columns {
		cl, ok := c.Classifiers[col.As]
		if !ok {
			return nil, nil, nil, fmt.Errorf("etl: contributor %q has no classifier for column %q", c.Name, col.As)
		}
		if cl.IsEntity || cl.IsCleaner {
			return nil, nil, nil, fmt.Errorf("etl: contributor %q: %q cannot fill column %q (not a domain classifier)", c.Name, cl.Name, col.As)
		}
		b, err := cl.Bind(c.Tree)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("etl: contributor %q column %q: %w", c.Name, col.As, err)
		}
		cols[col.As] = b
	}
	cond = relstore.True
	if c.Condition != "" {
		p, _, err := classifier.BindCondition(c.Tree, c.Condition)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("etl: contributor %q condition: %w", c.Name, err)
		}
		cond = p
	}
	for _, cl := range c.Cleaners {
		if !cl.IsCleaner {
			return nil, nil, nil, fmt.Errorf("etl: contributor %q: %q is not a cleaning classifier", c.Name, cl.Name)
		}
		b, err := cl.Bind(c.Tree)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("etl: contributor %q cleaner %q: %w", c.Name, cl.Name, err)
		}
		cond = relstore.And(cond, relstore.Not(b.Selection()))
	}
	return entity, cols, cond, nil
}

// Compile translates the study into the three-stage ETL of Figure 6: per
// contributor, (1) extract the naive relation through GUAVA's pattern stack,
// (2) select entities and apply conditions, (3) classify into the study
// columns — then union all contributors into the study output.
func Compile(spec *StudySpec) (*Compiled, error) {
	return CompileTraced(context.Background(), spec)
}

// CompileTraced is Compile with tracing: when ctx carries an observer
// (obs.WithObserver), compilation opens a "compile <study>" span with
// one child per stage — "compile: bind <contributor>" for each
// contributor's classifier binding and "compile: lint" for the
// workflow self-check — so slow pattern stacks and rule binds show up
// in the same trace as the execution they feed.
func CompileTraced(ctx context.Context, spec *StudySpec) (_ *Compiled, err error) {
	ctx, span := obs.StartSpan(ctx, "compile "+spec.Name,
		obs.String("study", spec.Name), obs.Int("contributors", int64(len(spec.Contributors))))
	defer func() { span.EndErr(err) }()
	if len(spec.Contributors) == 0 {
		return nil, fmt.Errorf("etl: study %q has no contributors", spec.Name)
	}
	if _, err := spec.OutputSchema(); err != nil {
		return nil, err
	}
	out := &Compiled{
		Spec:        spec,
		Workflow:    &Workflow{Name: spec.Name},
		Output:      TableRef{DB: "study", Table: "Study_" + spec.Name},
		EntityBinds: make(map[string]*classifier.Bound),
		ColumnBinds: make(map[string]map[string]*classifier.Bound),
		Conditions:  make(map[string]relstore.Pred),
	}
	seen := map[string]bool{}
	var unionInputs []TableRef
	var unionDeps []string
	for _, c := range spec.Contributors {
		if seen[c.Name] {
			return nil, fmt.Errorf("etl: duplicate contributor %q", c.Name)
		}
		seen[c.Name] = true
		_, bindSpan := obs.StartSpan(ctx, "compile: bind "+c.Name, obs.String("contributor", c.Name))
		entity, cols, cond, err := spec.bindContributor(c)
		bindSpan.EndErr(err)
		if err != nil {
			return nil, err
		}
		out.EntityBinds[c.Name] = entity
		out.ColumnBinds[c.Name] = cols
		out.Conditions[c.Name] = cond

		srcDB := "source_" + c.Name
		tmp1 := TableRef{DB: "tmp1_" + c.Name, Table: c.Form.Name + "_naive"}
		tmp2 := TableRef{DB: "tmp2_" + c.Name, Table: c.Form.Name + "_selected"}

		extractID := out.Workflow.Add("extract/"+c.Name, &Extract{
			SourceDB: srcDB,
			Stack:    c.Stack,
			Form:     c.Form,
			To:       tmp1,
		})
		selectID := out.Workflow.Add("select/"+c.Name, &Query{
			From:    tmp1,
			Where:   relstore.And(entity.Selection(), cond),
			Require: []string{c.Form.KeyColumn},
			To:      tmp2,
		}, extractID)

		// The classify derivations come from the shared helper so the delta
		// path (RefreshDelta) re-classifies changed rows with the exact
		// expressions the full pipeline compiled.
		derive := out.deriveList(c)
		classified := TableRef{DB: "tmp2_" + c.Name, Table: c.Form.Name + "_classified"}
		classifyID := out.Workflow.Add("classify/"+c.Name, &Query{
			From:    tmp2,
			Derive:  derive,
			Require: []string{EntityKeyColumn},
			To:      classified,
		}, selectID)
		unionInputs = append(unionInputs, classified)
		unionDeps = append(unionDeps, classifyID)
	}
	out.Workflow.Add("load/union", &Union{From: unionInputs, To: out.Output}, unionDeps...)
	_, lintSpan := obs.StartSpan(ctx, "compile: lint")
	err = out.Workflow.Lint()
	lintSpan.EndErr(err)
	if err != nil {
		return nil, fmt.Errorf("etl: compiled workflow failed self-check: %w", err)
	}
	out.fingerprint = out.Workflow.Fingerprint()
	return out, nil
}

// Run executes the compiled workflow serially. Contributor databases
// register under "source_<name>"; temporary databases materialize on demand.
// It returns the study output sorted by contributor and entity key for
// stable display.
func (c *Compiled) Run() (*relstore.Rows, error) {
	return c.run(func(w *Workflow, env *Context) error { return w.Run(context.Background(), env) })
}

// RunParallel executes the compiled workflow with the per-contributor chains
// running concurrently under ctx; workers bounds concurrency (<= 0 means
// unbounded).
func (c *Compiled) RunParallel(ctx context.Context, workers int) (*relstore.Rows, error) {
	return c.run(func(w *Workflow, env *Context) error { return w.RunParallel(ctx, env, workers) })
}

// newEnv builds the execution context: contributor databases register under
// "source_<name>"; temporary databases materialize on demand.
func (c *Compiled) newEnv() *Context {
	dbs := make(map[string]*relstore.DB, len(c.Spec.Contributors))
	for _, ct := range c.Spec.Contributors {
		dbs["source_"+ct.Name] = ct.DB
	}
	return NewContext(dbs)
}

func (c *Compiled) run(exec func(*Workflow, *Context) error) (*relstore.Rows, error) {
	env := c.newEnv()
	if err := exec(c.Workflow, env); err != nil {
		return nil, err
	}
	return c.readOutput(env)
}

// readOutput fetches, conforms, and stably sorts the study output table.
// The sort keys on every column — contributor and entity key first, then
// the domain columns — so the returned relation is a pure function of the
// output's contents: a resumed run, a degraded run re-executed, and a fresh
// run produce byte-identical results regardless of union input order or
// scheduling.
func (c *Compiled) readOutput(env *Context) (*relstore.Rows, error) {
	rows, err := c.Output.read(env)
	if err != nil {
		return nil, err
	}
	outSchema, err := c.Spec.OutputSchema()
	if err != nil {
		return nil, err
	}
	rows, err = patterns.Conform(rows, outSchema)
	if err != nil {
		return nil, err
	}
	sortCols := []string{ContributorColumn, EntityKeyColumn}
	for _, col := range outSchema.Columns {
		if col.Name != ContributorColumn && col.Name != EntityKeyColumn {
			sortCols = append(sortCols, col.Name)
		}
	}
	return relstore.SortBy(rows, sortCols...)
}

// RunResilient executes the compiled workflow under a RunPolicy with the
// given worker bound, returning the study output together with the
// RunReport. With policy.ContinueOnError, a failing contributor chain no
// longer takes the study down: its steps are recorded as failed/skipped,
// the final load degrades to a union of the surviving contributors, and the
// report's DegradedContributors names what was lost. An error is returned
// only when no usable output exists at all — structural failure,
// cancellation, a fail-fast step error, or every contributor failing.
func (c *Compiled) RunResilient(ctx context.Context, policy RunPolicy, workers int) (*relstore.Rows, *RunReport, error) {
	env := c.newEnv()
	if policy.Checkpoint != nil && policy.CheckpointKey == "" {
		// Key checkpoints by the plan compiled, not the components as
		// currently wrapped: fault injectors around a step must not orphan
		// the checkpoints the un-instrumented resume run will look for.
		policy.CheckpointKey = c.fingerprint
	}
	report, err := c.Workflow.Execute(ctx, env, policy, workers)
	if report != nil {
		report.DegradedContributors = c.degradedContributors(report)
	}
	if err != nil {
		return nil, report, err
	}
	rows, err := c.readOutput(env)
	if err != nil {
		// Typically: every contributor failed, so the union never ran.
		if report.Err != nil {
			return nil, report, fmt.Errorf("etl: study %q produced no output (first failure: %v)", c.Spec.Name, report.Err)
		}
		return nil, report, err
	}
	return rows, report, nil
}

// degradedContributors extracts, from a run report, the contributors whose
// compiled chain (extract/select/classify step IDs of the form
// "<stage>/<contributor>") failed or was skipped.
func (c *Compiled) degradedContributors(r *RunReport) []string {
	names := map[string]bool{}
	for _, s := range r.Steps {
		if s.Status != StepFailed && s.Status != StepSkipped {
			continue
		}
		stage, name, ok := strings.Cut(s.ID, "/")
		if !ok {
			continue
		}
		switch stage {
		case "extract", "select", "classify":
			names[name] = true
		}
	}
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DirectEval is the reference semantics for Hypothesis #3: evaluate the
// study by walking classifier rules directly over each contributor's naive
// relation, with no ETL compilation. Tests assert Run ≡ DirectEval.
func DirectEval(spec *StudySpec) (*relstore.Rows, error) {
	outSchema, err := spec.OutputSchema()
	if err != nil {
		return nil, err
	}
	var data []relstore.Row
	for _, c := range spec.Contributors {
		entity, cols, cond, err := spec.bindContributor(c)
		if err != nil {
			return nil, err
		}
		rows, err := c.Stack.Read(c.DB, c.Form)
		if err != nil {
			return nil, err
		}
		for _, r := range rows.Data {
			keep, err := entity.Selection().Eval(r, rows.Schema)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
			keep, err = cond.Eval(r, rows.Schema)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
			nr := make(relstore.Row, 0, outSchema.Arity())
			nr = append(nr, r[rows.Schema.Index(c.Form.KeyColumn)], relstore.Str(c.Name))
			for _, col := range spec.Columns {
				v, err := cols[col.As].Apply(r, rows.Schema)
				if err != nil {
					return nil, err
				}
				if !v.IsNull() && v.Kind() != col.Kind {
					v, err = relstore.Coerce(v, col.Kind)
					if err != nil {
						return nil, err
					}
				}
				nr = append(nr, v)
			}
			data = append(data, nr)
		}
	}
	out := &relstore.Rows{Schema: outSchema, Data: data}
	return relstore.SortBy(out, ContributorColumn, EntityKeyColumn)
}

// EmitSQLPlans renders the per-contributor SQL a compiled study represents,
// for analyst inspection, keyed by contributor name.
func (c *Compiled) EmitSQLPlans() (map[string]string, error) {
	out := make(map[string]string, len(c.EntityBinds))
	var names []string
	for n := range c.EntityBinds {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var domains []*classifier.Bound
		for _, col := range c.Spec.Columns {
			domains = append(domains, c.ColumnBinds[n][col.As])
		}
		sql, err := classifier.EmitSQL(c.EntityBinds[n], domains)
		if err != nil {
			return nil, err
		}
		out[n] = sql
	}
	return out, nil
}
