package etl

import (
	"fmt"
	"testing"
	"testing/quick"

	"guava/internal/classifier"
	"guava/internal/gtree"
	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/ui"
)

// propUIForm is the property tests' form definition.
func propUIForm() *ui.Form {
	return &ui.Form{
		Name: "Procedure", KeyColumn: "ProcedureID",
		Controls: []*ui.Control{
			{Name: "PacksPerDay", Kind: ui.TextBox, Question: "Packs per day", DataType: relstore.KindFloat},
			{Name: "Hypoxia", Kind: ui.CheckBox, Question: "Hypoxia?"},
			{Name: "SurgeryPerformed", Kind: ui.CheckBox, Question: "Surgery?"},
		},
	}
}

func propDerive(name string, f *ui.Form) (*gtree.Tree, error) {
	return gtree.Derive(name, 1, f)
}

// TestHypothesis3Property is the quick-check form of Hypothesis #3: for
// random threshold classifiers, random entity filters, and random data, the
// compiled three-stage ETL workflow and direct rule evaluation agree —
// across two different physical pattern stacks.
func TestHypothesis3Property(t *testing.T) {
	stacks := []*patterns.Stack{
		patterns.NewStack(patterns.Naive{}, &patterns.Audit{}),
		patterns.NewStack(patterns.Generic{}, &patterns.Encode{}),
	}
	f := func(records []uint8, packs []int8, t1, t2 int8, surgeryOnly bool, pickStack uint8) bool {
		spec := propStudySpec(records, packs, t1, t2, surgeryOnly, stacks[int(pickStack)%len(stacks)])
		if spec == nil {
			return false
		}
		compiled, err := Compile(spec)
		if err != nil {
			return false
		}
		viaETL, err := compiled.Run()
		if err != nil {
			return false
		}
		direct, err := DirectEval(spec)
		if err != nil {
			return false
		}
		return viaETL.EqualUnordered(direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// propStudySpec builds a single-contributor study over random data with a
// random threshold classifier and a random entity filter — the generator
// shared by the Hypothesis #3 property and the fault-injection properties.
func propStudySpec(records []uint8, packs []int8, t1, t2 int8, surgeryOnly bool, stack *patterns.Stack) *StudySpec {
	// Normalize thresholds to an increasing pair.
	lo, hi := int64(t1), int64(t2)
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo == hi {
		hi++
	}
	contrib := contribPropFixture(records, packs, stack)
	if contrib == nil {
		return nil
	}
	entitySrc := "Procedure <- Procedure"
	if surgeryOnly {
		entitySrc = "Procedure <- Procedure AND SurgeryPerformed = TRUE"
	}
	entity, err := classifier.ParseEntity("e", "", "Procedure", entitySrc)
	if err != nil {
		return nil
	}
	habits, err := classifier.Parse("h", "", classifier.Target{
		Entity: "Procedure", Attribute: "Smoking", Domain: "D",
		Kind: relstore.KindString, Elements: []string{"Low", "Mid", "High"},
	}, fmt.Sprintf("Low <- PacksPerDay < %d\nMid <- %d <= PacksPerDay < %d\nHigh <- PacksPerDay >= %d", lo, lo, hi, hi))
	if err != nil {
		return nil
	}
	contrib.Entity = entity
	contrib.Classifiers = map[string]*classifier.Classifier{"Smoking_D": habits}
	return &StudySpec{
		Name:         "prop",
		Columns:      []ColumnSpec{{As: "Smoking_D", Attribute: "Smoking", Domain: "D", Kind: relstore.KindString}},
		Contributors: []*ContributorPlan{contrib},
	}
}

// contribPropFixture builds a contributor with the given random data.
func contribPropFixture(records []uint8, packs []int8, stack *patterns.Stack) *ContributorPlan {
	c := contribFixtureRaw("prop", stack)
	if c == nil {
		return nil
	}
	seen := map[uint8]bool{}
	for i, k := range records {
		if seen[k] {
			continue
		}
		seen[k] = true
		var p relstore.Value
		if i < len(packs) && packs[i] >= 0 {
			p = relstore.Float(float64(packs[i]))
		} else {
			p = relstore.Null()
		}
		row := map[string]relstore.Value{
			"ProcedureID":      relstore.Int(int64(k)),
			"PacksPerDay":      p,
			"Hypoxia":          relstore.Bool(i%2 == 0),
			"SurgeryPerformed": relstore.Bool(i%3 == 0),
		}
		if err := stack.WriteValues(c.DB, c.Form, row); err != nil {
			return nil
		}
	}
	return c
}

// contribFixtureRaw builds the form/tree/db scaffolding without data; it is
// the non-testing.T variant of contribFixture for property tests.
func contribFixtureRaw(name string, stack *patterns.Stack) *ContributorPlan {
	f := propUIForm()
	if err := f.Validate(); err != nil {
		return nil
	}
	tree, err := propDerive(name, f)
	if err != nil {
		return nil
	}
	info, err := patterns.FromUIForm(f)
	if err != nil {
		return nil
	}
	db := relstore.NewDB(name)
	if err := stack.Install(db, info); err != nil {
		return nil
	}
	return &ContributorPlan{Name: name, DB: db, Tree: tree, Stack: stack, Form: info}
}
