package etl_test

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"guava/internal/etl"
	"guava/internal/etl/faulty"
	"guava/internal/relstore"
	"guava/internal/workload"
)

// TestDeltaCrashResume simulates a process dying mid-delta-refresh — either
// before a contributor's warehouse patch lands (CrashBeforeWork) or after
// the patch but before the cursor advances (CrashAfterWork) — and asserts
// that resuming from the persisted cursor file converges to the same
// warehouse and cursors as a run that was never interrupted. Stats are
// deliberately not compared: an idempotent re-apply legitimately reports
// rows Unchanged that the uninterrupted run reported Added or Updated.
func TestDeltaCrashResume(t *testing.T) {
	const (
		seed      = 11
		n         = 30
		batchSeed = 99
		batchSize = 15
	)
	cases := []struct {
		name    string
		after   bool // CrashAfterWork instead of CrashBeforeWork
		crashAt int  // 1-based contributor apply on which to crash
	}{
		// Dying before the second contributor's patch leaves the first
		// contributor applied with its cursor advanced only in memory.
		{name: "before-second-apply", after: false, crashAt: 2},
		// Dying right after the first patch leaves warehouse writes with no
		// cursor record at all — resume must re-apply idempotently.
		{name: "after-first-apply", after: true, crashAt: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()

			// The uninterrupted run this scenario must converge to.
			base, err := buildEquivUniverse(seed, n)
			if err != nil {
				t.Fatal(err)
			}
			baseRef := base.studies[0]
			baseWH := relstore.NewDB("warehouse_base")
			if _, err := baseRef.RefreshContext(ctx, baseWH, etl.RunPolicy{}); err != nil {
				t.Fatal(err)
			}
			baseCur := etl.NewDeltaCursors()
			if err := baseRef.SeedDeltaCursors(baseCur); err != nil {
				t.Fatal(err)
			}
			batch := workload.RandomBatch(base.contribs, batchSeed, batchSize)
			if err := workload.Apply(base.contribs, batch); err != nil {
				t.Fatal(err)
			}
			if _, err := baseRef.RefreshDelta(ctx, baseWH, etl.DeltaOptions{Cursors: baseCur}); err != nil {
				t.Fatal(err)
			}

			// The crashing universe: identical build, same batch.
			crash, err := buildEquivUniverse(seed, n)
			if err != nil {
				t.Fatal(err)
			}
			ref := crash.studies[0]
			wh := relstore.NewDB("warehouse_crash")
			if _, err := ref.RefreshContext(ctx, wh, etl.RunPolicy{}); err != nil {
				t.Fatal(err)
			}
			cursors := etl.NewDeltaCursors()
			if err := ref.SeedDeltaCursors(cursors); err != nil {
				t.Fatal(err)
			}
			cursorFile := filepath.Join(t.TempDir(), "cursors.json")
			if err := cursors.Save(cursorFile); err != nil {
				t.Fatal(err)
			}
			if err := workload.Apply(crash.contribs, batch); err != nil {
				t.Fatal(err)
			}

			chaos := &faulty.Chaos{CrashBeforeWork: !tc.after, CrashAfterWork: tc.after}
			applies := 0
			hook := func(string) error {
				applies++
				if applies == tc.crashAt {
					return chaos.Run(ctx, nil)
				}
				return nil
			}
			opts := etl.DeltaOptions{Cursors: cursors}
			if tc.after {
				opts.Hooks.AfterApply = hook
			} else {
				opts.Hooks.BeforeApply = hook
			}
			if _, err := ref.RefreshDelta(ctx, wh, opts); !errors.Is(err, faulty.ErrCrashed) {
				t.Fatalf("crash run error = %v, want ErrCrashed", err)
			}

			// "Resume": the in-memory cursors died with the process, so the
			// next run loads the last durably saved ones and replays —
			// re-applying any already-patched contributor idempotently.
			resumed, err := etl.LoadDeltaCursors(cursorFile)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ref.RefreshDelta(ctx, wh, etl.DeltaOptions{Cursors: resumed}); err != nil {
				t.Fatalf("resume refresh: %v", err)
			}

			table := ref.Output.Table
			got, err := canonicalBytes(wh, table)
			if err != nil {
				t.Fatal(err)
			}
			want, err := canonicalBytes(baseWH, table)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("crash+resume warehouse diverged from uninterrupted run:\n--- resumed ---\n%s\n--- base ---\n%s", got, want)
			}
			if g, w := resumed.Snapshot(), baseCur.Snapshot(); !reflect.DeepEqual(g, w) {
				t.Errorf("resumed cursors = %v, want %v", g, w)
			}
		})
	}
}
