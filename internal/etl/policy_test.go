package etl

import (
	"context"
	"testing"
	"time"
)

// TestPolicyDelaySchedule: the backoff schedule is deterministic —
// exponential in the attempt number, capped by MaxBackoff, and shaped by an
// injectable jitter.
func TestPolicyDelaySchedule(t *testing.T) {
	p := RunPolicy{Backoff: 10 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{
		1: 10 * time.Millisecond,
		2: 20 * time.Millisecond,
		3: 40 * time.Millisecond,
		4: 80 * time.Millisecond,
	} {
		if got := p.delay(attempt); got != want {
			t.Errorf("delay(%d) = %v, want %v", attempt, got, want)
		}
	}
	capped := RunPolicy{Backoff: 10 * time.Millisecond, MaxBackoff: 25 * time.Millisecond}
	if got := capped.delay(3); got != 25*time.Millisecond {
		t.Errorf("capped delay(3) = %v, want 25ms", got)
	}
	tripled := RunPolicy{Backoff: 10 * time.Millisecond, BackoffFactor: 3}
	if got := tripled.delay(2); got != 30*time.Millisecond {
		t.Errorf("factor-3 delay(2) = %v, want 30ms", got)
	}
	jittered := RunPolicy{
		Backoff: 10 * time.Millisecond,
		Jitter:  func(attempt int, d time.Duration) time.Duration { return d + time.Duration(attempt)*time.Millisecond },
	}
	if got := jittered.delay(2); got != 22*time.Millisecond {
		t.Errorf("jittered delay(2) = %v, want 22ms", got)
	}
	if got := (RunPolicy{}).delay(5); got != 0 {
		t.Errorf("zero-backoff delay = %v", got)
	}
}

// TestExecuteRetrySleeps: Execute walks the backoff schedule through the
// injected Sleep hook — no real time passes, and the recorded delays match
// the deterministic schedule.
func TestExecuteRetrySleeps(t *testing.T) {
	ctx := NewContext(nil)
	var slept []time.Duration
	policy := RunPolicy{
		MaxAttempts: 4,
		Backoff:     10 * time.Millisecond,
		MaxBackoff:  25 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	w := &Workflow{Name: "retry"}
	w.Add("bad", failingComponent{})
	rep, err := w.Execute(context.Background(), ctx, policy, 1)
	if err == nil {
		t.Fatal("permanently failing step must error")
	}
	res := rep.Step("bad")
	if res.Attempts != 4 || res.Status != StepFailed {
		t.Fatalf("attempts = %d status = %v", res.Attempts, res.Status)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept = %v, want %v", slept, want)
		}
	}
}

// TestExecuteRetryableFilter: a policy that declares errors non-retryable
// stops after one attempt even with retries budgeted.
func TestExecuteRetryableFilter(t *testing.T) {
	ctx := NewContext(nil)
	policy := RunPolicy{
		MaxAttempts: 5,
		Retryable:   func(error) bool { return false },
	}
	w := &Workflow{Name: "no-retry"}
	w.Add("bad", failingComponent{})
	rep, err := w.Execute(context.Background(), ctx, policy, 1)
	if err == nil {
		t.Fatal("want error")
	}
	if res := rep.Step("bad"); res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", res.Attempts)
	}
}

// TestExecuteSleepCancellation: cancellation during a retry backoff stops
// the retry loop.
func TestExecuteSleepCancellation(t *testing.T) {
	env := NewContext(nil)
	cctx, cancel := context.WithCancel(context.Background())
	policy := RunPolicy{
		MaxAttempts: 10,
		Backoff:     time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // cancel while "asleep" before the second attempt
			return ctx.Err()
		},
	}
	w := &Workflow{Name: "cancel-in-backoff"}
	w.Add("bad", failingComponent{})
	rep, err := w.Execute(cctx, env, policy, 1)
	if err == nil {
		t.Fatal("want error")
	}
	if res := rep.Step("bad"); res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (backoff canceled)", res.Attempts)
	}
	if rep.Err == nil {
		t.Fatal("report must record the failure")
	}
}
