package etl

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"guava/internal/obs"
	"guava/internal/relstore"
)

// This file implements row-level quarantine: a dead-letter path for
// individual rows that fail extraction or classification. Without it one
// poison row — a NULL key, a value the classifier CASE cannot derive —
// fails its whole step and, through taint propagation, the contributor's
// entire chain. With a quarantine budget set on the RunPolicy, the bad row
// is diverted into the dead-letter relation with full provenance
// (contributor, step, rule, error, the offending row) and the remaining
// rows flow on; when the budget is exceeded the step degrades back to
// failure so systemic corruption is never silently swallowed.

// ErrQuarantineBudget is returned (wrapped) by a step when it quarantines
// more rows than RunPolicy.MaxQuarantinedRows allows.
var ErrQuarantineBudget = errors.New("etl: quarantine budget exceeded")

// QuarantineEntry is one dead-lettered row with its provenance.
type QuarantineEntry struct {
	// Workflow is the run the row was quarantined in.
	Workflow string
	// Step is the workflow step that rejected the row.
	Step string
	// Contributor is parsed from the step ID's "<stage>/<contributor>"
	// convention used by compiled studies; empty when the ID has no stage
	// prefix.
	Contributor string
	// Rule names the evaluation that failed: "extract", "where",
	// "derive", "require <col>", or — for source-side misses — the
	// source rule id (e.g. "NoteReport/HISTORY/SmokeStatus").
	Rule string
	// Err is the row-level error message.
	Err string
	// RowKey is the display form of the row's key value, when known.
	RowKey string
	// RowData renders the full offending row as "col=value, …"; empty for
	// source-side misses where no row was reconstructed.
	RowData string
	// SourceKind classifies the provenance locator: "db-row" for rows
	// diverted from relational evaluation, "report-span" for free-text
	// extraction misses. omitempty keeps pre-provenance checkpoint
	// fixtures byte-stable.
	SourceKind string `json:",omitempty"`
	// Locator pins the diverted input inside its source — "db.table" for
	// relational rows, "report <id> bytes <a>-<b>" for text spans — so
	// text-span and DB-row provenance render uniformly.
	Locator string `json:",omitempty"`
}

// quarantineSchema is the dead-letter relation's schema.
var quarantineSchema = relstore.MustSchema(
	relstore.Column{Name: "Workflow", Type: relstore.KindString, NotNull: true},
	relstore.Column{Name: "Step", Type: relstore.KindString, NotNull: true},
	relstore.Column{Name: "Contributor", Type: relstore.KindString},
	relstore.Column{Name: "Rule", Type: relstore.KindString},
	relstore.Column{Name: "Error", Type: relstore.KindString, NotNull: true},
	relstore.Column{Name: "RowKey", Type: relstore.KindString},
	relstore.Column{Name: "RowData", Type: relstore.KindString},
	relstore.Column{Name: "SourceKind", Type: relstore.KindString},
	relstore.Column{Name: "Locator", Type: relstore.KindString},
)

// QuarantineSchema returns the schema of the dead-letter relation produced
// by RunReport.Quarantine.
func QuarantineSchema() *relstore.Schema { return quarantineSchema }

// quarantine collects dead-lettered rows for one execution, enforcing the
// policy budget. Safe for concurrent use: parallel steps quarantine
// independently.
type quarantine struct {
	workflow string
	budget   int

	mu      sync.Mutex
	entries []QuarantineEntry
	perStep map[string]int
}

func newQuarantine(workflow string, budget int) *quarantine {
	return &quarantine{workflow: workflow, budget: budget, perStep: make(map[string]int)}
}

// sourceRef is the structured source locator a quarantined row carries:
// what kind of source the input came from and where inside it.
type sourceRef struct {
	kind    string // "db-row" or "report-span"
	locator string // "db.table" or "report <id> bytes <a>-<b>"
}

// dbRowRef locates a relational source row.
func dbRowRef(db, table string) sourceRef {
	return sourceRef{kind: "db-row", locator: db + "." + table}
}

// add dead-letters one row. It returns a budget error — which the caller
// must propagate as the step's failure — once the run-wide budget is spent;
// the entry that overflowed is not recorded.
func (q *quarantine) add(ctx context.Context, rule string, cause error, rowKey, rowData string, src sourceRef) error {
	step := stepIDFrom(ctx)
	contributor := ""
	if _, name, ok := strings.Cut(step, "/"); ok {
		contributor = name
	}
	ent := QuarantineEntry{
		Workflow:    q.workflow,
		Step:        step,
		Contributor: contributor,
		Rule:        rule,
		Err:         cause.Error(),
		RowKey:      rowKey,
		RowData:     rowData,
		SourceKind:  src.kind,
		Locator:     src.locator,
	}
	q.mu.Lock()
	if len(q.entries) >= q.budget {
		q.mu.Unlock()
		obs.MetricsFrom(ctx).Counter("quarantine.budget_exceeded").Inc()
		return fmt.Errorf("%w (budget %d, step %s: %v)", ErrQuarantineBudget, q.budget, step, cause)
	}
	q.entries = append(q.entries, ent)
	q.perStep[step]++
	q.mu.Unlock()
	obs.MetricsFrom(ctx).Counter("quarantine.rows").Inc()
	return nil
}

// restore re-admits entries captured in a checkpoint snapshot, so a resumed
// run's dead-letter relation equals an uninterrupted run's. Restored rows
// count against the budget like fresh ones.
func (q *quarantine) restore(ents []QuarantineEntry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, e := range ents {
		q.entries = append(q.entries, e)
		q.perStep[e.Step]++
	}
}

// resetStep discards a step's entries. runStep calls it before every
// attempt so a retried step does not dead-letter the same rows twice.
func (q *quarantine) resetStep(step string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.perStep[step] == 0 {
		return
	}
	kept := q.entries[:0]
	for _, e := range q.entries {
		if e.Step != step {
			kept = append(kept, e)
		}
	}
	q.entries = kept
	delete(q.perStep, step)
}

// len reports the number of quarantined rows.
func (q *quarantine) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}

// stepCount reports how many rows one step quarantined.
func (q *quarantine) stepCount(step string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.perStep[step]
}

// forStep returns the entries one step quarantined, in insertion order.
func (q *quarantine) forStep(step string) []QuarantineEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []QuarantineEntry
	for _, e := range q.entries {
		if e.Step == step {
			out = append(out, e)
		}
	}
	return out
}

// snapshot returns all entries sorted deterministically (by step, key,
// data, rule), independent of scheduling order.
func (q *quarantine) snapshot() []QuarantineEntry {
	q.mu.Lock()
	out := make([]QuarantineEntry, len(q.entries))
	copy(out, q.entries)
	q.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		if a.RowKey != b.RowKey {
			return a.RowKey < b.RowKey
		}
		if a.RowData != b.RowData {
			return a.RowData < b.RowData
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Locator < b.Locator
	})
	return out
}

// rows renders the entries as the dead-letter relation.
func (q *quarantine) rows() *relstore.Rows {
	ents := q.snapshot()
	out := &relstore.Rows{Schema: quarantineSchema, Data: make([]relstore.Row, len(ents))}
	for i, e := range ents {
		out.Data[i] = relstore.Row{
			relstore.Str(e.Workflow), relstore.Str(e.Step), relstore.Str(e.Contributor),
			relstore.Str(e.Rule), relstore.Str(e.Err), relstore.Str(e.RowKey), relstore.Str(e.RowData),
			relstore.Str(e.SourceKind), relstore.Str(e.Locator),
		}
	}
	return out
}

// renderRow formats a row as "col=value, …" for the dead-letter relation.
func renderRow(row relstore.Row, schema *relstore.Schema) string {
	parts := make([]string, 0, len(row))
	for i, v := range row {
		name := fmt.Sprintf("c%d", i)
		if i < len(schema.Columns) {
			name = schema.Columns[i].Name
		}
		parts = append(parts, name+"="+v.String())
	}
	return strings.Join(parts, ", ")
}

// quarantineKey/stepKey thread the active quarantine and the current step ID
// through the context, so components reach the dead-letter path without any
// signature change.
type quarantineKey struct{}
type stepKey struct{}

func withQuarantine(ctx context.Context, q *quarantine) context.Context {
	return context.WithValue(ctx, quarantineKey{}, q)
}

func quarantineFrom(ctx context.Context) *quarantine {
	q, _ := ctx.Value(quarantineKey{}).(*quarantine)
	return q
}

func withStepID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, stepKey{}, id)
}

func stepIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(stepKey{}).(string)
	return id
}
