package etl_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"guava/internal/etl"
	"guava/internal/etl/faulty"
	"guava/internal/obs"
	"guava/internal/relstore"
)

// compileFixture compiles a fresh copy of the two-contributor study.
func compileFixture(t *testing.T) *etl.Compiled {
	t.Helper()
	compiled, err := etl.Compile(etl.StudyFixtureForTest(t))
	if err != nil {
		t.Fatal(err)
	}
	return compiled
}

// TestCheckpointFingerprintStability: the fingerprint is a pure function of
// the compiled plan — identical across compiles, different for a different
// plan — and is captured before fault injectors wrap components.
func TestCheckpointFingerprintStability(t *testing.T) {
	a := compileFixture(t)
	b := compileFixture(t)
	if a.Fingerprint() == "" {
		t.Fatal("empty fingerprint")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("recompiling the same study changed the fingerprint: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	pre := b.Fingerprint()
	faulty.Wrap(b.Workflow, "classify/clinicB", func(wrapped etl.Component) *faulty.Chaos {
		return &faulty.Chaos{Wrapped: wrapped, CrashAfterWork: true}
	})
	if b.Fingerprint() != pre {
		t.Fatal("wrapping a component changed the compiled fingerprint")
	}
	if b.Workflow.Fingerprint() == pre {
		t.Fatal("workflow fingerprint ignored the component definition")
	}
}

// TestMemCheckpointerRoundTrip exercises the in-memory store directly.
func TestMemCheckpointerRoundTrip(t *testing.T) {
	store := etl.NewMemCheckpointer()
	snap := &etl.Snapshot{Step: "select/x"}
	if err := store.Save("fp", "select/x", snap); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load("fp", "select/x")
	if err != nil || got != snap {
		t.Fatalf("Load = (%v, %v), want the saved snapshot", got, err)
	}
	if got, err := store.Load("fp", "other"); got != nil || err != nil {
		t.Fatalf("miss = (%v, %v), want (nil, nil)", got, err)
	}
	if store.Len("fp") != 1 {
		t.Fatalf("Len = %d, want 1", store.Len("fp"))
	}
	if err := store.Clear("fp"); err != nil {
		t.Fatal(err)
	}
	if got, _ := store.Load("fp", "select/x"); got != nil {
		t.Fatal("snapshot survived Clear")
	}
}

// TestFSCheckpointerRoundTrip: snapshots with slashed step IDs, typed rows
// (NULL, max int64), and quarantine entries survive the disk format; Steps
// lists them and Clear removes them.
func TestFSCheckpointerRoundTrip(t *testing.T) {
	store := etl.NewFSCheckpointer(t.TempDir())
	schema := relstore.MustSchema(
		relstore.Column{Name: "K", Type: relstore.KindInt, NotNull: true},
		relstore.Column{Name: "S", Type: relstore.KindString},
	)
	snap := &etl.Snapshot{
		Step: "classify/clinicA",
		Tables: []etl.TableSnapshot{{
			Ref: etl.TableRef{DB: "tmp2_clinicA", Table: "Procedure_classified"},
			Rows: &relstore.Rows{Schema: schema, Data: []relstore.Row{
				{relstore.Int(9223372036854775807), relstore.Null()},
				{relstore.Int(-1), relstore.Str("a,\"b\"\nc")},
			}},
		}},
		Quarantined: []etl.QuarantineEntry{{
			Workflow: "exsmoker", Step: "classify/clinicA", Contributor: "clinicA",
			Rule: "require EntityKey", Err: "NULL in required column EntityKey",
			RowKey: "NULL", RowData: "ProcedureID=NULL",
		}},
	}
	if err := store.Save("fp1", "classify/clinicA", snap); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load("fp1", "classify/clinicA")
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != snap.Step || len(got.Tables) != 1 || len(got.Quarantined) != 1 {
		t.Fatalf("snapshot shape changed: %+v", got)
	}
	if got.Quarantined[0] != snap.Quarantined[0] {
		t.Fatalf("quarantine entry round trip: %+v", got.Quarantined[0])
	}
	gt, st := got.Tables[0], snap.Tables[0]
	if gt.Ref != st.Ref || !gt.Rows.Schema.Equal(st.Rows.Schema) || len(gt.Rows.Data) != 2 {
		t.Fatalf("table round trip: %+v", gt)
	}
	for i := range st.Rows.Data {
		if !gt.Rows.Data[i].Equal(st.Rows.Data[i]) {
			t.Fatalf("row %d: %v want %v", i, gt.Rows.Data[i], st.Rows.Data[i])
		}
	}
	steps, err := store.Steps("fp1")
	if err != nil || len(steps) != 1 || steps[0] != "classify/clinicA" {
		t.Fatalf("Steps = (%v, %v)", steps, err)
	}
	if got, err := store.Load("fp1", "other/step"); got != nil || err != nil {
		t.Fatalf("miss = (%v, %v), want (nil, nil)", got, err)
	}
	if err := store.Clear("fp1"); err != nil {
		t.Fatal(err)
	}
	if got, _ := store.Load("fp1", "classify/clinicA"); got != nil {
		t.Fatal("snapshot survived Clear")
	}
}

// TestCheckpointResumeAfterCrash is the headline acceptance scenario: a
// study run killed mid-flight by an injected crash resumes from its
// filesystem checkpoints, re-executes only the steps that had not completed,
// and produces output byte-identical to an uninterrupted run.
func TestCheckpointResumeAfterCrash(t *testing.T) {
	// The uninterrupted reference run (no checkpoints involved).
	want, _, err := compileFixture(t).RunResilient(context.Background(), etl.RunPolicy{}, 2)
	if err != nil {
		t.Fatal(err)
	}

	store := etl.NewFSCheckpointer(t.TempDir())

	// Run 1: crash mid-step — classify/clinicB writes its table, then the
	// "process" dies before the engine records success.
	crashed := compileFixture(t)
	fp := crashed.Fingerprint()
	faulty.Wrap(crashed.Workflow, "classify/clinicB", func(wrapped etl.Component) *faulty.Chaos {
		return &faulty.Chaos{Wrapped: wrapped, CrashAfterWork: true}
	})
	_, _, err = crashed.RunResilient(context.Background(), etl.RunPolicy{Checkpoint: store}, 2)
	if !errors.Is(err, faulty.ErrCrashed) {
		t.Fatalf("crashed run returned %v, want ErrCrashed", err)
	}
	durable, err := store.Steps(fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(durable) == 0 {
		t.Fatal("crash left no durable checkpoints")
	}
	for _, id := range durable {
		if id == "classify/clinicB" {
			t.Fatal("the crashed step must not have been checkpointed")
		}
	}

	// Run 2: resume — same plan, same store, no crash.
	resumed := compileFixture(t)
	if resumed.Fingerprint() != fp {
		t.Fatalf("resume fingerprint %s != crashed fingerprint %s", resumed.Fingerprint(), fp)
	}
	rows, report, err := resumed.RunResilient(context.Background(), etl.RunPolicy{Checkpoint: store}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("resumed run not OK:\n%s", report.Render())
	}
	if rows.Format() != want.Format() {
		t.Fatalf("resumed output differs from uninterrupted run:\ngot:\n%s\nwant:\n%s", rows.Format(), want.Format())
	}

	// Work-saved accounting: exactly the steps durable at crash time were
	// restored; everything else — the crashed step and whatever had not
	// finished — re-executed.
	isDurable := map[string]bool{}
	for _, id := range durable {
		isDurable[id] = true
	}
	for _, s := range report.Steps {
		switch {
		case isDurable[s.ID] && s.Status != etl.StepRestored:
			t.Errorf("step %s was checkpointed but has status %s", s.ID, s.Status)
		case !isDurable[s.ID] && s.Status != etl.StepOK:
			t.Errorf("step %s was not checkpointed but has status %s (want ok)", s.ID, s.Status)
		case s.Status == etl.StepRestored && s.Attempts != 0:
			t.Errorf("restored step %s has %d attempts — it re-ran", s.ID, s.Attempts)
		}
	}
	if got := len(report.Restored()); got != len(durable) {
		t.Errorf("restored %d steps, want %d", got, len(durable))
	}
}

// TestCheckpointFullyResumedRun: re-running an already-complete run restores
// every step (zero re-execution) and still yields the identical output.
func TestCheckpointFullyResumedRun(t *testing.T) {
	store := etl.NewMemCheckpointer()
	first := compileFixture(t)
	want, _, err := first.RunResilient(context.Background(), etl.RunPolicy{Checkpoint: store}, 2)
	if err != nil {
		t.Fatal(err)
	}
	again := compileFixture(t)
	rows, report, err := again.RunResilient(context.Background(), etl.RunPolicy{Checkpoint: store}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(report.Restored()); got != len(report.Steps) {
		t.Fatalf("restored %d of %d steps:\n%s", got, len(report.Steps), report.Render())
	}
	if rows.Format() != want.Format() {
		t.Fatal("fully-resumed output differs from the original run")
	}
}

// TestTornCheckpointDetected: a truncated and a bit-flipped checkpoint fail
// their checksum on load, are reported as corrupt (counter + warning span),
// and the affected steps re-run from their restored inputs — ending in the
// same output as an undamaged resume.
func TestTornCheckpointDetected(t *testing.T) {
	dir := t.TempDir()
	store := etl.NewFSCheckpointer(dir)
	first := compileFixture(t)
	fp := first.Fingerprint()
	want, _, err := first.RunResilient(context.Background(), etl.RunPolicy{Checkpoint: store}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ckptPath := func(step string) string {
		return filepath.Join(dir, fp, url.PathEscape(step)+".ckpt")
	}
	if err := faulty.TearFile(ckptPath("select/clinicA"), faulty.TearTruncate); err != nil {
		t.Fatal(err)
	}
	if err := faulty.TearFile(ckptPath("classify/clinicB"), faulty.TearFlip); err != nil {
		t.Fatal(err)
	}
	// Sanity: the store itself reports the damage as corruption.
	if _, err := store.Load(fp, "select/clinicA"); !errors.Is(err, etl.ErrCorruptCheckpoint) {
		t.Fatalf("torn load returned %v, want ErrCorruptCheckpoint", err)
	}

	o := obs.NewObserver()
	ctx := obs.WithObserver(context.Background(), o)
	rows, report, err := compileFixture(t).RunResilient(ctx, etl.RunPolicy{Checkpoint: store}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("run with torn checkpoints not OK:\n%s", report.Render())
	}
	for id, wantStatus := range map[string]etl.StepStatus{
		"select/clinicA":   etl.StepOK, // torn → re-ran
		"classify/clinicB": etl.StepOK, // bit-flipped → re-ran
		"extract/clinicA":  etl.StepRestored,
	} {
		if got := report.Step(id).Status; got != wantStatus {
			t.Errorf("step %s status = %s, want %s", id, got, wantStatus)
		}
	}
	if rows.Format() != want.Format() {
		t.Fatal("output after torn-checkpoint recovery differs")
	}
	if got := o.Metrics.Counter("ckpt.corrupt").Value(); got != 2 {
		t.Errorf("ckpt.corrupt = %d, want 2", got)
	}
	warned := false
	for _, s := range o.Tracer.Spans() {
		if s.Name() == "checkpoint corrupt" {
			warned = true
		}
	}
	if !warned {
		t.Error("no 'checkpoint corrupt' warning span recorded")
	}
}

// TestQuarantinePoisonRow is the second acceptance scenario: a poison row
// (NULL key planted in an extract output) lands in the dead-letter relation
// with full provenance while the rest of the study completes.
func TestQuarantinePoisonRow(t *testing.T) {
	compiled := compileFixture(t)
	faulty.Wrap(compiled.Workflow, "extract/clinicA", func(wrapped etl.Component) *faulty.Chaos {
		return &faulty.Chaos{Wrapped: wrapped, PoisonRows: 1, PoisonColumn: "ProcedureID"}
	})
	rows, report, err := compiled.RunResilient(context.Background(),
		etl.RunPolicy{MaxQuarantinedRows: 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("poisoned run not OK:\n%s", report.Render())
	}
	if report.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1:\n%s", report.Quarantined, report.Render())
	}
	if got := report.Step("select/clinicA").Quarantined; got != 1 {
		t.Fatalf("select/clinicA quarantined = %d, want 1", got)
	}
	ents := report.QuarantineEntries()
	if len(ents) != 1 {
		t.Fatalf("entries = %d, want 1", len(ents))
	}
	e := ents[0]
	if e.Workflow != "exsmoker" || e.Step != "select/clinicA" || e.Contributor != "clinicA" {
		t.Errorf("provenance = %+v", e)
	}
	if e.Rule != "require ProcedureID" || !strings.Contains(e.Err, "ProcedureID") {
		t.Errorf("rule/err = %q / %q", e.Rule, e.Err)
	}
	if !strings.Contains(e.RowData, "ProcedureID=NULL") {
		t.Errorf("RowData %q does not show the poisoned key", e.RowData)
	}
	// The healthy rows flowed on: the full fixture yields one study row per
	// surviving surgery record; the poisoned row is absent.
	clean, _, err := compileFixture(t).RunResilient(context.Background(), etl.RunPolicy{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != len(clean.Data)-1 {
		t.Errorf("rows = %d, want %d (clean minus the poisoned row)", len(rows.Data), len(clean.Data)-1)
	}
	// The dead-letter relation renders under its declared schema.
	q := report.Quarantine()
	if !q.Schema.Equal(etl.QuarantineSchema()) {
		t.Error("quarantine relation schema mismatch")
	}
}

// TestQuarantineBudgetExceeded: more poison than the budget allows degrades
// the step back to failure — systemic corruption is not silently swallowed.
func TestQuarantineBudgetExceeded(t *testing.T) {
	compiled := compileFixture(t)
	faulty.Wrap(compiled.Workflow, "extract/clinicA", func(wrapped etl.Component) *faulty.Chaos {
		return &faulty.Chaos{Wrapped: wrapped, PoisonRows: 2, PoisonColumn: "ProcedureID"}
	})
	_, report, err := compiled.RunResilient(context.Background(),
		etl.RunPolicy{MaxQuarantinedRows: 1, ContinueOnError: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := report.Step("select/clinicA")
	if res.Status != etl.StepFailed || !errors.Is(res.Err, etl.ErrQuarantineBudget) {
		t.Fatalf("select/clinicA = %s (%v), want failed with ErrQuarantineBudget", res.Status, res.Err)
	}
	// The other contributor still delivered (graceful degradation).
	if got := report.DegradedContributors; len(got) != 1 || got[0] != "clinicA" {
		t.Fatalf("degraded contributors = %v, want [clinicA]", got)
	}
}

// TestQuarantineDisabledPoisonFails: without a quarantine budget the
// historical semantics hold — the poison row fails its step.
func TestQuarantineDisabledPoisonFails(t *testing.T) {
	compiled := compileFixture(t)
	faulty.Wrap(compiled.Workflow, "extract/clinicA", func(wrapped etl.Component) *faulty.Chaos {
		return &faulty.Chaos{Wrapped: wrapped, PoisonRows: 1, PoisonColumn: "ProcedureID"}
	})
	_, report, err := compiled.RunResilient(context.Background(), etl.RunPolicy{ContinueOnError: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := report.Step("select/clinicA")
	if res.Status != etl.StepFailed || !strings.Contains(res.Err.Error(), "required column ProcedureID") {
		t.Fatalf("select/clinicA = %s (%v), want failure naming the required column", res.Status, res.Err)
	}
	if report.Quarantine() != nil {
		t.Error("quarantine relation exists without a budget")
	}
}

// TestCrashResumeEquivalence: resume(crash(run)) ≡ run on the study level —
// final rows, quarantine contents, and step statuses (restored counting as
// ok) all match an uninterrupted poisoned run.
func TestCrashResumeEquivalence(t *testing.T) {
	poison := func(c *etl.Compiled) {
		faulty.Wrap(c.Workflow, "extract/clinicA", func(wrapped etl.Component) *faulty.Chaos {
			return &faulty.Chaos{Wrapped: wrapped, PoisonRows: 1, PoisonColumn: "ProcedureID"}
		})
	}
	policy := func(store etl.Checkpointer) etl.RunPolicy {
		return etl.RunPolicy{MaxQuarantinedRows: 10, Checkpoint: store}
	}

	// The uninterrupted reference.
	ref := compileFixture(t)
	poison(ref)
	wantRows, wantReport, err := ref.RunResilient(context.Background(), policy(nil), 2)
	if err != nil {
		t.Fatal(err)
	}

	for _, crashAt := range []string{"extract/clinicB", "select/clinicA", "classify/clinicA", "load/union"} {
		for _, mode := range []string{"before", "after"} {
			t.Run(crashAt+"/"+mode, func(t *testing.T) {
				store := etl.NewMemCheckpointer()
				crashed := compileFixture(t)
				poison(crashed)
				faulty.Wrap(crashed.Workflow, crashAt, func(wrapped etl.Component) *faulty.Chaos {
					return &faulty.Chaos{Wrapped: wrapped,
						CrashBeforeWork: mode == "before", CrashAfterWork: mode == "after"}
				})
				_, _, err := crashed.RunResilient(context.Background(), policy(store), 2)
				if !errors.Is(err, faulty.ErrCrashed) {
					t.Fatalf("crashed run returned %v, want ErrCrashed", err)
				}

				resumed := compileFixture(t)
				poison(resumed)
				rows, report, err := resumed.RunResilient(context.Background(), policy(store), 2)
				if err != nil {
					t.Fatal(err)
				}
				if !report.OK() {
					t.Fatalf("resume not OK:\n%s", report.Render())
				}
				if rows.Format() != wantRows.Format() {
					t.Errorf("rows differ from uninterrupted run:\ngot:\n%s\nwant:\n%s", rows.Format(), wantRows.Format())
				}
				if got, want := report.Quarantine().Format(), wantReport.Quarantine().Format(); got != want {
					t.Errorf("quarantine differs:\ngot:\n%s\nwant:\n%s", got, want)
				}
				// Statuses are equivalent modulo restored ≡ ok.
				for _, s := range report.Steps {
					wantS := wantReport.Step(s.ID)
					norm := func(st etl.StepStatus) etl.StepStatus {
						if st == etl.StepRestored {
							return etl.StepOK
						}
						return st
					}
					if norm(s.Status) != norm(wantS.Status) {
						t.Errorf("step %s: %s vs reference %s", s.ID, s.Status, wantS.Status)
					}
				}
			})
		}
	}
}

// TestDeterministicDegradedOutput (regression): a degraded run's partial
// output and degraded-contributor list are byte-identical across scheduling
// orders and worker counts.
func TestDeterministicDegradedOutput(t *testing.T) {
	run := func(workers int) (*relstore.Rows, *etl.RunReport) {
		t.Helper()
		compiled := compileFixture(t)
		faulty.Wrap(compiled.Workflow, "extract/clinicA", func(wrapped etl.Component) *faulty.Chaos {
			return &faulty.Chaos{FailForever: true}
		})
		rows, report, err := compiled.RunResilient(context.Background(),
			etl.RunPolicy{ContinueOnError: true}, workers)
		if err != nil {
			t.Fatal(err)
		}
		return rows, report
	}
	baseRows, baseReport := run(1)
	for _, workers := range []int{2, 4, 8} {
		rows, report := run(workers)
		if rows.Format() != baseRows.Format() {
			t.Fatalf("workers=%d: degraded output differs:\ngot:\n%s\nwant:\n%s", workers, rows.Format(), baseRows.Format())
		}
		if strings.Join(report.DegradedContributors, ",") != strings.Join(baseReport.DegradedContributors, ",") {
			t.Fatalf("workers=%d: degraded contributors differ: %v vs %v",
				workers, report.DegradedContributors, baseReport.DegradedContributors)
		}
	}
}

// TestPolicyValidation: contradictory policies are rejected at Execute time
// with errors naming the field, and the same checks are reachable directly.
func TestPolicyValidation(t *testing.T) {
	cases := []struct {
		name   string
		policy etl.RunPolicy
		frag   string
	}{
		{"negative attempts", etl.RunPolicy{MaxAttempts: -1}, "MaxAttempts"},
		{"negative backoff", etl.RunPolicy{Backoff: -1}, "Backoff"},
		{"negative step timeout", etl.RunPolicy{StepTimeout: -1}, "StepTimeout"},
		{"step exceeds workflow", etl.RunPolicy{StepTimeout: 2e9, WorkflowTimeout: 1e9}, "exceeds WorkflowTimeout"},
		{"negative quarantine", etl.RunPolicy{MaxQuarantinedRows: -5}, "MaxQuarantinedRows"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.policy.Validate(); err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("Validate = %v, want error mentioning %q", err, tc.frag)
			}
			w := &etl.Workflow{Name: "v"}
			w.Add("s", &etl.Union{})
			if _, err := w.Execute(context.Background(), etl.NewContext(nil), tc.policy, 1); err == nil {
				t.Fatal("Execute accepted an invalid policy")
			}
		})
	}
	if err := (etl.RunPolicy{}).Validate(); err != nil {
		t.Fatalf("zero policy rejected: %v", err)
	}
	ok := etl.RunPolicy{MaxAttempts: 3, Backoff: 1e6, StepTimeout: 1e9, WorkflowTimeout: 2e9, MaxQuarantinedRows: 100}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
}

// TestCrashResumeProperty: resume(crash(run)) ≡ run over randomized DAGs —
// for many random DAG shapes, crash points, and crash modes, the resumed
// execution succeeds, restores exactly the steps that completed durably
// before the crash, re-runs only the rest, and every step ends up having
// done its work exactly once across the two runs (except the mid-step crash
// victim, whose torn work is deliberately redone). Run under -race this also
// proves the restore path is race-clean.
func TestCrashResumeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(6)
		deps := randomDeps(r, n)
		crashAt := r.Intn(n)
		midStep := r.Float64() < 0.5
		workers := 1 + r.Intn(4)
		key := fmt.Sprintf("dag-%d", trial)
		store := etl.NewMemCheckpointer()

		build := func(crash bool) (*etl.Workflow, *sync.Mutex, map[string]bool) {
			mu := &sync.Mutex{}
			ran := map[string]bool{}
			w := &etl.Workflow{Name: "ckpt-dag"}
			for i := range deps {
				var ds []string
				for _, d := range deps[i] {
					ds = append(ds, stepID(d))
				}
				var comp etl.Component = tracked{id: stepID(i), mu: mu, ran: ran}
				if crash && i == crashAt {
					comp = &faulty.Chaos{Wrapped: comp,
						CrashBeforeWork: !midStep, CrashAfterWork: midStep}
				}
				w.Add(stepID(i), comp, ds...)
			}
			return w, mu, ran
		}
		// The crash wrapper changes the workflow fingerprint, so both runs
		// pin CheckpointKey — exactly what Compiled.RunResilient does for
		// real studies.
		policy := etl.RunPolicy{Checkpoint: store, CheckpointKey: key}

		w1, mu1, ran1 := build(true)
		_, err := w1.Execute(context.Background(), etl.NewContext(nil), policy, workers)
		if !errors.Is(err, faulty.ErrCrashed) {
			t.Fatalf("trial %d: crashed run returned %v, want ErrCrashed", trial, err)
		}
		durable := store.Len(key)

		w2, mu2, ran2 := build(false)
		rep, err := w2.Execute(context.Background(), etl.NewContext(nil), policy, workers)
		if err != nil {
			t.Fatalf("trial %d: resume failed: %v", trial, err)
		}
		if !rep.OK() {
			t.Fatalf("trial %d: resume not OK:\n%s", trial, rep.Render())
		}
		mu1.Lock()
		mu2.Lock()
		restored := 0
		for _, s := range rep.Steps {
			switch s.Status {
			case etl.StepRestored:
				restored++
				if ran2[s.ID] {
					t.Fatalf("trial %d: restored step %s re-ran", trial, s.ID)
				}
			case etl.StepOK:
				if !ran2[s.ID] {
					t.Fatalf("trial %d: step %s reported ok without running", trial, s.ID)
				}
			default:
				t.Fatalf("trial %d: step %s ended %s", trial, s.ID, s.Status)
			}
		}
		if restored != durable {
			t.Fatalf("trial %d: restored %d steps but %d were durable at crash time", trial, restored, durable)
		}
		// Work conservation: every step ran in exactly one of the two runs,
		// except a mid-step crash victim (its torn first execution is redone).
		for _, s := range rep.Steps {
			both := ran1[s.ID] && ran2[s.ID]
			neither := !ran1[s.ID] && !ran2[s.ID]
			if neither {
				t.Fatalf("trial %d: step %s never did its work", trial, s.ID)
			}
			if both && !(midStep && s.ID == stepID(crashAt)) {
				t.Fatalf("trial %d: step %s did its work twice", trial, s.ID)
			}
		}
		mu2.Unlock()
		mu1.Unlock()
	}
}

// TestGoldenCheckpointFixture pins the on-disk checkpoint format: the
// committed fixture must load (backward compatibility), and re-encoding its
// snapshot must reproduce the committed bytes exactly (format stability).
func TestGoldenCheckpointFixture(t *testing.T) {
	store := etl.NewFSCheckpointer(filepath.Join("testdata", "ckpt"))
	snap, err := store.Load("golden", "classify/clinicA")
	if err != nil {
		t.Fatalf("golden fixture failed to load: %v", err)
	}
	if snap == nil {
		t.Fatal("golden fixture missing — regenerate with TestGoldenCheckpointFixture's writer (see comment)")
	}
	if snap.Step != "classify/clinicA" || len(snap.Tables) != 1 || len(snap.Quarantined) != 1 {
		t.Fatalf("golden snapshot shape: %+v", snap)
	}
	rows := snap.Tables[0].Rows
	if len(rows.Data) != 3 {
		t.Fatalf("golden rows = %d, want 3", len(rows.Data))
	}
	if !rows.Data[1][2].IsNull() {
		t.Error("golden NULL cell did not survive")
	}
	if got := rows.Data[2][0].AsInt(); got != 9223372036854775807 {
		t.Errorf("golden max-int64 = %d", got)
	}

	// Format stability: saving the identical snapshot into a scratch store
	// reproduces the committed file byte for byte.
	scratch := etl.NewFSCheckpointer(t.TempDir())
	if err := scratch.Save("golden", "classify/clinicA", snap); err != nil {
		t.Fatal(err)
	}
	name := url.PathEscape("classify/clinicA") + ".ckpt"
	want, err := os.ReadFile(filepath.Join("testdata", "ckpt", "golden", name))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(scratch.Dir, "golden", name))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("checkpoint encoding changed; if intentional, bump CheckpointVersion and regenerate the fixture\ngot:\n%s\nwant:\n%s", got, want)
	}
}
