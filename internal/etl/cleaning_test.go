package etl

import (
	"strings"
	"testing"

	"guava/internal/classifier"
	"guava/internal/relstore"
)

// TestCleaningClassifiers: DISCARD rules drop records before classification
// (Section 6 extension), identically under compiled-ETL and direct
// evaluation.
func TestCleaningClassifiers(t *testing.T) {
	spec := studyFixture(t)
	cleaner, err := classifier.ParseCleaner("Implausible packs",
		"data-entry errors: nobody smokes 6+ packs a day", "DISCARD <- PacksPerDay >= 6")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range spec.Contributors {
		c.Cleaners = []*classifier.Classifier{cleaner}
	}
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := compiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The fixture has clinicA record 3 with 7 packs/day — but it fails the
	// surgery filter anyway; add a cleaner that bites: discard packs >= 3.
	baseLen := rows.Len()

	spec2 := studyFixture(t)
	biting, err := classifier.ParseCleaner("Strict", "discard 3+ packs", "DISCARD <- PacksPerDay >= 3")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range spec2.Contributors {
		c.Cleaners = []*classifier.Classifier{biting}
	}
	compiled2, err := Compile(spec2)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := compiled2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows2.Len() != baseLen-1 {
		t.Fatalf("cleaner dropped %d rows, want 1 (got %d vs %d)", baseLen-rows2.Len(), rows2.Len(), baseLen)
	}
	for _, r := range rows2.Data {
		if r[1].Equal(strVal("clinicA")) && r[0].Equal(intVal(2)) {
			t.Error("clinicA record 2 (3 packs) should have been discarded")
		}
	}
	// Direct evaluation agrees.
	direct, err := DirectEval(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if !rows2.EqualUnordered(direct) {
		t.Error("cleaning: ETL and direct evaluation differ")
	}
}

func TestCleaningValidation(t *testing.T) {
	// Non-DISCARD values rejected at parse time.
	if _, err := classifier.ParseCleaner("bad", "", "KEEP <- PacksPerDay > 0"); err == nil {
		t.Error("non-DISCARD value must fail")
	}
	// A domain classifier cannot pose as a cleaner.
	spec := studyFixture(t)
	spec.Contributors[0].Cleaners = []*classifier.Classifier{
		spec.Contributors[0].Classifiers["Smoking_D3"],
	}
	if _, err := Compile(spec); err == nil {
		t.Error("domain classifier as cleaner must fail")
	}
	// A cleaner cannot fill a column.
	spec2 := studyFixture(t)
	cleaner, err := classifier.ParseCleaner("c", "", "DISCARD <- PacksPerDay > 0")
	if err != nil {
		t.Fatal(err)
	}
	spec2.Contributors[0].Classifiers["Smoking_D3"] = cleaner
	if _, err := Compile(spec2); err == nil {
		t.Error("cleaner as domain classifier must fail")
	}
	// A cleaner referencing unknown nodes fails at bind.
	spec3 := studyFixture(t)
	ghost, err := classifier.ParseCleaner("g", "", "DISCARD <- Ghost = 1")
	if err != nil {
		t.Fatal(err)
	}
	spec3.Contributors[0].Cleaners = []*classifier.Classifier{ghost}
	if _, err := Compile(spec3); err == nil {
		t.Error("unbindable cleaner must fail")
	}
	// Cleaner renders with its own header.
	if !strings.Contains(cleaner.String(), "Cleaning Classifier c") {
		t.Errorf("String = %q", cleaner.String())
	}
}

// small literal helpers for readability in this file.
func strVal(s string) relstore.Value { return relstore.Str(s) }
func intVal(i int64) relstore.Value  { return relstore.Int(i) }
