package etl

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"guava/internal/obs"
	"guava/internal/relstore"
)

// StepStatus classifies how one step of an execution ended.
type StepStatus int

const (
	// StepOK: the step ran to completion (possibly after retries).
	StepOK StepStatus = iota
	// StepFailed: every attempt errored (or the run was canceled mid-step).
	StepFailed
	// StepSkipped: the step never ran because an ancestor failed (or the
	// run aborted first).
	StepSkipped
	// StepDegraded: the step ran on partial inputs after upstream
	// failures — e.g. a Union loading only the surviving contributors.
	StepDegraded
	// StepRestored: the step did not run; its outputs were restored from a
	// checkpoint taken by an earlier execution of the same plan. Counts as
	// success — the tables are materialized exactly as a fresh run would
	// have left them.
	StepRestored
)

// String implements fmt.Stringer.
func (s StepStatus) String() string {
	switch s {
	case StepOK:
		return "ok"
	case StepFailed:
		return "failed"
	case StepSkipped:
		return "skipped"
	case StepDegraded:
		return "degraded"
	case StepRestored:
		return "restored"
	}
	return fmt.Sprintf("StepStatus(%d)", int(s))
}

// StepResult records one step's fate during an execution.
type StepResult struct {
	// ID is the step's workflow ID.
	ID string
	// Status is how the step ended.
	Status StepStatus
	// Attempts counts how many times the step ran (0 when skipped).
	Attempts int
	// Duration is the wall time spent across all attempts, including
	// retry backoff. It is measured on the monotonic clock and is always
	// zero — never a stray epsilon — for steps that never ran
	// (Attempts == 0), so "zero" uniformly means "absent".
	Duration time.Duration
	// QueueWait is how long the step sat ready in the scheduler's queue
	// before a worker picked it up (zero for steps resolved inline).
	QueueWait time.Duration
	// Span is the step's trace span when the run was observed (nil
	// otherwise). Skipped steps get an instant span so the trace still
	// names them.
	Span *obs.Span
	// Err is the step's final error (nil unless Status is StepFailed).
	Err error
	// SkippedBecause lists the failed or skipped ancestors that caused a
	// skip or degradation, sorted.
	SkippedBecause []string
	// DroppedInputs lists the tables a degraded step ran without.
	DroppedInputs []TableRef
	// Quarantined counts the rows this step diverted into the run's
	// dead-letter relation instead of failing on.
	Quarantined int
}

// RunReport is the structured outcome of one Execute call: per-step
// attempts, durations, errors, and skip/degrade causes, in topological
// order.
type RunReport struct {
	// Workflow names the executed workflow.
	Workflow string
	// Steps holds one result per step, in topological order.
	Steps []*StepResult
	// Err is the first step failure (or cancellation), nil when every
	// step succeeded. With ContinueOnError the execution itself still
	// returns nil while Err records what went wrong.
	Err error
	// DegradedContributors lists contributors whose compiled chain failed
	// or was skipped; filled by Compiled.RunResilient, empty for plain
	// workflow executions.
	DegradedContributors []string
	// Trace is the workflow's root span when the run was observed (nil
	// otherwise). Its tracer holds the full span tree; render it with
	// obs.RenderTree.
	Trace *obs.Span
	// Quarantined counts the rows the whole run dead-lettered (including
	// rows restored from checkpoints of a prior interrupted run).
	Quarantined int

	byID map[string]*StepResult
	q    *quarantine
}

// Step returns the result for a step ID, or nil.
func (r *RunReport) Step(id string) *StepResult { return r.byID[id] }

// ids collects step IDs matching a status, sorted.
func (r *RunReport) ids(status StepStatus) []string {
	var out []string
	for _, s := range r.Steps {
		if s.Status == status {
			out = append(out, s.ID)
		}
	}
	sort.Strings(out)
	return out
}

// Failed lists the IDs of failed steps, sorted.
func (r *RunReport) Failed() []string { return r.ids(StepFailed) }

// Skipped lists the IDs of skipped steps, sorted.
func (r *RunReport) Skipped() []string { return r.ids(StepSkipped) }

// Degraded lists the IDs of degraded steps, sorted.
func (r *RunReport) Degraded() []string { return r.ids(StepDegraded) }

// Restored lists the IDs of checkpoint-restored steps, sorted.
func (r *RunReport) Restored() []string { return r.ids(StepRestored) }

// OK reports whether every step completed normally — ran to success or was
// restored from a checkpoint.
func (r *RunReport) OK() bool {
	for _, s := range r.Steps {
		if s.Status != StepOK && s.Status != StepRestored {
			return false
		}
	}
	return true
}

// Quarantine returns the run's dead-letter relation: one row per
// quarantined input row with provenance (see QuarantineSchema), sorted
// deterministically. It is empty — not nil — when quarantine was enabled
// but nothing was diverted, and nil when the policy had no quarantine
// budget.
func (r *RunReport) Quarantine() *relstore.Rows {
	if r.q == nil {
		return nil
	}
	return r.q.rows()
}

// QuarantineEntries returns the structured dead-letter entries, sorted
// deterministically; nil when quarantine was disabled.
func (r *RunReport) QuarantineEntries() []QuarantineEntry {
	if r.q == nil {
		return nil
	}
	return r.q.snapshot()
}

// Render formats the report for CLI output.
func (r *RunReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "run report for workflow %s (%d steps)\n", r.Workflow, len(r.Steps))
	for _, s := range r.Steps {
		// A step that never ran has no meaningful duration; print "-"
		// rather than a misleading 0s.
		dur := "-"
		if s.Attempts > 0 {
			dur = s.Duration.Round(time.Microsecond).String()
		}
		fmt.Fprintf(&sb, "  %-9s %-24s attempts=%d  %s", s.Status, s.ID, s.Attempts, dur)
		if s.QueueWait > 0 {
			fmt.Fprintf(&sb, "  wait=%s", s.QueueWait.Round(time.Microsecond))
		}
		if s.Err != nil {
			fmt.Fprintf(&sb, "  err=%v", s.Err)
		}
		if len(s.SkippedBecause) > 0 {
			fmt.Fprintf(&sb, "  because=%s", strings.Join(s.SkippedBecause, ","))
		}
		if len(s.DroppedInputs) > 0 {
			parts := make([]string, len(s.DroppedInputs))
			for i, ref := range s.DroppedInputs {
				parts[i] = ref.String()
			}
			fmt.Fprintf(&sb, "  dropped=%s", strings.Join(parts, ","))
		}
		if s.Quarantined > 0 {
			fmt.Fprintf(&sb, "  quarantined=%d", s.Quarantined)
		}
		sb.WriteByte('\n')
	}
	if len(r.DegradedContributors) > 0 {
		fmt.Fprintf(&sb, "  degraded contributors: %s\n", strings.Join(r.DegradedContributors, ", "))
	}
	if r.Quarantined > 0 {
		fmt.Fprintf(&sb, "  quarantined rows: %d\n", r.Quarantined)
	}
	if r.Err != nil {
		fmt.Fprintf(&sb, "  first error: %v\n", r.Err)
	}
	return sb.String()
}
