package etl_test

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	"guava/internal/etl"
	"guava/internal/etl/faulty"
	"guava/internal/obs"
)

// TestDegradedRunTrace is the observability acceptance scenario: an
// observed degraded study run emits a span tree that names the dead
// contributor with every retry attempt, the skipped dependents with
// their causes, and the pruned union input.
func TestDegradedRunTrace(t *testing.T) {
	spec := etl.StudyFixtureForTest(t) // contributors clinicA, clinicB
	observer := obs.NewObserver()
	ctx := obs.WithObserver(context.Background(), observer)

	compiled, err := etl.CompileTraced(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if observer.Tracer.Find("compile "+spec.Name) == nil {
		t.Error("no compile span recorded")
	}
	if faulty.Wrap(compiled.Workflow, "extract/clinicB", func(wrapped etl.Component) *faulty.Chaos {
		return &faulty.Chaos{Wrapped: wrapped, FailForever: true}
	}) == nil {
		t.Fatal("extract/clinicB not found")
	}

	policy := etl.RunPolicy{MaxAttempts: 3, ContinueOnError: true}
	_, rep, err := compiled.RunResilient(ctx, policy, 4)
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}

	// The report links to the trace, and the root span carries the error.
	root := rep.Trace
	if root == nil {
		t.Fatal("report.Trace is nil on an observed run")
	}
	if root.Name() != "workflow "+spec.Name || root.ParentID() != 0 {
		t.Fatalf("root span = %q parent=%d", root.Name(), root.ParentID())
	}
	if root.Duration() <= 0 {
		t.Error("root span never ended")
	}
	if root.Err() == "" {
		t.Error("degraded run's root span should carry the first failure")
	}

	spans := observer.Tracer.Spans()
	children := func(parent *obs.Span) []*obs.Span {
		var out []*obs.Span
		for _, s := range spans {
			if s.ParentID() == parent.ID() {
				out = append(out, s)
			}
		}
		return out
	}

	// The dead contributor's step span records every retry attempt.
	dead := observer.Tracer.Find("step extract/clinicB")
	if dead == nil {
		t.Fatal("no span for the dead extract")
	}
	if dead.Err() == "" {
		t.Error("failed step span has no error")
	}
	if v, _ := dead.Attr("status"); v != "failed" {
		t.Errorf("dead step status attr = %v", v)
	}
	attempts := children(dead)
	if len(attempts) != 3 {
		t.Fatalf("dead step has %d attempt spans, want 3", len(attempts))
	}
	for i, a := range attempts {
		if a.Name() != "attempt "+string(rune('1'+i)) {
			t.Errorf("attempt span %d named %q", i, a.Name())
		}
		if a.Err() == "" {
			t.Errorf("attempt span %q has no error", a.Name())
		}
	}

	// Skipped dependents get instant spans naming their cause.
	for _, id := range []string{"select/clinicB", "classify/clinicB"} {
		sp := observer.Tracer.Find("step " + id)
		if sp == nil {
			t.Fatalf("no span for skipped step %s", id)
		}
		because, _ := sp.Attr("because")
		if s, _ := because.(string); !strings.Contains(s, "extract/clinicB") {
			t.Errorf("skipped span %s because=%v, want extract/clinicB named", id, because)
		}
		if res := rep.Step(id); res.Span != sp {
			t.Errorf("step result %s not linked to its span", id)
		}
	}

	// The degraded union names the pruned input.
	union := observer.Tracer.Find("step load/union")
	if union == nil {
		t.Fatal("no span for load/union")
	}
	dropped, _ := union.Attr("dropped_inputs")
	if s, _ := dropped.(string); !strings.Contains(s, "clinicB") {
		t.Errorf("union dropped_inputs=%v, want clinicB's table named", dropped)
	}
	if v, _ := union.Attr("status"); v != "degraded" {
		t.Errorf("union status attr = %v", v)
	}

	// The rendered tree reads as the acceptance criteria demand.
	tree := obs.RenderTree(spans)
	for _, want := range []string{
		"workflow " + spec.Name, "step extract/clinicB", "attempt 3",
		"because=extract/clinicB", "dropped_inputs=",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, tree)
		}
	}

	// The JSONL exporter round-trips the whole tree.
	var buf bytes.Buffer
	if err := obs.WriteSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(spans) {
		t.Fatalf("exported %d records for %d spans", len(recs), len(spans))
	}

	// Metrics: the observer's registry saw the retries and the outcome mix.
	m := observer.Metrics
	if got := m.Counter("etl.retries").Value(); got != 2 {
		t.Errorf("etl.retries = %d, want 2", got)
	}
	if got := m.Counter("etl.steps.failed").Value(); got != 1 {
		t.Errorf("etl.steps.failed = %d, want 1", got)
	}
	if got := m.Counter("etl.steps.skipped").Value(); got != 2 {
		t.Errorf("etl.steps.skipped = %d, want 2", got)
	}
	if got := m.Counter("etl.steps.degraded").Value(); got != 1 {
		t.Errorf("etl.steps.degraded = %d, want 1", got)
	}
	if got := m.Histogram("etl.step.run_ms").Count(); got <= 0 {
		t.Error("etl.step.run_ms saw no observations")
	}
}

// TestSpanNestingProperty drives the randomized-DAG fault harness with an
// observer attached and asserts the structural invariants of every
// resulting trace: one root, every step span a child of it, every attempt
// span a child of a step span, and attempt windows contained in their
// step's window.
func TestSpanNestingProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 9
	for dag := 0; dag < 4; dag++ {
		deps := randomDeps(r, n)
		for failAt := 0; failAt < n; failAt += 2 {
			workers := 1 + (dag+failAt)%4
			w, _, _ := buildFaultDAG(deps, failAt)
			observer := obs.NewObserver()
			ctx := obs.WithObserver(context.Background(), observer)
			rep, err := w.Execute(ctx, etl.NewContext(nil), etl.RunPolicy{MaxAttempts: 2, ContinueOnError: true}, workers)
			if err != nil {
				t.Fatalf("dag %d failAt %d: %v", dag, failAt, err)
			}

			spans := observer.Tracer.Spans()
			byID := map[int64]*obs.Span{}
			var roots, steps, attempts []*obs.Span
			for _, s := range spans {
				byID[s.ID()] = s
				switch {
				case s.ParentID() == 0:
					roots = append(roots, s)
				case strings.HasPrefix(s.Name(), "step "):
					steps = append(steps, s)
				case strings.HasPrefix(s.Name(), "attempt "):
					attempts = append(attempts, s)
				default:
					t.Fatalf("dag %d failAt %d: unexpected span %q", dag, failAt, s.Name())
				}
			}
			if len(roots) != 1 || roots[0] != rep.Trace {
				t.Fatalf("dag %d failAt %d: %d roots", dag, failAt, len(roots))
			}
			if len(steps) != n {
				t.Fatalf("dag %d failAt %d: %d step spans, want %d", dag, failAt, len(steps), n)
			}
			for _, s := range steps {
				if s.ParentID() != roots[0].ID() {
					t.Fatalf("dag %d failAt %d: step span %q not under the workflow root", dag, failAt, s.Name())
				}
				if s.Duration() < 0 {
					t.Fatalf("dag %d failAt %d: step span %q has negative duration", dag, failAt, s.Name())
				}
			}
			for _, a := range attempts {
				parent := byID[a.ParentID()]
				if parent == nil || !strings.HasPrefix(parent.Name(), "step ") {
					t.Fatalf("dag %d failAt %d: attempt span %q parent is %v", dag, failAt, a.Name(), parent)
				}
				// Containment on the monotonic clock: the attempt's window
				// sits inside its step's window.
				if a.Start().Before(parent.Start()) {
					t.Fatalf("dag %d failAt %d: attempt starts before its step", dag, failAt)
				}
				if a.Start().Add(a.Duration()).After(parent.Start().Add(parent.Duration())) {
					t.Fatalf("dag %d failAt %d: attempt ends after its step", dag, failAt)
				}
			}
			// Reconciliation with the report: statuses and attempt counts
			// agree span-for-span.
			for _, res := range rep.Steps {
				sp := res.Span
				if sp == nil {
					t.Fatalf("dag %d failAt %d: step %s has no span", dag, failAt, res.ID)
				}
				if v, _ := sp.Attr("status"); v != res.Status.String() {
					t.Fatalf("dag %d failAt %d: step %s span status %v != report %v", dag, failAt, res.ID, v, res.Status)
				}
				var kids int
				for _, a := range attempts {
					if a.ParentID() == sp.ID() {
						kids++
					}
				}
				if kids != res.Attempts {
					t.Fatalf("dag %d failAt %d: step %s has %d attempt spans, report says %d", dag, failAt, res.ID, kids, res.Attempts)
				}
			}
		}
	}
}

// TestUnobservedRunHasNoTrace: without an observer the executor records
// nothing — no Trace on the report, no spans anywhere — yet behaves
// identically.
func TestUnobservedRunHasNoTrace(t *testing.T) {
	w, _, _ := buildFaultDAG(randomDeps(rand.New(rand.NewSource(3)), 5), 2)
	rep, err := w.Execute(context.Background(), etl.NewContext(nil), etl.RunPolicy{ContinueOnError: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil {
		t.Fatal("unobserved run has a Trace")
	}
	for _, res := range rep.Steps {
		if res.Span != nil {
			t.Fatalf("unobserved step %s has a span", res.ID)
		}
	}
}

// TestSkippedStepsReportZeroDuration: steps pruned by ContinueOnError
// uniformly report Attempts == 0 and a zero Duration ("absent", not a
// stray epsilon), and Render prints "-" for them.
func TestSkippedStepsReportZeroDuration(t *testing.T) {
	w, _, _ := buildFaultDAG(randomDeps(rand.New(rand.NewSource(5)), 7), 0)
	rep, err := w.Execute(context.Background(), etl.NewContext(nil), etl.RunPolicy{ContinueOnError: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped()) == 0 {
		t.Skip("this seed produced no dependents of s0")
	}
	for _, id := range rep.Skipped() {
		res := rep.Step(id)
		if res.Attempts != 0 || res.Duration != 0 || res.QueueWait != 0 {
			t.Errorf("skipped %s: attempts=%d duration=%v wait=%v, want all zero", id, res.Attempts, res.Duration, res.QueueWait)
		}
	}
	out := rep.Render()
	if !strings.Contains(out, "attempts=0  -") {
		t.Errorf("Render does not print '-' for never-ran steps:\n%s", out)
	}
}
