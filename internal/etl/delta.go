package etl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"guava/internal/obs"
	"guava/internal/patterns"
	"guava/internal/relstore"
)

// The full Refresh re-extracts every contributor relation on every run — the
// paper's "periodically sent for inclusion in the CORI warehouse" batch. As
// the warehouse grows, that cost grows with it even when almost nothing
// changed. The delta path here keeps refresh latency proportional to the
// change set instead: each contributor's pattern stack journals the instance
// keys it touches (patterns.Journal), RefreshDelta re-reads and re-classifies
// only those keys, and the result is patched into the warehouse group-wise
// with the same multiset semantics Merge uses — so deltaRefresh(w, d) is
// observationally identical to fullRefresh(apply(w, d)).

// DeltaSource is a contributor's changed-row feed: a monotone high-water
// mark plus the distinct instance keys recorded past a cursor. It is the
// queryable form of the Audit pattern's per-row change timestamps.
type DeltaSource interface {
	// HighWaterMark returns the feed's current position without reading
	// any keys — cheap enough to poll for dirtiness.
	HighWaterMark() (int64, error)
	// ChangedSince returns the distinct keys recorded in (since, hwm] and
	// the hwm the caller's cursor should advance to after applying them.
	ChangedSince(since int64) ([]relstore.Value, int64, error)
}

// ErrNoDeltaSource reports that a contributor's stack has no change journal,
// so only full recomputation can refresh it.
var ErrNoDeltaSource = errors.New("etl: contributor has no delta source (stack has no journal)")

// journalSource adapts a pattern stack's journal to DeltaSource.
type journalSource struct {
	j    *patterns.Journal
	db   *relstore.DB
	form patterns.FormInfo
}

func (s journalSource) HighWaterMark() (int64, error) {
	return s.j.HighWaterMark(s.db, s.form)
}

func (s journalSource) ChangedSince(since int64) ([]relstore.Value, int64, error) {
	return s.j.ChangedSince(s.db, s.form, since)
}

// DeltaSource returns the contributor's changed-row feed, or nil when its
// stack carries no journal (delta refresh is then impossible and callers
// must fall back to a full refresh).
func (c *ContributorPlan) DeltaSource() DeltaSource {
	if c.Stack == nil || c.Stack.Journal == nil {
		return nil
	}
	return journalSource{j: c.Stack.Journal, db: c.DB, form: c.Form}
}

// DeltaCursors holds the per-contributor high-water marks a study has applied
// so far. It is safe for concurrent use and serializes to JSON so a refresh
// daemon or CLI can persist its position alongside the warehouse, exactly the
// way run checkpoints persist partial workflow state.
type DeltaCursors struct {
	mu  sync.Mutex
	pos map[string]int64
}

// NewDeltaCursors returns an empty cursor set: every contributor starts at
// position 0, i.e. "everything ever journaled is new".
func NewDeltaCursors() *DeltaCursors {
	return &DeltaCursors{pos: make(map[string]int64)}
}

// Get returns the cursor for a contributor (0 when never set).
func (c *DeltaCursors) Get(contributor string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pos[contributor]
}

// Set advances (or rewinds) the cursor for a contributor.
func (c *DeltaCursors) Set(contributor string, seq int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pos[contributor] = seq
}

// Snapshot returns a copy of all cursors.
func (c *DeltaCursors) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.pos))
	for k, v := range c.pos {
		out[k] = v
	}
	return out
}

// Save writes the cursors as JSON with the temp+fsync+rename discipline, so
// a crash mid-save never leaves a truncated cursor file behind.
func (c *DeltaCursors) Save(path string) error { return c.SaveFS(nil, path) }

// SaveFS is Save through an explicit FS — the seam fault-injection tests
// use to tear the cursor write.
func (c *DeltaCursors) SaveFS(fsys FS, path string) error {
	data, err := json.MarshalIndent(c.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(fsys, path, append(data, '\n'))
}

// LoadDeltaCursors reads a cursor file written by Save. A missing file is not
// an error: it yields empty cursors, which makes the next delta refresh
// re-apply the whole journal — slower, never wrong (the patch is idempotent).
func LoadDeltaCursors(path string) (*DeltaCursors, error) { return LoadDeltaCursorsFS(nil, path) }

// LoadDeltaCursorsFS is LoadDeltaCursors through an explicit FS.
func LoadDeltaCursorsFS(fsys FS, path string) (*DeltaCursors, error) {
	data, err := fsOrOS(fsys).ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return NewDeltaCursors(), nil
	}
	if err != nil {
		return nil, err
	}
	pos := make(map[string]int64)
	if err := json.Unmarshal(data, &pos); err != nil {
		return nil, fmt.Errorf("etl: cursor file %s: %w", path, err)
	}
	return &DeltaCursors{pos: pos}, nil
}

// SeedDeltaCursors positions the cursors at every contributor's current
// high-water mark — the right starting point immediately after a full
// refresh, when the warehouse already reflects everything journaled so far.
// Contributors without a delta source are skipped.
func (c *Compiled) SeedDeltaCursors(cursors *DeltaCursors) error {
	for _, ct := range c.Spec.Contributors {
		src := ct.DeltaSource()
		if src == nil {
			continue
		}
		hwm, err := src.HighWaterMark()
		if err != nil {
			return fmt.Errorf("etl: seed cursor %q: %w", ct.Name, err)
		}
		cursors.Set(ct.Name, hwm)
	}
	return nil
}

// DeltaHooks are test seams around the warehouse patch of each contributor
// with a non-empty delta. BeforeApply runs before any write lands; AfterApply
// runs after the patch but before the cursor advances — an error from either
// aborts the refresh with that contributor's cursor unmoved, so a resumed run
// re-reads and re-applies the same window (the patch is idempotent).
type DeltaHooks struct {
	BeforeApply func(contributor string) error
	AfterApply  func(contributor string) error
}

// DeltaOptions configures one delta refresh.
type DeltaOptions struct {
	// Cursors is the study's applied position per contributor (required).
	Cursors *DeltaCursors
	// Hooks wrap each contributor's warehouse patch.
	Hooks DeltaHooks
}

// DeltaReport summarizes one delta refresh. Stats is computed from the delta
// alone: Added and Updated match what a full refresh over the same warehouse
// would report, while Unchanged and Total count only the delta rows that were
// re-derived (a full refresh would also count every untouched row).
type DeltaReport struct {
	Stats RefreshStats
	// Keys is the number of distinct changed instance keys consumed.
	Keys int
	// ByContributor breaks the stats down per contributor.
	ByContributor map[string]RefreshStats
}

// deriveList rebuilds the exact derivation list the compiled classify stage
// runs for a contributor — entity key, contributor literal, then one CASE
// expression per study column — so delta rows are classified by the very
// same expressions as full runs.
func (c *Compiled) deriveList(ct *ContributorPlan) []relstore.Derivation {
	derive := []relstore.Derivation{
		{Name: EntityKeyColumn, Type: relstore.KindInt, Expr: relstore.Col(ct.Form.KeyColumn)},
		{Name: ContributorColumn, Type: relstore.KindString, Expr: relstore.Lit(relstore.Str(ct.Name))},
	}
	for _, col := range c.Spec.Columns {
		derive = append(derive, relstore.Derivation{
			Name: col.As, Type: col.Kind, Expr: c.ColumnBinds[ct.Name][col.As].Case(),
		})
	}
	return derive
}

// RefreshDelta refreshes the warehouse from each contributor's change journal
// instead of re-running the study: changed keys are re-read through the
// pattern stack, re-selected and re-classified with the compiled study's own
// predicates and derivations, and patched into the warehouse group-wise with
// Merge's multiset semantics. Entities whose recomputed group is empty (they
// were deprecated, or no longer select as study entities) leave their
// existing warehouse history untouched — the same stable-history contract a
// full refresh honors for absent keys.
//
// Every contributor must expose a DeltaSource; otherwise ErrNoDeltaSource is
// returned (wrapped with the contributor name) and the caller should fall
// back to RefreshContext.
//
// The refresh publishes refresh.delta.* counters into the metrics registry
// carried by ctx (obs.MetricsFrom), mirroring the full-refresh counters.
func (c *Compiled) RefreshDelta(ctx context.Context, warehouse *relstore.DB, opts DeltaOptions) (_ *DeltaReport, err error) {
	if opts.Cursors == nil {
		return nil, fmt.Errorf("etl: RefreshDelta %q: DeltaOptions.Cursors is required", c.Spec.Name)
	}
	ctx, span := obs.StartSpan(ctx, "refresh-delta "+c.Spec.Name, obs.String("study", c.Spec.Name))
	defer func() { span.EndErr(err) }()

	outSchema, err := c.Spec.OutputSchema()
	if err != nil {
		return nil, err
	}
	table, err := warehouse.EnsureTable(c.Output.Table, outSchema)
	if err != nil {
		return nil, err
	}
	// The patch probes by entity key within a contributor; make sure both
	// probe columns are indexed (no-ops when already present).
	if err := table.CreateIndex(EntityKeyColumn); err != nil {
		return nil, err
	}
	if err := table.CreateIndex(ContributorColumn); err != nil {
		return nil, err
	}

	report := &DeltaReport{ByContributor: make(map[string]RefreshStats)}
	for _, ct := range c.Spec.Contributors {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		src := ct.DeltaSource()
		if src == nil {
			return nil, fmt.Errorf("etl: contributor %q: %w", ct.Name, ErrNoDeltaSource)
		}
		since := opts.Cursors.Get(ct.Name)
		keys, hwm, err := src.ChangedSince(since)
		if err != nil {
			return nil, fmt.Errorf("etl: delta %q: %w", ct.Name, err)
		}
		if len(keys) == 0 {
			// Nothing recorded past the cursor: advance it and move on
			// without touching the warehouse.
			opts.Cursors.Set(ct.Name, hwm)
			continue
		}
		report.Keys += len(keys)

		order, groups, err := c.recomputeDelta(ct, keys)
		if err != nil {
			return nil, err
		}

		if opts.Hooks.BeforeApply != nil {
			if err := opts.Hooks.BeforeApply(ct.Name); err != nil {
				return nil, err
			}
		}
		stats, err := patchGroups(table, ct.Name, order, groups)
		if err != nil {
			return nil, err
		}
		if opts.Hooks.AfterApply != nil {
			if err := opts.Hooks.AfterApply(ct.Name); err != nil {
				return nil, err
			}
		}
		opts.Cursors.Set(ct.Name, hwm)

		report.ByContributor[ct.Name] = stats
		report.Stats.Added += stats.Added
		report.Stats.Updated += stats.Updated
		report.Stats.Unchanged += stats.Unchanged
		report.Stats.Removed += stats.Removed
		report.Stats.Total += stats.Total
	}

	m := obs.MetricsFrom(ctx)
	m.Counter("refresh.delta.runs").Inc()
	m.Counter("refresh.delta.keys").Add(int64(report.Keys))
	m.Counter("refresh.delta.added").Add(int64(report.Stats.Added))
	m.Counter("refresh.delta.updated").Add(int64(report.Stats.Updated))
	m.Counter("refresh.delta.unchanged").Add(int64(report.Stats.Unchanged))
	m.Counter("refresh.delta.removed").Add(int64(report.Stats.Removed))
	if report.Keys == 0 {
		m.Counter("refresh.delta.empty").Inc()
	}
	span.SetAttr(obs.Int("keys", int64(report.Keys)),
		obs.Int("added", int64(report.Stats.Added)), obs.Int("updated", int64(report.Stats.Updated)),
		obs.Int("removed", int64(report.Stats.Removed)))
	return report, nil
}

// recomputeDelta runs the compiled select→classify stages over just the
// changed keys of one contributor: read the keys back through the pattern
// stack, keep rows passing the entity selection and condition, derive the
// output row, and group by entity key. Changed keys whose recompute yields
// zero rows (the entity was deprecated, or fell out of the selection) are
// still returned in the order with an empty group, so the patch can delete
// their stale warehouse rows. The returned order is sorted by value, and each
// group's rows are sorted canonically, so the patch is deterministic whatever
// order the journal produced the keys in.
func (c *Compiled) recomputeDelta(ct *ContributorPlan, keys []relstore.Value) ([]relstore.Value, map[string][]relstore.Row, error) {
	rows, err := ct.Stack.ReadKeys(ct.DB, ct.Form, keys)
	if err != nil {
		return nil, nil, fmt.Errorf("etl: delta read %q: %w", ct.Name, err)
	}
	filter := relstore.And(c.EntityBinds[ct.Name].Selection(), c.Conditions[ct.Name])
	derive := c.deriveList(ct)

	// Selection and classification run through the columnar batch operators
	// — the same chunked kernels a full refresh uses — rather than a
	// row-at-a-time loop; only the ordered grouping below is sequential.
	filtered, err := relstore.Select(rows, filter)
	if err != nil {
		return nil, nil, fmt.Errorf("etl: delta select %q: %w", ct.Name, err)
	}
	derived, err := relstore.Derive(filtered, derive...)
	if err != nil {
		return nil, nil, fmt.Errorf("etl: delta classify %q: %w", ct.Name, err)
	}
	groups := make(map[string][]relstore.Row)
	var order []relstore.Value
	for _, nr := range derived.Data {
		gk := nr[0].Key()
		if _, seen := groups[gk]; !seen {
			order = append(order, nr[0])
		}
		groups[gk] = append(groups[gk], nr)
	}
	// Changed keys that produced no output rows still need patching: their
	// old warehouse group (if any) is now stale and must be deleted.
	for _, k := range keys {
		if _, seen := groups[k.Key()]; !seen {
			order = append(order, k)
			groups[k.Key()] = nil
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].Compare(order[b]) < 0 })
	for _, rs := range groups {
		sort.Slice(rs, func(a, b int) bool { return rs[a].Key() < rs[b].Key() })
	}
	return order, groups, nil
}

// patchGroups applies recomputed entity groups to the warehouse table with
// Merge's semantics — absent groups insert, identical multisets are left
// alone, changed groups are replaced — but batched: all replaced groups are
// removed in a single Delete (one scan, one index rebuild) and all new rows
// land in a single InsertAll, instead of paying a table scan per entity.
func patchGroups(table *relstore.Table, contributor string, order []relstore.Value, groups map[string][]relstore.Row) (RefreshStats, error) {
	var stats RefreshStats
	contrib := relstore.Str(contributor)
	var updatedKeys []relstore.Value
	var toInsert []relstore.Row
	for _, key := range order {
		group := groups[key.Key()]
		stats.Total += len(group)
		// Entity-key equality first: Select's index probe uses the first
		// indexable conjunct, and the entity key is the selective one.
		existing, err := table.Select(relstore.And(
			relstore.Eq(EntityKeyColumn, key),
			relstore.Eq(ContributorColumn, contrib),
		))
		if err != nil {
			return stats, err
		}
		switch {
		case len(group) == 0:
			// The key changed but recomputes to nothing (deprecated, or
			// fell out of the selection): delete its stale group, if one
			// was ever warehoused.
			if len(existing.Data) > 0 {
				updatedKeys = append(updatedKeys, key)
				stats.Removed += len(existing.Data)
			}
		case len(existing.Data) == 0:
			toInsert = append(toInsert, group...)
			stats.Added += len(group)
		case sameRowSet(existing.Data, group):
			stats.Unchanged += len(group)
		default:
			updatedKeys = append(updatedKeys, key)
			toInsert = append(toInsert, group...)
			stats.Updated += len(group)
		}
	}
	if len(updatedKeys) > 0 {
		_, err := table.Delete(relstore.And(
			relstore.In(relstore.Col(EntityKeyColumn), updatedKeys...),
			relstore.Eq(ContributorColumn, contrib),
		))
		if err != nil {
			return stats, err
		}
	}
	if len(toInsert) > 0 {
		if err := table.InsertAll(toInsert); err != nil {
			return stats, err
		}
	}
	return stats, nil
}
