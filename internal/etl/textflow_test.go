package etl_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"guava/internal/baseline"
	"guava/internal/etl"
	"guava/internal/relstore"
	"guava/internal/workload"
)

// These are the acceptance tests for the free-text contributor riding the
// full ETL stack: a mixed DB+text study extracts through the textsrc layout,
// corrupt reports divert into row-level quarantine with report-span
// provenance under the budget and degrade per RunPolicy beyond it, and a
// delta refresh over appended reports converges byte-identically with a
// full recompute.

// buildMixed assembles the three form contributors plus the Notes text
// contributor (with `corrupt` out-of-vocabulary reports injected) and
// compiles the reference study over all four.
func buildMixed(t *testing.T, seed int64, n, corrupt int) ([]*workload.Contributor, *etl.Compiled) {
	t.Helper()
	contribs, err := workload.BuildAll(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	notes, err := workload.BuildNotes(seed+3, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < corrupt; i++ {
		id := notes.MaxID() + int64(i+1)
		if err := notes.InjectReport(id, workload.CorruptNoteBody(id)); err != nil {
			t.Fatal(err)
		}
	}
	contribs = append(contribs, notes)
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := etl.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return contribs, compiled
}

// TestMixedStudyRuns: the reference study over DB + text contributors unions
// all four arms, and the Notes rows classify exactly like the form-backed
// rows built from the same truth distribution.
func TestMixedStudyRuns(t *testing.T) {
	_, compiled := buildMixed(t, 3, 25, 0)
	out, err := compiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4*25 {
		t.Fatalf("mixed study rows = %d, want %d", out.Len(), 4*25)
	}
	perContrib := map[string]int{}
	for _, r := range out.Data {
		perContrib[r[1].AsString()]++
	}
	for _, name := range []string{"CORI", "EndoSoft", "MedRecord", "Notes"} {
		if perContrib[name] != 25 {
			t.Errorf("contributor %s: %d rows, want 25", name, perContrib[name])
		}
	}
}

// TestTextQuarantineProvenance: corrupt reports within budget divert into
// the dead-letter relation carrying report-span provenance — report id,
// byte range, and the extraction rule that missed — while every clean row
// flows through.
func TestTextQuarantineProvenance(t *testing.T) {
	const n, corrupt = 20, 2
	_, compiled := buildMixed(t, 5, n, corrupt)
	policy := etl.RunPolicy{MaxAttempts: 1, MaxQuarantinedRows: 5}
	out, rep, err := compiled.RunResilient(context.Background(), policy, 1)
	if err != nil {
		t.Fatalf("run with quarantine budget failed: %v", err)
	}
	if out.Len() != 4*n {
		t.Fatalf("clean rows = %d, want %d", out.Len(), 4*n)
	}
	if rep.Quarantined != corrupt {
		t.Fatalf("quarantined = %d, want %d", rep.Quarantined, corrupt)
	}
	ents := rep.QuarantineEntries()
	if len(ents) != corrupt {
		t.Fatalf("entries = %d, want %d", len(ents), corrupt)
	}
	for i, e := range ents {
		id := int64(n + i + 1)
		if e.Contributor != "Notes" || e.Step != "extract/Notes" {
			t.Errorf("entry %d: contributor/step = %s/%s", i, e.Contributor, e.Step)
		}
		if e.Rule != "NoteReport/HISTORY/SmokeStatus" {
			t.Errorf("entry %d: rule = %q", i, e.Rule)
		}
		if e.SourceKind != "report-span" {
			t.Errorf("entry %d: source kind = %q", i, e.SourceKind)
		}
		if want := fmt.Sprintf("report %d bytes 25-52", id); e.Locator != want {
			t.Errorf("entry %d: locator = %q, want %q", i, e.Locator, want)
		}
		if e.RowKey != fmt.Sprint(id) {
			t.Errorf("entry %d: row key = %q, want %d", i, e.RowKey, id)
		}
	}
}

// TestTextQuarantineBudgetDegrades: more corrupt reports than the budget
// allows degrade per RunPolicy — a strict run fails its extract step with
// ErrQuarantineBudget, and a ContinueOnError run completes on the surviving
// contributors with the Notes arm reported failed and its dependents
// skipped.
func TestTextQuarantineBudgetDegrades(t *testing.T) {
	const n, corrupt, budget = 15, 3, 2

	_, strict := buildMixed(t, 8, n, corrupt)
	policy := etl.RunPolicy{MaxAttempts: 1, MaxQuarantinedRows: budget}
	if _, _, err := strict.RunResilient(context.Background(), policy, 1); !errors.Is(err, etl.ErrQuarantineBudget) {
		t.Fatalf("strict run error = %v, want ErrQuarantineBudget", err)
	}

	_, degraded := buildMixed(t, 8, n, corrupt)
	policy.ContinueOnError = true
	out, rep, err := degraded.RunResilient(context.Background(), policy, 1)
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	if out.Len() != 3*n {
		t.Fatalf("degraded rows = %d, want the three surviving arms' %d", out.Len(), 3*n)
	}
	for _, r := range out.Data {
		if r[1].AsString() == "Notes" {
			t.Fatal("degraded output contains rows from the failed Notes arm")
		}
	}
	res := rep.Step("extract/Notes")
	if res.Status != etl.StepFailed || !errors.Is(res.Err, etl.ErrQuarantineBudget) {
		t.Fatalf("extract/Notes = %v (%v), want failed on the budget", res.Status, res.Err)
	}
}

// TestTextAppendDeltaEqualsFull: reports appended after the initial full
// refresh are journaled, so an incremental RefreshDelta run patches the
// warehouse into exactly the state a from-scratch full recompute reaches —
// canonical bytes equal.
func TestTextAppendDeltaEqualsFull(t *testing.T) {
	const seed, n, appended = 11, 30, 6
	ctx := context.Background()

	appendReports := func(cs []*workload.Contributor) {
		t.Helper()
		notes := cs[len(cs)-1]
		extended := workload.Generate(seed+3, n+appended)
		for _, tr := range extended[n:] {
			if err := notes.InsertTruth(tr); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Delta universe: full refresh, pin cursors, append, delta refresh.
	dc, dstudy := buildMixed(t, seed, n, 0)
	dw := relstore.NewDB("warehouse_delta")
	if _, err := dstudy.RefreshContext(ctx, dw, etl.RunPolicy{}); err != nil {
		t.Fatal(err)
	}
	cursors := etl.NewDeltaCursors()
	if err := dstudy.SeedDeltaCursors(cursors); err != nil {
		t.Fatal(err)
	}
	appendReports(dc)
	report, err := dstudy.RefreshDelta(ctx, dw, etl.DeltaOptions{Cursors: cursors})
	if err != nil {
		t.Fatal(err)
	}
	if report.Keys != appended || report.Stats.Added != appended {
		t.Fatalf("delta saw %d keys, %d added; want %d appended reports", report.Keys, report.Stats.Added, appended)
	}

	// Full universe: the same appends, then one from-scratch refresh.
	fc, fstudy := buildMixed(t, seed, n, 0)
	appendReports(fc)
	fw := relstore.NewDB("warehouse_full")
	if _, err := fstudy.RefreshContext(ctx, fw, etl.RunPolicy{}); err != nil {
		t.Fatal(err)
	}

	table := dstudy.Output.Table
	db, err := canonicalBytes(dw, table)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := canonicalBytes(fw, table)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) == 0 || !bytes.Equal(db, fb) {
		t.Fatalf("delta warehouse diverged from full recompute\n--- delta ---\n%s\n--- full ---\n%s", db, fb)
	}
}
