package etl

import (
	"context"
	"fmt"
	"time"
)

// RunPolicy configures fault handling for one workflow execution: per-step
// retry with capped exponential backoff, per-step and per-workflow
// deadlines, and whether a step failure aborts the run or only prunes the
// failed step's dependents. The zero value is the historical behavior:
// one attempt per step, no timeouts, fail fast.
type RunPolicy struct {
	// MaxAttempts is the number of times a step runs before it counts as
	// failed. Values below 1 mean one attempt (no retry).
	MaxAttempts int
	// Backoff is the delay before the first retry. Zero retries
	// immediately.
	Backoff time.Duration
	// BackoffFactor multiplies the delay after each failed attempt
	// (exponential backoff). Values <= 0 default to 2.
	BackoffFactor float64
	// MaxBackoff caps the per-retry delay. Zero means uncapped.
	MaxBackoff time.Duration
	// Jitter, when set, adjusts the computed delay for the given failed
	// attempt (1-based). Inject a deterministic function in tests; nil
	// applies no jitter, keeping backoff fully deterministic.
	Jitter func(attempt int, d time.Duration) time.Duration
	// Sleep, when set, replaces the real timer between retries. It must
	// return ctx.Err() if ctx is done. Inject in tests so retry schedules
	// run instantly and deterministically.
	Sleep func(ctx context.Context, d time.Duration) error
	// Retryable, when set, filters which step errors are worth retrying.
	// nil retries every error. Context cancellation is never retried:
	// once the workflow's ctx is done, attempts stop regardless.
	Retryable func(error) bool
	// StepTimeout bounds each attempt of each step; the attempt's ctx
	// expires after this duration. Zero means no per-step deadline.
	StepTimeout time.Duration
	// WorkflowTimeout bounds the whole execution. Zero means no deadline.
	WorkflowTimeout time.Duration
	// ContinueOnError keeps scheduling after a step fails: the failed
	// step's transitive dependents are skipped (or degraded, for
	// components that can run on partial inputs), every other step still
	// runs, and the failure is recorded in the RunReport instead of
	// aborting the run.
	ContinueOnError bool
	// MaxQuarantinedRows, when positive, enables row-level quarantine:
	// rows failing extraction or classification are diverted into the
	// run's dead-letter relation (RunReport.Quarantine) instead of failing
	// their step — up to this run-wide budget. Exceeding the budget
	// degrades the overflowing step back to failure, so systemic
	// corruption still surfaces. Zero disables quarantine (the historical
	// fail-the-step behavior).
	MaxQuarantinedRows int
	// Checkpoint, when set, makes the run resumable: each completed step's
	// output tables (and quarantined rows) are snapshotted into the store,
	// and steps already checkpointed under the workflow's fingerprint are
	// restored instead of re-executed. A corrupt or unreadable snapshot is
	// treated as a miss (with a warning span) and the step re-runs.
	Checkpoint Checkpointer
	// CheckpointKey overrides the fingerprint the checkpoints are keyed
	// by. Empty derives it from Workflow.Fingerprint(); compiled studies
	// pin the fingerprint of the unwrapped plan here so test
	// instrumentation around components does not orphan prior checkpoints.
	CheckpointKey string
}

// Validate rejects policies whose fields are contradictory or out of range,
// so a misconfigured run fails loudly at Execute time instead of silently
// normalizing (a negative budget reading as "no retries", a step deadline
// longer than the whole run's). The zero policy is valid.
func (p RunPolicy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("etl: invalid RunPolicy: MaxAttempts %d is negative", p.MaxAttempts)
	}
	if p.Backoff < 0 {
		return fmt.Errorf("etl: invalid RunPolicy: Backoff %v is negative", p.Backoff)
	}
	if p.MaxBackoff < 0 {
		return fmt.Errorf("etl: invalid RunPolicy: MaxBackoff %v is negative", p.MaxBackoff)
	}
	if p.StepTimeout < 0 {
		return fmt.Errorf("etl: invalid RunPolicy: StepTimeout %v is negative", p.StepTimeout)
	}
	if p.WorkflowTimeout < 0 {
		return fmt.Errorf("etl: invalid RunPolicy: WorkflowTimeout %v is negative", p.WorkflowTimeout)
	}
	if p.StepTimeout > 0 && p.WorkflowTimeout > 0 && p.StepTimeout > p.WorkflowTimeout {
		return fmt.Errorf("etl: invalid RunPolicy: StepTimeout %v exceeds WorkflowTimeout %v",
			p.StepTimeout, p.WorkflowTimeout)
	}
	if p.MaxQuarantinedRows < 0 {
		return fmt.Errorf("etl: invalid RunPolicy: MaxQuarantinedRows %d is negative", p.MaxQuarantinedRows)
	}
	return nil
}

// attempts normalizes MaxAttempts.
func (p RunPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay computes the backoff before the retry that follows failed attempt
// `attempt` (1-based).
func (p RunPolicy) delay(attempt int) time.Duration {
	d := p.Backoff
	if d <= 0 {
		return 0
	}
	factor := p.BackoffFactor
	if factor <= 0 {
		factor = 2
	}
	for i := 1; i < attempt; i++ {
		d = time.Duration(float64(d) * factor)
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter != nil {
		d = p.Jitter(attempt, d)
	}
	return d
}

// sleep waits out a retry delay, honoring cancellation and the injected
// Sleep hook.
func (p RunPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryable reports whether a failed attempt should be retried.
func (p RunPolicy) retryable(err error) bool {
	if err == nil {
		return false
	}
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return true
}
