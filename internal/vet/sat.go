package vet

import (
	"fmt"
	"sort"
	"strings"

	"guava/internal/classifier"
	"guava/internal/gtree"
	"guava/internal/relstore"
)

// This file is the small satisfiability procedure the classifier checks run
// on: conjunctions of guard atoms over interval, categorical, and boolean
// variables, generalizing classifier/analyze.go beyond single-variable
// numeric rules. It is faithful to relstore's NULL semantics:
//
//   - = and <> evaluate two-valued (NULL = NULL is TRUE, NULL <> 5 is
//     TRUE), so they are exact negations of each other and a <>-atom does
//     NOT imply the variable is non-NULL;
//   - the ordered comparisons < <= > >= are false whenever an operand is
//     NULL, so they imply non-NULL and their negation admits NULL.
//
// Atoms the engine cannot interpret (node-to-node comparisons, arithmetic
// guards) are handled conservatively so no check reports a false positive:
// they are dropped when that weakens a formula whose UNsatisfiability is
// being proved, and they become an always-satisfiable branch when they
// appear under negation.

// interval is a contiguous numeric range; a fresh zero value is the empty
// point [0,0], so use fullIv for "no constraint".
type interval struct {
	lo, hi         float64
	loOpen, hiOpen bool
	loInf, hiInf   bool
}

func fullIv() interval { return interval{loInf: true, hiInf: true} }

func (iv interval) isFull() bool { return iv.loInf && iv.hiInf }

func (iv interval) empty() bool {
	if iv.loInf || iv.hiInf {
		return false
	}
	if iv.lo > iv.hi {
		return true
	}
	return iv.lo == iv.hi && (iv.loOpen || iv.hiOpen)
}

func (iv interval) intersect(o interval) interval {
	out := iv
	if !o.loInf {
		if out.loInf || o.lo > out.lo || (o.lo == out.lo && o.loOpen) {
			out.lo, out.loOpen, out.loInf = o.lo, o.loOpen, false
		}
	}
	if !o.hiInf {
		if out.hiInf || o.hi < out.hi || (o.hi == out.hi && o.hiOpen) {
			out.hi, out.hiOpen, out.hiInf = o.hi, o.hiOpen, false
		}
	}
	return out
}

func (iv interval) contains(v float64) bool {
	if !iv.loInf {
		if v < iv.lo || (v == iv.lo && iv.loOpen) {
			return false
		}
	}
	if !iv.hiInf {
		if v > iv.hi || (v == iv.hi && iv.hiOpen) {
			return false
		}
	}
	return true
}

// bounded reports whether the interval is finite on both sides.
func (iv interval) bounded() bool { return !iv.loInf && !iv.hiInf }

func (iv interval) String() string {
	lo, loVal := "(", "-inf"
	if !iv.loInf {
		loVal = trimFloat(iv.lo)
		if !iv.loOpen {
			lo = "["
		}
	}
	hi, hiVal := ")", "+inf"
	if !iv.hiInf {
		hiVal = trimFloat(iv.hi)
		if !iv.hiOpen {
			hi = "]"
		}
	}
	return fmt.Sprintf("%s%s, %s%s", lo, loVal, hiVal, hi)
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }

// atomOp enumerates the engine's atom shapes.
type atomOp int

const (
	// opUnknown is an atom the engine cannot interpret; it constrains
	// nothing, and callers account for the one-sidedness that introduces.
	opUnknown atomOp = iota
	// opPresence is a form-node reference (entity-classifier anchors); the
	// relation atom always holds.
	opPresence
	// opNever is an atom that is false on every row (e.g. an ordered
	// comparison against the NULL literal).
	opNever
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opIsNull
	opNotNull
)

func (op atomOp) ordered() bool { return op == opLt || op == opLe || op == opGt || op == opGe }

// atom is one interpreted guard condition over a single variable.
type atom struct {
	op   atomOp
	name string
	val  relstore.Value
	pos  Pos // position of the variable reference, when the AST carries one
}

// requiresValue reports whether the atom can only hold when the variable is
// non-NULL — the property the context check (GV106) keys on.
func (a atom) requiresValue() bool {
	switch a.op {
	case opEq, opNotNull:
		return true
	default:
		return a.op.ordered()
	}
}

func (a atom) String() string {
	switch a.op {
	case opEq:
		return a.name + " = " + a.val.String()
	case opNe:
		return a.name + " <> " + a.val.String()
	case opLt:
		return a.name + " < " + a.val.String()
	case opLe:
		return a.name + " <= " + a.val.String()
	case opGt:
		return a.name + " > " + a.val.String()
	case opGe:
		return a.name + " >= " + a.val.String()
	case opIsNull:
		return a.name + " IS NULL"
	case opNotNull:
		return a.name + " IS NOT NULL"
	default:
		return a.name + "?"
	}
}

// litValue folds a literal AST node (possibly unary-negated) to a value.
func litValue(n classifier.Node) (relstore.Value, bool) {
	switch x := n.(type) {
	case *classifier.NumLit:
		if x.IsInt {
			return relstore.Int(x.Int), true
		}
		return relstore.Float(x.Float), true
	case *classifier.StrLit:
		return relstore.Str(x.S), true
	case *classifier.BoolLit:
		return relstore.Bool(x.B), true
	case *classifier.NullLit:
		return relstore.Null(), true
	case *classifier.Unary:
		if x.Op != "-" {
			return relstore.Null(), false
		}
		v, ok := litValue(x.X)
		if !ok || !v.IsNumeric() {
			return relstore.Null(), false
		}
		if v.Kind() == relstore.KindInt {
			return relstore.Int(-v.AsInt()), true
		}
		return relstore.Float(-v.AsFloat()), true
	default:
		return relstore.Null(), false
	}
}

var atomOps = map[string]atomOp{
	"=": opEq, "<>": opNe, "<": opLt, "<=": opLe, ">": opGt, ">=": opGe,
}

var mirrorOps = map[atomOp]atomOp{
	opEq: opEq, opNe: opNe, opLt: opGt, opLe: opGe, opGt: opLt, opGe: opLe,
}

// interp converts one DNF atom (a two-operand *Compare or an *IsNull) into
// the engine's form. tree may be nil, leaving every variable an open
// unknown-typed variable. ok is false for shapes the engine does not model.
func interp(n classifier.Node, tree *gtree.Tree) (atom, bool) {
	switch x := n.(type) {
	case *classifier.IsNull:
		id, ok := x.X.(*classifier.Ident)
		if !ok {
			return atom{op: opUnknown}, false
		}
		op := opIsNull
		if x.Negate {
			op = opNotNull
		}
		return atom{op: op, name: id.Name, pos: identPos(id)}, true
	case *classifier.Compare:
		if len(x.Ops) != 1 || len(x.Operands) != 2 {
			return atom{op: opUnknown}, false
		}
		op, ok := atomOps[x.Ops[0]]
		if !ok {
			return atom{op: opUnknown}, false
		}
		id, idOK := x.Operands[0].(*classifier.Ident)
		litN := x.Operands[1]
		if !idOK {
			id, idOK = x.Operands[1].(*classifier.Ident)
			litN = x.Operands[0]
			op = mirrorOps[op]
		}
		if !idOK {
			return atom{op: opUnknown}, false
		}
		v, ok := litValue(litN)
		if !ok {
			return atom{op: opUnknown}, false
		}
		a := atom{op: op, name: id.Name, val: v, pos: identPos(id)}
		if tree != nil {
			if node, err := tree.Node(id.Name); err == nil && node.Kind != gtree.FieldNode {
				// Form (or group) node reference: the entity-classifier
				// presence anchor. It carries no data constraint.
				return atom{op: opPresence, name: id.Name, pos: a.pos}, true
			}
		}
		if v.IsNull() {
			// Two-valued equality: x = NULL is IS NULL, x <> NULL is
			// IS NOT NULL; ordered comparisons with NULL never hold.
			switch op {
			case opEq:
				a.op, a.val = opIsNull, relstore.Null()
			case opNe:
				a.op, a.val = opNotNull, relstore.Null()
			default:
				a.op = opNever
			}
			return a, true
		}
		if op.ordered() && !v.IsNumeric() {
			// Ordered string/bool thresholds exist but the engine does not
			// model their order; stay conservative.
			return atom{op: opUnknown, name: id.Name, pos: a.pos}, false
		}
		return a, true
	default:
		return atom{op: opUnknown}, false
	}
}

func identPos(id *classifier.Ident) Pos {
	return Pos{Line: id.Tok.Line, Col: id.Tok.Col}
}

// valueEq compares two values with numeric cross-kind equality (1 = 1.0).
func valueEq(a, b relstore.Value) bool {
	if a.IsNumeric() && b.IsNumeric() {
		return a.AsFloat() == b.AsFloat()
	}
	return a.Equal(b)
}

// closedValues returns the finite set of non-NULL values a node can store,
// when that set is provably closed: declared options without free text, or
// a boolean data type. The engine assumes stored data conforms to the
// control's options — exactly the conformance the pattern stacks enforce.
func closedValues(n *gtree.Node) ([]relstore.Value, bool) {
	if n == nil {
		return nil, false
	}
	if n.DataType == relstore.KindBool {
		return []relstore.Value{relstore.Bool(true), relstore.Bool(false)}, true
	}
	if n.AllowFreeText || len(n.Options) == 0 {
		return nil, false
	}
	var out []relstore.Value
	for _, o := range n.Options {
		if !o.Stored.IsNull() {
			out = append(out, o.Stored)
		}
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// varState is the accumulated constraint on one variable.
type varState struct {
	isNull  bool
	notNull bool
	iv      interval
	hasIv   bool
	eq      *relstore.Value
	ne      map[string]relstore.Value
}

func (v *varState) clone() *varState {
	out := *v
	if v.ne != nil {
		out.ne = make(map[string]relstore.Value, len(v.ne))
		for k, val := range v.ne {
			out.ne[k] = val
		}
	}
	return &out
}

// excludes reports whether the constraints rule out the variable holding
// the (non-NULL) value w.
func (v *varState) excludes(w relstore.Value) bool {
	if v.isNull {
		return true
	}
	if v.eq != nil && !valueEq(*v.eq, w) {
		return true
	}
	if _, ok := v.ne[w.Key()]; ok {
		return true
	}
	if v.hasIv && w.IsNumeric() && !v.iv.contains(w.AsFloat()) {
		return true
	}
	return false
}

// state is a conjunction of per-variable constraints; sat goes false as
// soon as a contradiction is proved.
type state struct {
	vars map[string]*varState
	sat  bool
}

func newState() *state { return &state{vars: map[string]*varState{}, sat: true} }

func (s *state) clone() *state {
	out := &state{vars: make(map[string]*varState, len(s.vars)), sat: s.sat}
	for k, v := range s.vars {
		out.vars[k] = v.clone()
	}
	return out
}

func (s *state) v(name string) *varState {
	vs, ok := s.vars[name]
	if !ok {
		vs = &varState{}
		s.vars[name] = vs
	}
	return vs
}

// apply conjoins one atom onto the state. assumeNotNull models the gap
// analysis' convention that every referenced control was answered (NULL
// inputs classify to NULL by design, mirroring AnalyzeIntervals).
func (s *state) apply(a atom, assumeNotNull bool) {
	if !s.sat {
		return
	}
	switch a.op {
	case opUnknown, opPresence:
		return
	case opNever:
		s.sat = false
		return
	}
	vs := s.v(a.name)
	switch a.op {
	case opIsNull:
		if assumeNotNull || vs.notNull || vs.eq != nil || vs.hasIv {
			s.sat = false
			return
		}
		vs.isNull = true
	case opNotNull:
		if vs.isNull {
			s.sat = false
			return
		}
		vs.notNull = true
	case opEq:
		if vs.isNull {
			s.sat = false
			return
		}
		vs.notNull = true
		if vs.eq != nil && !valueEq(*vs.eq, a.val) {
			s.sat = false
			return
		}
		if _, ok := vs.ne[a.val.Key()]; ok {
			s.sat = false
			return
		}
		if vs.hasIv && a.val.IsNumeric() && !vs.iv.contains(a.val.AsFloat()) {
			s.sat = false
			return
		}
		v := a.val
		vs.eq = &v
		if v.IsNumeric() {
			f := v.AsFloat()
			vs.iv, vs.hasIv = interval{lo: f, hi: f}, true
		}
	case opNe:
		if vs.isNull {
			return // NULL <> v is TRUE under two-valued inequality
		}
		if vs.eq != nil && valueEq(*vs.eq, a.val) {
			s.sat = false
			return
		}
		if vs.ne == nil {
			vs.ne = map[string]relstore.Value{}
		}
		vs.ne[a.val.Key()] = a.val
	default: // ordered
		if vs.isNull {
			s.sat = false
			return
		}
		vs.notNull = true
		if !vs.hasIv {
			vs.iv, vs.hasIv = fullIv(), true
		}
		f := a.val.AsFloat()
		var c interval
		switch a.op {
		case opLt:
			c = interval{loInf: true, hi: f, hiOpen: true}
		case opLe:
			c = interval{loInf: true, hi: f}
		case opGt:
			c = interval{lo: f, loOpen: true, hiInf: true}
		case opGe:
			c = interval{lo: f, hiInf: true}
		}
		vs.iv = vs.iv.intersect(c)
		if vs.iv.empty() {
			s.sat = false
			return
		}
		if vs.eq != nil && (*vs.eq).IsNumeric() && !vs.iv.contains((*vs.eq).AsFloat()) {
			s.sat = false
		}
	}
}

// satisfiable runs the closure checks that need the g-tree: closed-domain
// exhaustion and point-interval disequality. tree may be nil.
func (s *state) satisfiable(tree *gtree.Tree, assumeNotNull bool) bool {
	if !s.sat {
		return false
	}
	for name, vs := range s.vars {
		if assumeNotNull && vs.isNull {
			return false
		}
		effNotNull := vs.notNull || assumeNotNull
		// A point interval with its point excluded holds no value.
		if effNotNull && vs.hasIv && !vs.iv.loInf && !vs.iv.hiInf &&
			vs.iv.lo == vs.iv.hi && !vs.iv.loOpen && !vs.iv.hiOpen {
			if _, ok := vs.ne[relstore.Float(vs.iv.lo).Key()]; ok {
				return false
			}
			if _, ok := vs.ne[relstore.Int(int64(vs.iv.lo)).Key()]; ok && float64(int64(vs.iv.lo)) == vs.iv.lo {
				return false
			}
		}
		if tree == nil {
			continue
		}
		node, err := tree.Node(name)
		if err != nil {
			continue
		}
		dom, closed := closedValues(node)
		if !closed {
			continue
		}
		if vs.eq != nil {
			inDom := false
			for _, d := range dom {
				if valueEq(*vs.eq, d) {
					inDom = true
					break
				}
			}
			if !inDom {
				return false
			}
			continue
		}
		if !effNotNull {
			continue // NULL remains available regardless of exclusions
		}
		remaining := 0
		for _, d := range dom {
			if !vs.excludes(d) {
				remaining++
			}
		}
		if remaining == 0 {
			return false
		}
	}
	return true
}

// guardDisjuncts normalizes a guard (nil = TRUE) to DNF.
func guardDisjuncts(guard classifier.Node) ([][]classifier.Node, error) {
	return classifier.DNF(guard, false)
}

// conjStates builds the satisfiable states of a guard's disjuncts. complete
// is false when any atom (of any disjunct) was uninterpretable — the states
// then over-approximate the guard, which is still sound for proving it
// unsatisfiable or shadowed.
func conjStates(guard classifier.Node, tree *gtree.Tree, assumeNotNull bool) (states []*state, complete bool, err error) {
	disjuncts, err := guardDisjuncts(guard)
	if err != nil {
		return nil, false, err
	}
	complete = true
	for _, conj := range disjuncts {
		s := newState()
		for _, n := range conj {
			a, ok := interp(n, tree)
			if !ok {
				complete = false
				continue
			}
			s.apply(a, assumeNotNull)
		}
		if s.sat && s.satisfiable(tree, assumeNotNull) {
			states = append(states, s)
		}
	}
	return states, complete, nil
}

// negAlternatives returns the weak negation of one atom as the disjunction
// of alternatives, faithful to NULL semantics: = and <> negate exactly,
// ordered comparisons negate to the flipped operator OR the variable being
// NULL (suppressed under assumeNotNull). Unknown atoms negate to an
// unconstrained alternative, so an uninterpretable guard never helps prove
// anything unreachable.
func negAlternatives(a atom, assumeNotNull bool) []atom {
	withNull := func(alts ...atom) []atom {
		if !assumeNotNull {
			alts = append(alts, atom{op: opIsNull, name: a.name})
		}
		return alts
	}
	switch a.op {
	case opEq:
		return []atom{{op: opNe, name: a.name, val: a.val}}
	case opNe:
		return []atom{{op: opEq, name: a.name, val: a.val}}
	case opLt:
		return withNull(atom{op: opGe, name: a.name, val: a.val})
	case opLe:
		return withNull(atom{op: opGt, name: a.name, val: a.val})
	case opGt:
		return withNull(atom{op: opLe, name: a.name, val: a.val})
	case opGe:
		return withNull(atom{op: opLt, name: a.name, val: a.val})
	case opIsNull:
		return []atom{{op: opNotNull, name: a.name}}
	case opNotNull:
		return []atom{{op: opIsNull, name: a.name}}
	case opPresence:
		return nil // ¬presence is false: the relation atom always holds
	case opNever:
		return []atom{{op: opUnknown}}
	default: // opUnknown
		return []atom{{op: opUnknown}}
	}
}

// maxStates caps the state population of the residual product; beyond it
// the analysis gives up rather than blow up.
const maxStates = 512

// subtract refines states with ¬guard: each surviving state additionally
// satisfies the negation of every disjunct of the guard. ok is false when
// the population exceeded maxStates or the guard defeated normalization —
// the caller must then stay silent.
func subtract(states []*state, guard classifier.Node, tree *gtree.Tree, assumeNotNull bool) (out []*state, ok bool) {
	disjuncts, err := classifier.DNF(guard, false)
	if err != nil {
		return nil, false
	}
	for _, conj := range disjuncts {
		// states ∧ ¬conj, where ¬conj = ∨ over atoms of their weak negation.
		var next []*state
		var alts [][]atom
		for _, n := range conj {
			a, interpOK := interp(n, tree)
			if !interpOK {
				a = atom{op: opUnknown}
			}
			alts = append(alts, negAlternatives(a, assumeNotNull))
		}
		if len(conj) == 0 {
			// ¬TRUE: nothing survives a catch-all guard.
			return nil, true
		}
		for _, s := range states {
			for _, altSet := range alts {
				for _, alt := range altSet {
					s2 := s.clone()
					s2.apply(alt, assumeNotNull)
					if s2.sat && s2.satisfiable(tree, assumeNotNull) {
						next = append(next, s2)
						if len(next) > maxStates {
							return nil, false
						}
					}
				}
			}
		}
		states = next
		if len(states) == 0 {
			return nil, true
		}
	}
	return states, true
}

// describe renders a state as a witness, deterministically: variables in
// name order, redundant disequalities (already outside the interval)
// suppressed, closed-domain remainders enumerated.
func (s *state) describe(tree *gtree.Tree) string {
	names := make([]string, 0, len(s.vars))
	for n := range s.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	var parts []string
	for _, name := range names {
		vs := s.vars[name]
		var node *gtree.Node
		if tree != nil {
			node, _ = tree.Node(name)
		}
		switch {
		case vs.isNull:
			parts = append(parts, name+" IS NULL")
		case vs.eq != nil:
			parts = append(parts, name+" = "+(*vs.eq).String())
		default:
			if dom, closed := closedValues(node); closed {
				var rem []string
				for _, d := range dom {
					if !vs.excludes(d) {
						rem = append(rem, d.String())
					}
				}
				if len(rem) > 0 && len(rem) < len(dom) {
					parts = append(parts, name+" in {"+strings.Join(rem, ", ")+"}")
					continue
				}
			}
			wrote := false
			if vs.hasIv && !vs.iv.isFull() {
				parts = append(parts, name+" in "+vs.iv.String())
				wrote = true
			}
			if len(vs.ne) > 0 {
				var nes []string
				for _, v := range vs.ne {
					if vs.hasIv && v.IsNumeric() && !vs.iv.contains(v.AsFloat()) {
						continue // implied by the interval
					}
					nes = append(nes, name+" <> "+v.String())
				}
				sort.Strings(nes)
				parts = append(parts, nes...)
				wrote = wrote || len(nes) > 0
			}
			if !wrote && vs.notNull {
				parts = append(parts, name+" IS NOT NULL")
			}
		}
	}
	if len(parts) == 0 {
		return "any input"
	}
	return strings.Join(parts, " AND ")
}

// tail reports whether the state's only content is open-ended numeric
// range(s) — the "values beyond the outermost threshold" case classlint
// traditionally reported without failing (GV109 rather than GV103).
func (s *state) tail(tree *gtree.Tree) bool {
	halfInf := false
	for name, vs := range s.vars {
		if vs.isNull || vs.eq != nil {
			return false
		}
		if tree != nil {
			if node, err := tree.Node(name); err == nil {
				if _, closed := closedValues(node); closed {
					return false
				}
			}
		}
		if vs.hasIv && !vs.iv.isFull() {
			if vs.iv.bounded() {
				return false
			}
			halfInf = true
		}
	}
	return halfInf
}
