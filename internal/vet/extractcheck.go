package vet

import (
	"guava/internal/gtree"
	"guava/internal/relstore"
	"guava/internal/textsrc"
)

// This file vets extraction specs (GV308–GV312): the declarative report
// descriptions internal/textsrc compiles into deterministic extractors. A
// spec freshly derived into its own g-tree vets trivially clean; the checks
// earn their keep when a hand-edited spec is held against the g-tree an
// existing study already binds to — the moment vocabulary or slot drift
// between report and form becomes a silent data-loss bug.

// CheckExtractSpec vets one extraction spec, optionally against the g-tree
// its contributor serves (tree may be nil for spec-only vetting):
//
//	GV308  the spec fails structural validation
//	GV311  two matchers claim the same anchor (Compile would refuse)
//	GV309  the report key is not the g-tree key, or a required field has
//	       no data-storing slot
//	GV310  a field's stored kind or vocabulary disagrees with its slot
//	GV312  an optional field has no slot, or a slot no rule fills
func CheckExtractSpec(rep *Report, spec *textsrc.ExtractSpec, tree *gtree.Tree, file string) {
	pos := Pos{File: file}
	if err := spec.Validate(); err != nil {
		// A broken structure makes every downstream check unreliable.
		rep.Add("GV308", pos, "%v", err)
		return
	}
	for _, o := range spec.Overlaps() {
		rep.Add("GV311", pos, "spec %s: %s", spec.Name, o)
	}
	if tree == nil {
		return
	}

	if spec.Key != tree.KeyColumn {
		rep.Add("GV309", pos,
			"spec %s keys reports by %q, but contributor %q's g-tree keys instances by %q",
			spec.Name, spec.Key, tree.Contributor, tree.KeyColumn)
	}

	filled := map[string]bool{}
	spec.Fields(func(sec textsrc.SectionSpec, f textsrc.FieldSpec) {
		filled[f.Name] = true
		rule := spec.RuleID(sec, f)
		n, err := tree.Node(f.Name)
		if err != nil || !n.StoresData() {
			if f.Required {
				rep.Add("GV309", pos,
					"rule %s is required but has no data-storing slot in contributor %q's g-tree",
					rule, tree.Contributor)
			} else {
				rep.Add("GV312", pos,
					"rule %s has no data-storing slot in contributor %q's g-tree; extracted values are dropped",
					rule, tree.Contributor)
			}
			return
		}
		if k := spec.FieldKind(f); n.DataType != relstore.KindNull && k != n.DataType {
			rep.Add("GV310", pos,
				"rule %s extracts %s, but g-tree slot %s stores %s", rule, k, n.Name, n.DataType)
		}
		// Every vocabulary entry must store a value the slot's control can
		// actually hold; a phrase mapping outside the options is exactly the
		// foreign-option vacuity GV107 flags on the classifier side.
		if len(f.Vocab) > 0 && len(n.Options) > 0 && !n.AllowFreeText {
			for _, v := range f.Vocab {
				ok := false
				for _, opt := range n.Options {
					if v.Stored.Equal(opt.Stored) {
						ok = true
						break
					}
				}
				if !ok {
					rep.Add("GV310", pos,
						"rule %s maps phrase %q to %s, which slot %s's options can never store",
						rule, v.Text, v.Stored, n.Name)
				}
			}
		}
	})

	// The reverse direction: slots the spec never fills stay permanently
	// NULL for this contributor — legitimate only while a report family is
	// being brought up, so a warning.
	tree.Root.Walk(func(n *gtree.Node) {
		if n.StoresData() && !filled[n.Name] {
			rep.Add("GV312", pos,
				"g-tree slot %s of contributor %q is filled by no extraction rule of spec %s",
				n.Name, tree.Contributor, spec.Name)
		}
	})
}
