package vet

// predsat.go bridges compiled relstore predicates into the guard
// satisfiability engine (sat.go). Classifier guards are vetted before
// compilation, but the predicates a compiled plan actually evaluates are
// conjunctions the compiler assembled — entity selection ∧ study condition ∧
// ¬cleaner selections — and a contradiction can appear only after that
// conjunction exists. internal/plancheck proves such predicates empty
// through PredUnsat.
//
// The translation is a sound over-approximation: any predicate fragment the
// bridge cannot interpret (column-to-column comparisons, arithmetic, CASE,
// function calls) widens to TRUE, so "unsatisfiable" verdicts are proofs
// while "satisfiable" may just mean "too clever to analyze". That keeps the
// plan analyzer at zero false positives by construction.

import (
	"guava/internal/relstore"
)

// predDNF is a disjunction of conjunctions of sat.go atoms. No disjuncts
// means FALSE; a single empty conjunct means TRUE.
type predDNF [][]atom

var dnfTrue = predDNF{{}}
var dnfFalse = predDNF{}

// PredUnsat reports whether the compiled predicate p is provably
// unsatisfiable over rows where every column named in notNull is non-NULL.
// A nil predicate is TRUE. The proof reuses the interval/disequality state
// machine behind GV105; when the predicate defeats normalization (or the
// DNF would exceed the sat.go state budget) the answer is false, never a
// guess.
func PredUnsat(p relstore.Pred, notNull []string) bool {
	dnf, ok := predToDNF(p, false)
	if !ok {
		return false
	}
	for _, conj := range dnf {
		s := newState()
		for _, col := range notNull {
			s.apply(atom{op: opNotNull, name: col}, false)
		}
		for _, a := range conj {
			s.apply(a, false)
			if !s.sat {
				break
			}
		}
		if s.sat && s.satisfiable(nil, false) {
			return false
		}
	}
	return true
}

// predToDNF normalizes p (negated when neg is set) into atom DNF. The ok
// result is false when the normalization blew past the state budget; callers
// must then decline to conclude anything.
func predToDNF(p relstore.Pred, neg bool) (predDNF, bool) {
	if p == nil {
		return constDNF(!neg), true
	}
	switch q := p.(type) {
	case relstore.BoolLit:
		return constDNF(q.V != neg), true
	case *relstore.BoolLit:
		return constDNF(q.V != neg), true
	case relstore.NotPred:
		return predToDNF(q.P, !neg)
	case *relstore.NotPred:
		return predToDNF(q.P, !neg)
	case relstore.AndPred:
		if neg {
			return unionDNF(q.Ps, true)
		}
		return productDNF(q.Ps, false)
	case *relstore.AndPred:
		if neg {
			return unionDNF(q.Ps, true)
		}
		return productDNF(q.Ps, false)
	case relstore.OrPred:
		if neg {
			return productDNF(q.Ps, true)
		}
		return unionDNF(q.Ps, false)
	case *relstore.OrPred:
		if neg {
			return productDNF(q.Ps, true)
		}
		return unionDNF(q.Ps, false)
	case relstore.CmpPred:
		return cmpDNF(q, neg), true
	case *relstore.CmpPred:
		return cmpDNF(*q, neg), true
	case relstore.NullPred:
		return nullDNF(q, neg), true
	case *relstore.NullPred:
		return nullDNF(*q, neg), true
	case relstore.InPred:
		return inDNF(q, neg), true
	case *relstore.InPred:
		return inDNF(*q, neg), true
	case relstore.ExprPred:
		return exprTruthDNF(q.E, neg), true
	case *relstore.ExprPred:
		return exprTruthDNF(q.E, neg), true
	default:
		return dnfTrue, true // unknown predicate form: widen
	}
}

func constDNF(v bool) predDNF {
	if v {
		return dnfTrue
	}
	return dnfFalse
}

// unionDNF is disjunction: DNF(p1) ∪ DNF(p2) ∪ …
func unionDNF(ps []relstore.Pred, neg bool) (predDNF, bool) {
	var out predDNF
	for _, p := range ps {
		d, ok := predToDNF(p, neg)
		if !ok {
			return nil, false
		}
		out = append(out, d...)
		if len(out) > maxStates {
			return nil, false
		}
	}
	return out, true
}

// productDNF is conjunction: the cross-product of the children's disjuncts.
func productDNF(ps []relstore.Pred, neg bool) (predDNF, bool) {
	acc := dnfTrue
	for _, p := range ps {
		d, ok := predToDNF(p, neg)
		if !ok {
			return nil, false
		}
		var next predDNF
		for _, a := range acc {
			for _, b := range d {
				conj := make([]atom, 0, len(a)+len(b))
				conj = append(conj, a...)
				conj = append(conj, b...)
				next = append(next, conj)
				if len(next) > maxStates {
					return nil, false
				}
			}
		}
		acc = next
		if len(acc) == 0 {
			return dnfFalse, true // one child FALSE kills the conjunction
		}
	}
	return acc, true
}

// cmpAtom interprets a column-vs-literal comparison as a single atom. The
// bool result is false when the shape is uninterpretable (column-to-column,
// arithmetic operand, ordered comparison with a non-numeric literal).
func cmpAtom(c relstore.CmpPred) (atom, bool) {
	col, lit, op, ok := normalizeCmp(c)
	if !ok {
		return atom{}, false
	}
	if lit.IsNull() {
		// Two-valued NULL comparison semantics (see CmpPred.Eval):
		// equality holds only for NULL, inequality only for non-NULL,
		// ordered comparisons never hold.
		switch op {
		case opEq:
			return atom{op: opIsNull, name: col}, true
		case opNe:
			return atom{op: opNotNull, name: col}, true
		default:
			return atom{op: opNever}, true
		}
	}
	if op.ordered() && !lit.IsNumeric() {
		// sat.go intervals are numeric; string ordering is out of scope.
		return atom{}, false
	}
	return atom{op: op, name: col, val: lit}, true
}

// normalizeCmp puts the column on the left, mirroring the operator when the
// literal is on the left instead.
func normalizeCmp(c relstore.CmpPred) (col string, lit relstore.Value, op atomOp, ok bool) {
	op, ok = cmpAtomOps[c.Op]
	if !ok {
		return "", relstore.Value{}, opUnknown, false
	}
	if cr, isCol := asColRef(c.L); isCol {
		if lv, isLit := asLit(c.R); isLit {
			return cr, lv, op, true
		}
		return "", relstore.Value{}, opUnknown, false
	}
	if lv, isLit := asLit(c.L); isLit {
		if cr, isCol := asColRef(c.R); isCol {
			return cr, lv, mirrorOps[op], true
		}
	}
	return "", relstore.Value{}, opUnknown, false
}

var cmpAtomOps = map[relstore.CmpOp]atomOp{
	relstore.CmpEq: opEq,
	relstore.CmpNe: opNe,
	relstore.CmpLt: opLt,
	relstore.CmpLe: opLe,
	relstore.CmpGt: opGt,
	relstore.CmpGe: opGe,
}

func cmpDNF(c relstore.CmpPred, neg bool) predDNF {
	a, ok := cmpAtom(c)
	if !ok {
		return dnfTrue
	}
	if !neg {
		return predDNF{{a}}
	}
	return negDNF(a)
}

// negDNF turns ¬atom into a disjunction of atoms. assumeNotNull is false:
// the NULL alternative for ordered comparisons must stay in play.
func negDNF(a atom) predDNF {
	var out predDNF
	for _, alt := range negAlternatives(a, false) {
		out = append(out, []atom{alt})
	}
	if len(out) == 0 {
		return dnfFalse // ¬presence: the relation atom always holds
	}
	return out
}

func nullDNF(p relstore.NullPred, neg bool) predDNF {
	col, ok := asColRef(p.E)
	if !ok {
		return dnfTrue
	}
	isNull := !p.Negate
	if neg {
		isNull = !isNull
	}
	if isNull {
		return predDNF{{atom{op: opIsNull, name: col}}}
	}
	return predDNF{{atom{op: opNotNull, name: col}}}
}

func inDNF(p relstore.InPred, neg bool) predDNF {
	col, ok := asColRef(p.E)
	if !ok {
		return dnfTrue
	}
	if !neg {
		// x IN (a, b) ≡ x = a ∨ x = b; the empty list is FALSE.
		var out predDNF
		for _, v := range p.List {
			a, ok := cmpAtom(relstore.Cmp(relstore.CmpEq, relstore.Col(col), relstore.Lit(v)))
			if !ok {
				return dnfTrue
			}
			out = append(out, []atom{a})
		}
		return out
	}
	// ¬(x IN (a, b)) ≡ x ≠ a ∧ x ≠ b — one conjunct. opNe atoms keep NULL
	// satisfiable, matching the two-valued Eval.
	var conj []atom
	for _, v := range p.List {
		a, ok := cmpAtom(relstore.Cmp(relstore.CmpNe, relstore.Col(col), relstore.Lit(v)))
		if !ok {
			return dnfTrue
		}
		conj = append(conj, a)
	}
	return predDNF{conj}
}

// exprTruthDNF handles Truth(expr). A truthy value is necessarily non-NULL,
// so the positive polarity soundly weakens to IS NOT NULL for bare columns;
// everything else widens to TRUE.
func exprTruthDNF(e relstore.Expr, neg bool) predDNF {
	col, ok := asColRef(e)
	if !ok || neg {
		return dnfTrue
	}
	return predDNF{{atom{op: opNotNull, name: col}}}
}

func asColRef(e relstore.Expr) (string, bool) {
	switch x := e.(type) {
	case relstore.ColRef:
		return x.Name, true
	case *relstore.ColRef:
		return x.Name, true
	}
	return "", false
}

func asLit(e relstore.Expr) (relstore.Value, bool) {
	switch x := e.(type) {
	case relstore.LitExpr:
		return x.V, true
	case *relstore.LitExpr:
		return x.V, true
	}
	return relstore.Value{}, false
}
