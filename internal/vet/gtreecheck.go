package vet

import (
	"sort"
	"strings"

	"guava/internal/classifier"
	"guava/internal/gtree"
)

// CheckTree runs the structural g-tree checks: enablement cycles (GV201),
// enablement guards naming unknown or non-data-storing controls (GV202), and
// equals-enablements against values the controlling node can never store
// (GV203). G-trees carry no source positions, so diagnostics anchor to the
// artifact as a whole.
func CheckTree(rep *Report, tree *gtree.Tree, file string) {
	var nodes []*gtree.Node
	tree.Root.Walk(func(n *gtree.Node) { nodes = append(nodes, n) })
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })

	pos := Pos{File: file}
	for _, n := range nodes {
		e := n.Enablement
		if e.Kind != "answered" && e.Kind != "equals" {
			continue
		}
		ctrl, err := tree.Node(e.Control)
		if err != nil {
			rep.Add("GV202", pos, "g-tree %s/%s: node %q is enabled by unknown control %q",
				tree.Contributor, tree.FormName(), n.Name, e.Control)
			continue
		}
		if ctrl.Kind != gtree.FieldNode {
			rep.Add("GV202", pos, "g-tree %s/%s: node %q is enabled by %q, a %s node that stores no data",
				tree.Contributor, tree.FormName(), n.Name, ctrl.Name, ctrl.Kind)
			continue
		}
		if e.Kind == "equals" && !e.Value.IsNull() {
			if dom, closed := closedValues(ctrl); closed {
				found := false
				for _, d := range dom {
					if valueEq(e.Value, d) {
						found = true
						break
					}
				}
				if !found {
					var opts []string
					for _, d := range dom {
						opts = append(opts, d.String())
					}
					rep.Add("GV203", pos,
						"g-tree %s/%s: node %q is enabled when %q = %s, but %q can only store %s",
						tree.Contributor, tree.FormName(), n.Name, ctrl.Name, e.Value, ctrl.Name,
						strings.Join(opts, ", "))
				}
			}
		}
	}

	// Cycle detection over the enablement edges, entered from every node so
	// cycles unreachable from any particular start still surface; each cycle
	// is reported once under a canonical rotation.
	reported := map[string]bool{}
	for _, start := range nodes {
		path := []string{}
		index := map[string]int{}
		cur := start
		for cur.Enablement.Kind == "answered" || cur.Enablement.Kind == "equals" {
			if i, ok := index[cur.Name]; ok {
				cyc := append([]string{}, path[i:]...)
				key := canonicalCycle(cyc)
				if !reported[key] {
					reported[key] = true
					rep.Add("GV201", pos, "g-tree %s/%s: enablement guards form a cycle: %s",
						tree.Contributor, tree.FormName(), strings.Join(append(cyc, cyc[0]), " -> "))
				}
				break
			}
			index[cur.Name] = len(path)
			path = append(path, cur.Name)
			next, err := tree.Node(cur.Enablement.Control)
			if err != nil {
				break // GV202 above
			}
			cur = next
		}
	}
}

// canonicalCycle keys a cycle independent of entry point by rotating its
// smallest name to the front.
func canonicalCycle(cyc []string) string {
	min := 0
	for i, n := range cyc {
		if n < cyc[min] {
			min = i
		}
	}
	rot := append(append([]string{}, cyc[min:]...), cyc[:min]...)
	return strings.Join(rot, "\x00")
}

// CheckDeadOptions emits GV204 for answer options of closed-option controls
// that no rule of any supplied classifier can match: the guard conjoined
// with "control = option" is unsatisfiable in every rule that references the
// control. Rules that never mention the control are excluded — they match
// regardless of the option, which says nothing about the option's vocabulary
// — and uninterpretable guards conservatively keep options alive.
func CheckDeadOptions(rep *Report, tree *gtree.Tree, file string, cs []*classifier.Classifier) {
	type ref struct {
		guard classifier.Node
	}
	var fields []*gtree.Node
	tree.Root.Walk(func(n *gtree.Node) {
		if n.Kind == gtree.FieldNode {
			fields = append(fields, n)
		}
	})
	sort.Slice(fields, func(i, j int) bool { return fields[i].Name < fields[j].Name })

	for _, n := range fields {
		if _, closed := closedValues(n); !closed {
			continue
		}
		var refs []ref
		for _, c := range cs {
			for _, r := range c.Rules {
				mentions := false
				classifier.WalkIdents(r.Guard, func(id *classifier.Ident) {
					if id.Name == n.Name {
						mentions = true
					}
				})
				if mentions {
					refs = append(refs, ref{guard: r.Guard})
				}
			}
		}
		if len(refs) == 0 {
			continue
		}
		for _, opt := range n.Options {
			if opt.Stored.IsNull() {
				continue
			}
			alive := false
			for _, rf := range refs {
				disjuncts, err := classifier.DNF(rf.guard, false)
				if err != nil {
					alive = true
					break
				}
				for _, conj := range disjuncts {
					s := newState()
					interpretable := true
					for _, an := range conj {
						a, ok := interp(an, tree)
						if !ok {
							interpretable = false
							break
						}
						s.apply(a, false)
					}
					if !interpretable {
						alive = true
						break
					}
					s.apply(atom{op: opEq, name: n.Name, val: opt.Stored}, false)
					if s.sat && s.satisfiable(tree, false) {
						alive = true
						break
					}
				}
				if alive {
					break
				}
			}
			if !alive {
				rep.Add("GV204", Pos{File: file},
					"g-tree %s/%s: answer option %q of %q (stored %s) is matched by no classifier rule",
					tree.Contributor, tree.FormName(), opt.Display, n.Name, opt.Stored)
			}
		}
	}
}
