package vet

import (
	"strings"
	"testing"

	"guava/internal/etl"
	"guava/internal/gtree"
	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/textsrc"
)

func extractSpecFixture() *textsrc.ExtractSpec {
	return &textsrc.ExtractSpec{
		Name: "NoteReport", Title: "Endoscopy progress note", Key: "NoteID",
		Sections: []textsrc.SectionSpec{
			{Heading: "HISTORY", Fields: []textsrc.FieldSpec{
				{Name: "SmokeStatus", Label: "Smoking status", Kind: relstore.KindString, Required: true,
					Vocab: []textsrc.VocabEntry{
						{Text: "never smoker", Stored: relstore.Str("Never")},
						{Text: "current smoker", Stored: relstore.Str("Current")},
					}},
				{Name: "AgeYears", Label: "Age", Kind: relstore.KindInt},
			}},
			{Heading: "COMPLICATIONS", Fields: []textsrc.FieldSpec{
				{Name: "HypoxiaTransient", Label: "transient hypoxia", Matcher: textsrc.Enumeration},
			}},
		},
	}
}

func deriveTree(t *testing.T, spec *textsrc.ExtractSpec) *gtree.Tree {
	t.Helper()
	form, err := spec.Form()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := gtree.Derive("Notes", 1, form)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func codes(rep *Report) []string {
	var out []string
	for _, d := range rep.Diags {
		out = append(out, d.Code)
	}
	return out
}

func hasCode(rep *Report, code string) bool {
	for _, d := range rep.Diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

// TestCheckExtractSpecSelfDerived: a spec vetted against the very g-tree it
// derives must be clean — the co-design loop cannot cry wolf on itself.
func TestCheckExtractSpecSelfDerived(t *testing.T) {
	spec := extractSpecFixture()
	rep := &Report{}
	CheckExtractSpec(rep, spec, deriveTree(t, spec), "notes.extract")
	if len(rep.Diags) != 0 {
		t.Fatalf("self-derived spec produced diagnostics: %v", codes(rep))
	}
}

// TestCheckExtractSpecDrift vets a hand-edited spec against the tree the
// original derived — the vocabulary-drift scenario GV309/GV310/GV312 exist
// for.
func TestCheckExtractSpecDrift(t *testing.T) {
	tree := deriveTree(t, extractSpecFixture())

	t.Run("GV308", func(t *testing.T) {
		spec := extractSpecFixture()
		spec.Sections[0].Fields[0].Name = "" // structural breakage
		rep := &Report{}
		CheckExtractSpec(rep, spec, tree, "notes.extract")
		if got := codes(rep); len(got) != 1 || got[0] != "GV308" {
			t.Fatalf("codes = %v, want [GV308] only (invalid spec must short-circuit)", got)
		}
	})

	t.Run("GV309-required-slot", func(t *testing.T) {
		spec := extractSpecFixture()
		spec.Sections[0].Fields = append(spec.Sections[0].Fields, textsrc.FieldSpec{
			Name: "BMI", Label: "Body mass index", Kind: relstore.KindFloat, Required: true,
		})
		rep := &Report{}
		CheckExtractSpec(rep, spec, tree, "notes.extract")
		if !hasCode(rep, "GV309") {
			t.Fatalf("required unmapped field did not raise GV309: %v", codes(rep))
		}
	})

	t.Run("GV309-key-mismatch", func(t *testing.T) {
		spec := extractSpecFixture()
		spec.Key = "ReportID"
		rep := &Report{}
		CheckExtractSpec(rep, spec, tree, "notes.extract")
		if !hasCode(rep, "GV309") {
			t.Fatalf("key mismatch did not raise GV309: %v", codes(rep))
		}
	})

	t.Run("GV310-kind", func(t *testing.T) {
		spec := extractSpecFixture()
		spec.Sections[0].Fields[1].Kind = relstore.KindString // tree slot stores INTEGER
		rep := &Report{}
		CheckExtractSpec(rep, spec, tree, "notes.extract")
		if !hasCode(rep, "GV310") {
			t.Fatalf("kind drift did not raise GV310: %v", codes(rep))
		}
	})

	t.Run("GV310-vocab", func(t *testing.T) {
		spec := extractSpecFixture()
		spec.Sections[0].Fields[0].Vocab = append(spec.Sections[0].Fields[0].Vocab,
			textsrc.VocabEntry{Text: "pipe smoker", Stored: relstore.Str("Pipe")})
		rep := &Report{}
		CheckExtractSpec(rep, spec, tree, "notes.extract")
		if !hasCode(rep, "GV310") {
			t.Fatalf("foreign vocabulary value did not raise GV310: %v", codes(rep))
		}
	})

	t.Run("GV311", func(t *testing.T) {
		spec := extractSpecFixture()
		spec.Sections[0].Fields[1].Label = "Smoking status"
		rep := &Report{}
		CheckExtractSpec(rep, spec, tree, "notes.extract")
		if !hasCode(rep, "GV311") {
			t.Fatalf("overlapping anchors did not raise GV311: %v", codes(rep))
		}
	})

	t.Run("GV312-both-directions", func(t *testing.T) {
		spec := extractSpecFixture()
		// Rename an optional field: its slot goes unfilled AND the rule
		// extracts to nowhere — one warning each way, no errors.
		spec.Sections[0].Fields[1].Name = "PatientAge"
		rep := &Report{}
		CheckExtractSpec(rep, spec, tree, "notes.extract")
		n := 0
		for _, d := range rep.Diags {
			if d.Code == "GV312" {
				n++
			}
		}
		if n != 2 || rep.HasErrors() {
			t.Fatalf("want exactly 2 GV312 warnings and no errors, got %v", codes(rep))
		}
	})
}

// TestCheckStudyLayoutHooks proves the study-level check reaches the layout
// misuse diagnostics for API-built studies (no manifest, no files on disk).
func TestCheckStudyLayoutHooks(t *testing.T) {
	spec := extractSpecFixture()
	tree := deriveTree(t, spec)
	form, err := spec.Form()
	if err != nil {
		t.Fatal(err)
	}
	info, err := patterns.FromUIForm(form)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := textsrc.NewLayout(spec)
	if err != nil {
		t.Fatal(err)
	}
	contrib := func(stack *patterns.Stack) *etl.StudySpec {
		return &etl.StudySpec{Name: "Hooks", Contributors: []*etl.ContributorPlan{
			{Name: "Notes", Tree: tree, Form: info, Stack: stack},
		}}
	}
	cases := []struct {
		name  string
		stack *patterns.Stack
		code  string
		want  bool
	}{
		{"sparse-too-few-slots", patterns.NewStack(patterns.SparseWide{Slots: 2}), "GV313", true},
		{"sparse-enough-slots", patterns.NewStack(patterns.SparseWide{Slots: 4}), "GV313", false},
		{"multi-unknown-column", patterns.NewStack(patterns.MultiValued{Columns: []string{"Nope"}}), "GV314", true},
		{"multi-valid-column", patterns.NewStack(patterns.MultiValued{Columns: []string{"SmokeStatus"}}), "GV314", false},
		{"text-layout-clean", patterns.NewStack(layout), "GV309", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := &Report{}
			CheckStudy(rep, contrib(tc.stack), nil, nil)
			if got := hasCode(rep, tc.code); got != tc.want {
				t.Errorf("hasCode(%s) = %v, want %v; codes %v", tc.code, got, tc.want, codes(rep))
			}
		})
	}

	// A text layout whose spec drifted from the contributor's tree must
	// surface the extract diagnostics through CheckStudy itself.
	drifted := extractSpecFixture()
	drifted.Sections[0].Fields = append(drifted.Sections[0].Fields, textsrc.FieldSpec{
		Name: "BMI", Label: "Body mass index", Kind: relstore.KindFloat, Required: true,
	})
	dl, err := textsrc.NewLayout(drifted)
	if err != nil {
		t.Fatal(err)
	}
	dform, err := drifted.Form()
	if err != nil {
		t.Fatal(err)
	}
	dinfo, err := patterns.FromUIForm(dform)
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{}
	CheckStudy(rep, &etl.StudySpec{Name: "Hooks", Contributors: []*etl.ContributorPlan{
		{Name: "Notes", Tree: tree, Form: dinfo, Stack: patterns.NewStack(dl)},
	}}, nil, nil)
	if !hasCode(rep, "GV309") {
		t.Fatalf("drifted text layout did not raise GV309 through CheckStudy: %v", codes(rep))
	}
	found := false
	for _, d := range rep.Diags {
		if d.Code == "GV309" && strings.Contains(d.Message, "NoteReport/HISTORY/BMI") {
			found = true
		}
	}
	if !found {
		t.Errorf("GV309 message does not carry the rule id: %v", rep.Diags)
	}
}
