package vet

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"guava/internal/classifier"
	"guava/internal/etl"
	"guava/internal/gtree"
	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/study"
	"guava/internal/textsrc"
)

// This file is guavavet's artifact loader: it reads a set of files — g-tree
// XML, study-schema XML, classifier rule files, extraction specs (.extract,
// the JSON rendering internal/textsrc decodes), and an optional study
// manifest — into a Bundle and vets whatever arrived. Artifacts that fail to
// load become GV001 diagnostics rather than aborting, so one corrupt file
// does not hide findings in the rest of the study.
//
// Classifier files (.clf) are rule text with '#' directive lines:
//
//	# name: Habits (Cancer)
//	# description: smoking habits for the cancer study
//	# kind: domain            (or: entity, cleaner)
//	# entity: Procedure
//	# attribute: Smoking habits
//	# domain: D3
//	# type: TEXT
//	# elements: None, Light, Moderate, Heavy
//	# tree: CORI              (bind against this contributor's g-tree)
//	None <- PacksPerDay = 0
//	...
//
// Directive lines are replaced by blank lines before parsing, so every token
// position reported in a diagnostic is the real file line.
//
// Study manifests (.study) wire the artifacts into an etl.StudySpec:
//
//	study: Cancer
//	column: Smoking_D3 = Smoking habits:D3
//	contributor: CORI
//	entity: CORI Procedures
//	use: Smoking_D3 <- Habits (Cancer)
//	condition: BMI > 10
//	clean: Drop test records
//	stack: naive audit rename:Smoking=SMK
type Bundle struct {
	// Trees and TreeFiles index loaded g-trees by contributor name.
	Trees     map[string]*gtree.Tree
	TreeFiles map[string]string
	// Schema is the loaded study schema, if any.
	Schema     *study.Schema
	SchemaFile string
	// Classifiers are the loaded classifier files, in load order.
	Classifiers []*LoadedClassifier
	// Extracts are the loaded extraction-spec files, in load order.
	Extracts []*LoadedExtract

	manifest     *manifestData
	manifestFile string
	loadRep      Report
}

// LoadedExtract is one parsed .extract artifact: a textsrc.ExtractSpec in
// its JSON rendering, optionally naming the contributor g-tree to vet
// against (mirroring the classifiers' "# tree:" directive).
type LoadedExtract struct {
	Spec *textsrc.ExtractSpec
	File string
	// TreeName is the JSON "tree" field ("" for tree-less vetting).
	TreeName string
}

// LoadedClassifier is one parsed .clf artifact.
type LoadedClassifier struct {
	C    *classifier.Classifier
	File string
	// TreeName is the "# tree:" directive — the contributor whose g-tree the
	// classifier binds against ("" for tree-less vetting).
	TreeName string
}

type manifestColumn struct {
	As, Attribute, Domain string
}

type manifestContributor struct {
	Name      string
	Entity    string
	Uses      map[string]string
	UseOrder  []string
	Cleaners  []string
	Condition string
	Stack     []string
}

type manifestData struct {
	Study    string
	Columns  []manifestColumn
	Contribs []*manifestContributor
}

// LoadPaths reads the given files (directories expand to their *.clf, *.xml,
// *.study, and *.extract entries, sorted). Load failures are recorded as GV001
// diagnostics on the bundle.
func LoadPaths(paths []string) *Bundle {
	b := &Bundle{Trees: map[string]*gtree.Tree{}, TreeFiles: map[string]string{}}
	var files []string
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			b.loadRep.Add("GV001", Pos{File: p}, "cannot read artifact: %v", err)
			continue
		}
		if !st.IsDir() {
			files = append(files, p)
			continue
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			b.loadRep.Add("GV001", Pos{File: p}, "cannot read artifact directory: %v", err)
			continue
		}
		var names []string
		for _, e := range entries {
			switch filepath.Ext(e.Name()) {
			case ".clf", ".xml", ".study", ".extract":
				names = append(names, filepath.Join(p, e.Name()))
			}
		}
		sort.Strings(names)
		files = append(files, names...)
	}
	for _, f := range files {
		b.loadFile(f)
	}
	return b
}

func (b *Bundle) loadFile(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		b.loadRep.Add("GV001", Pos{File: path}, "cannot read artifact: %v", err)
		return
	}
	switch filepath.Ext(path) {
	case ".clf":
		b.loadClassifier(path, string(data))
	case ".xml":
		b.loadXML(path, data)
	case ".study":
		b.loadManifest(path, string(data))
	case ".extract":
		b.loadExtract(path, data)
	default:
		b.loadRep.Add("GV001", Pos{File: path}, "unsupported artifact type (want .clf, .xml, .study, or .extract)")
	}
}

func (b *Bundle) loadXML(path string, data []byte) {
	switch {
	case bytes.Contains(data, []byte("<studySchema")):
		s, err := study.DecodeXML(bytes.NewReader(data))
		if err != nil {
			b.loadRep.Add("GV001", Pos{File: path}, "%v", err)
			return
		}
		if b.Schema != nil {
			b.loadRep.Add("GV001", Pos{File: path}, "duplicate study schema (already loaded %s)", b.SchemaFile)
			return
		}
		b.Schema, b.SchemaFile = s, path
	case bytes.Contains(data, []byte("<gtree")):
		t, err := gtree.DecodeXML(bytes.NewReader(data))
		if err != nil {
			b.loadRep.Add("GV001", Pos{File: path}, "%v", err)
			return
		}
		if prev, dup := b.Trees[t.Contributor]; dup && prev != nil {
			b.loadRep.Add("GV001", Pos{File: path},
				"duplicate g-tree for contributor %q (already loaded %s)", t.Contributor, b.TreeFiles[t.Contributor])
			return
		}
		b.Trees[t.Contributor] = t
		b.TreeFiles[t.Contributor] = path
	default:
		b.loadRep.Add("GV001", Pos{File: path}, "unrecognized XML artifact (expected <gtree> or <studySchema>)")
	}
}

// kindFromString parses the SQL-ish kind names relstore renders.
func kindFromString(s string) (relstore.Kind, bool) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INTEGER":
		return relstore.KindInt, true
	case "REAL":
		return relstore.KindFloat, true
	case "TEXT":
		return relstore.KindString, true
	case "BOOLEAN":
		return relstore.KindBool, true
	}
	return relstore.KindNull, false
}

func (b *Bundle) loadClassifier(path, src string) {
	lines := strings.Split(src, "\n")
	name := strings.TrimSuffix(filepath.Base(path), ".clf")
	kind, desc, entity, attribute, domain, treeName := "domain", "", "", "", "", ""
	var elements []string
	valKind := relstore.KindNull
	for i, line := range lines {
		t := strings.TrimSpace(line)
		if !strings.HasPrefix(t, "#") {
			continue
		}
		lines[i] = "" // keep token lines equal to file lines
		key, val, ok := strings.Cut(strings.TrimSpace(strings.TrimPrefix(t, "#")), ":")
		if !ok {
			continue // plain comment
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "name":
			name = val
		case "description":
			desc = val
		case "kind":
			kind = val
		case "entity":
			entity = val
		case "attribute":
			attribute = val
		case "domain":
			domain = val
		case "tree":
			treeName = val
		case "type":
			k, ok := kindFromString(val)
			if !ok {
				b.loadRep.Add("GV001", Pos{File: path, Line: i + 1, Col: 1}, "unknown domain type %q", val)
				return
			}
			valKind = k
		case "elements":
			for _, e := range strings.Split(val, ",") {
				if e = strings.TrimSpace(e); e != "" {
					elements = append(elements, e)
				}
			}
		}
	}
	rules := strings.Join(lines, "\n")
	var c *classifier.Classifier
	var err error
	switch kind {
	case "entity":
		c, err = classifier.ParseEntity(name, desc, entity, rules)
	case "cleaner":
		c, err = classifier.ParseCleaner(name, desc, rules)
	case "domain":
		if len(elements) > 0 && valKind == relstore.KindNull {
			valKind = relstore.KindString
		}
		target := classifier.Target{
			Entity: entity, Attribute: attribute, Domain: domain,
			Kind: valKind, Elements: elements,
		}
		c, err = classifier.Parse(name, desc, target, rules)
	default:
		b.loadRep.Add("GV001", Pos{File: path}, "unknown classifier kind %q (want domain, entity, or cleaner)", kind)
		return
	}
	if err != nil {
		pos := Pos{File: path}
		var cerr *classifier.Error
		if errors.As(err, &cerr) && cerr.Line > 0 {
			pos.Line, pos.Col = cerr.Line, cerr.Col
		}
		b.loadRep.Add("GV001", pos, "%v", err)
		return
	}
	// A "# tree:" reference is resolved lazily at Vet time — the g-tree may
	// simply load later in the file order.
	b.Classifiers = append(b.Classifiers, &LoadedClassifier{C: c, File: path, TreeName: treeName})
}

// loadExtract parses a .extract artifact. Only JSON syntax errors are load
// failures (GV001); a spec that decodes but violates the structural or
// overlap invariants is kept so Vet can report it precisely as GV308/GV311.
func (b *Bundle) loadExtract(path string, data []byte) {
	spec, treeName, err := textsrc.DecodeJSON(data)
	if err != nil {
		b.loadRep.Add("GV001", Pos{File: path}, "%v", err)
		return
	}
	b.Extracts = append(b.Extracts, &LoadedExtract{Spec: spec, File: path, TreeName: treeName})
}

func (b *Bundle) loadManifest(path, src string) {
	if b.manifest != nil {
		b.loadRep.Add("GV001", Pos{File: path}, "duplicate study manifest (already loaded %s)", b.manifestFile)
		return
	}
	m := &manifestData{}
	var cur *manifestContributor
	for i, line := range strings.Split(src, "\n") {
		pos := Pos{File: path, Line: i + 1, Col: 1}
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		key, val, ok := strings.Cut(t, ":")
		if !ok {
			b.loadRep.Add("GV001", pos, "manifest line is not a 'key: value' directive")
			return
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		needContrib := func() bool {
			if cur == nil {
				b.loadRep.Add("GV001", pos, "%q directive before any contributor", key)
				return false
			}
			return true
		}
		switch key {
		case "study":
			m.Study = val
		case "column":
			as, rest, ok := strings.Cut(val, "=")
			if !ok {
				b.loadRep.Add("GV001", pos, "column directive wants 'As = Attribute:Domain'")
				return
			}
			idx := strings.LastIndex(rest, ":")
			if idx < 0 {
				b.loadRep.Add("GV001", pos, "column directive wants 'As = Attribute:Domain'")
				return
			}
			m.Columns = append(m.Columns, manifestColumn{
				As:        strings.TrimSpace(as),
				Attribute: strings.TrimSpace(rest[:idx]),
				Domain:    strings.TrimSpace(rest[idx+1:]),
			})
		case "contributor":
			cur = &manifestContributor{Name: val, Uses: map[string]string{}}
			m.Contribs = append(m.Contribs, cur)
		case "entity":
			if needContrib() {
				cur.Entity = val
			}
		case "use":
			if needContrib() {
				as, cl, ok := strings.Cut(val, "<-")
				if !ok {
					b.loadRep.Add("GV001", pos, "use directive wants 'Column <- Classifier'")
					return
				}
				as = strings.TrimSpace(as)
				cur.Uses[as] = strings.TrimSpace(cl)
				cur.UseOrder = append(cur.UseOrder, as)
			}
		case "clean":
			if needContrib() {
				cur.Cleaners = append(cur.Cleaners, val)
			}
		case "condition":
			if needContrib() {
				cur.Condition = val
			}
		case "stack":
			if needContrib() {
				cur.Stack = strings.Fields(val)
			}
		default:
			b.loadRep.Add("GV001", pos, "unknown manifest directive %q", key)
			return
		}
	}
	if m.Study == "" {
		b.loadRep.Add("GV001", Pos{File: path}, "manifest has no 'study:' directive")
		return
	}
	b.manifest, b.manifestFile = m, path
}

// naiveForm derives a form's naive-schema info from its g-tree: the instance
// key column followed by one column per data-storing node.
func naiveForm(t *gtree.Tree) (patterns.FormInfo, error) {
	cols := []relstore.Column{{Name: t.KeyColumn, Type: relstore.KindInt, NotNull: true}}
	t.Root.Walk(func(n *gtree.Node) {
		if n.StoresData() {
			cols = append(cols, relstore.Column{Name: n.Name, Type: n.DataType})
		}
	})
	schema, err := relstore.NewSchema(cols...)
	if err != nil {
		return patterns.FormInfo{}, err
	}
	return patterns.FormInfo{Name: t.FormName(), KeyColumn: t.KeyColumn, Schema: schema}, nil
}

// parseStack builds a pattern stack from manifest tokens: a layout (naive,
// generic) followed by transforms (audit, rename:A=B[,C=D]).
func parseStack(tokens []string) (*patterns.Stack, error) {
	layout := patterns.Layout(patterns.Naive{})
	var transforms []patterns.Transform
	for i, tok := range tokens {
		switch {
		case tok == "naive":
			layout = patterns.Naive{}
		case tok == "generic":
			layout = patterns.Generic{}
		case strings.HasPrefix(tok, "sparse:"):
			n, err := strconv.Atoi(strings.TrimPrefix(tok, "sparse:"))
			if err != nil {
				return nil, fmt.Errorf("sparse wants a slot count, got %q", tok)
			}
			layout = patterns.SparseWide{Slots: n}
		case strings.HasPrefix(tok, "multi:"):
			var cols []string
			for _, c := range strings.Split(strings.TrimPrefix(tok, "multi:"), ",") {
				if c = strings.TrimSpace(c); c != "" {
					cols = append(cols, c)
				}
			}
			layout = patterns.MultiValued{Columns: cols}
		case tok == "audit":
			transforms = append(transforms, &patterns.Audit{})
		case strings.HasPrefix(tok, "rename:"):
			m := map[string]string{}
			for _, pair := range strings.Split(strings.TrimPrefix(tok, "rename:"), ",") {
				from, to, ok := strings.Cut(pair, "=")
				if !ok {
					return nil, fmt.Errorf("rename wants From=To pairs, got %q", pair)
				}
				m[strings.TrimSpace(from)] = strings.TrimSpace(to)
			}
			transforms = append(transforms, &patterns.Rename{Physical: m})
		default:
			return nil, fmt.Errorf("unknown stack token %q (position %d)", tok, i+1)
		}
	}
	return patterns.NewStack(layout, transforms...), nil
}

// StudySpec assembles the bundle's study manifest into an etl.StudySpec,
// exactly as the study-level checks see it. It returns false when the bundle
// carries no manifest or the manifest's references do not resolve; resolution
// problems are already reported as GV001/GV3xx by Vet, so callers (the plan
// analyzer) stay silent about them. The second result lists the source files
// behind the spec for diagnostic positions.
func (b *Bundle) StudySpec() (*etl.StudySpec, *StudyFiles, bool) {
	if b.manifest == nil {
		return nil, nil, false
	}
	var scratch Report
	spec, files := b.buildSpec(&scratch)
	if spec == nil {
		return nil, nil, false
	}
	return spec, files, true
}

// buildSpec assembles the manifest into an etl.StudySpec for the study-level
// checks, reporting unresolvable references as GV001.
func (b *Bundle) buildSpec(rep *Report) (*etl.StudySpec, *StudyFiles) {
	m := b.manifest
	mpos := Pos{File: b.manifestFile}
	files := &StudyFiles{
		Manifest:    b.manifestFile,
		Schema:      b.SchemaFile,
		Trees:       b.TreeFiles,
		Classifiers: map[string]string{},
	}
	byName := map[string]*LoadedClassifier{}
	for _, lc := range b.Classifiers {
		if prev, dup := byName[lc.C.Name]; dup {
			rep.Add("GV001", Pos{File: lc.File}, "duplicate classifier %q (already loaded %s)", lc.C.Name, prev.File)
			continue
		}
		byName[lc.C.Name] = lc
		files.Classifiers[lc.C.Name] = lc.File
	}
	resolve := func(name, role, contributor string) *classifier.Classifier {
		lc, ok := byName[name]
		if !ok {
			rep.Add("GV001", mpos, "contributor %q %s references unknown classifier %q", contributor, role, name)
			return nil
		}
		return lc.C
	}
	spec := &etl.StudySpec{Name: m.Study}
	for _, mc := range m.Columns {
		col := etl.ColumnSpec{As: mc.As, Attribute: mc.Attribute, Domain: mc.Domain}
		if b.Schema != nil {
			if d, ok := findDomain(b.Schema, mc.Attribute, mc.Domain); ok {
				col.Kind = d.Kind
			}
		}
		spec.Columns = append(spec.Columns, col)
	}
	for _, mct := range m.Contribs {
		plan := &etl.ContributorPlan{Name: mct.Name, Condition: mct.Condition}
		if t, ok := b.Trees[mct.Name]; ok {
			plan.Tree = t
			form, err := naiveForm(t)
			if err != nil {
				rep.Add("GV001", Pos{File: b.TreeFiles[mct.Name]}, "g-tree yields no naive schema: %v", err)
			} else {
				plan.Form = form
			}
		} else {
			rep.Add("GV001", mpos, "contributor %q has no loaded g-tree", mct.Name)
		}
		stack, err := parseStack(mct.Stack)
		if err != nil {
			rep.Add("GV001", mpos, "contributor %q stack: %v", mct.Name, err)
		} else {
			plan.Stack = stack
		}
		if mct.Entity != "" {
			plan.Entity = resolve(mct.Entity, "entity", mct.Name)
		}
		plan.Classifiers = map[string]*classifier.Classifier{}
		for _, as := range mct.UseOrder {
			if c := resolve(mct.Uses[as], "use", mct.Name); c != nil {
				plan.Classifiers[as] = c
			}
		}
		for _, cl := range mct.Cleaners {
			if c := resolve(cl, "clean", mct.Name); c != nil {
				plan.Cleaners = append(plan.Cleaners, c)
			}
		}
		spec.Contributors = append(spec.Contributors, plan)
	}
	return spec, files
}

// Vet runs every applicable check over the bundle's artifacts and returns
// the sorted report: load errors, per-g-tree structure, per-classifier
// analyses (bound to their "# tree:" contributor when loaded), dead answer
// options, and — when a manifest is present — the study-level wiring against
// the loaded schema.
func (b *Bundle) Vet() *Report {
	rep := &Report{}
	rep.Merge(&b.loadRep)

	var treeNames []string
	for n := range b.Trees {
		treeNames = append(treeNames, n)
	}
	sort.Strings(treeNames)
	for _, n := range treeNames {
		CheckTree(rep, b.Trees[n], b.TreeFiles[n])
	}

	for _, lc := range b.Classifiers {
		var tree *gtree.Tree
		if lc.TreeName != "" {
			t, ok := b.Trees[lc.TreeName]
			if !ok {
				rep.Add("GV001", Pos{File: lc.File},
					"classifier %q binds against g-tree %q, which is not loaded", lc.C.Name, lc.TreeName)
				continue
			}
			tree = t
		}
		CheckClassifier(rep, lc.C, tree, lc.File)
	}

	for _, le := range b.Extracts {
		var tree *gtree.Tree
		if le.TreeName != "" {
			t, ok := b.Trees[le.TreeName]
			if !ok {
				rep.Add("GV001", Pos{File: le.File},
					"extraction spec %q vets against g-tree %q, which is not loaded", le.Spec.Name, le.TreeName)
				continue
			}
			tree = t
		}
		CheckExtractSpec(rep, le.Spec, tree, le.File)
	}

	for _, n := range treeNames {
		var cs []*classifier.Classifier
		for _, lc := range b.Classifiers {
			if lc.TreeName == n {
				cs = append(cs, lc.C)
			}
		}
		if len(cs) > 0 {
			CheckDeadOptions(rep, b.Trees[n], b.TreeFiles[n], cs)
		}
	}

	if b.manifest != nil {
		spec, files := b.buildSpec(rep)
		CheckStudy(rep, spec, b.Schema, files)
	}
	rep.Sort()
	return rep
}
