package vet

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Text renders the report one diagnostic per line, gofmt-style:
//
//	file:line:col: severity CODE: message
//
// Callers should Sort() first; the output is byte-stable and is what the
// golden corpus locks down. An empty report renders as the empty string.
func (r *Report) Text() string {
	var sb strings.Builder
	for _, d := range r.Diags {
		fmt.Fprintf(&sb, "%s: %s %s: %s\n", d.Pos, d.Severity, d.Code, d.Message)
	}
	return sb.String()
}

// jsonReport is the machine-readable envelope of JSON().
type jsonReport struct {
	Diagnostics []jsonDiag `json:"diagnostics"`
	Errors      int        `json:"errors"`
	Warnings    int        `json:"warnings"`
	Infos       int        `json:"infos"`
}

type jsonDiag struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Message  string `json:"message"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	out := jsonReport{
		Diagnostics: []jsonDiag{},
		Errors:      r.Count(SevError),
		Warnings:    r.Count(SevWarning),
		Infos:       r.Count(SevInfo),
	}
	for _, d := range r.Diags {
		out.Diagnostics = append(out.Diagnostics, jsonDiag{
			Code:     d.Code,
			Severity: d.Severity.String(),
			File:     d.Pos.File,
			Line:     d.Pos.Line,
			Col:      d.Pos.Col,
			Message:  d.Message,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// SARIF 2.1.0 rendering, for CI annotation surfaces.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID        string      `json:"id"`
	Short     sarifText   `json:"shortDescription"`
	Full      sarifText   `json:"fullDescription"`
	DefConfig sarifDefCfg `json:"defaultConfiguration"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifDefCfg struct {
	Level string `json:"level"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifLevel maps a severity to SARIF's result level vocabulary.
func sarifLevel(s Severity) string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "note"
	}
}

// SARIF renders the report as a SARIF 2.1.0 log with the full rule catalog
// in the driver, so CI surfaces can show code documentation alongside each
// result.
func (r *Report) SARIF() ([]byte, error) {
	rules := make([]sarifRule, len(Catalog))
	for i, c := range Catalog {
		rules[i] = sarifRule{
			ID:        c.Code,
			Short:     sarifText{Text: c.Summary},
			Full:      sarifText{Text: c.Rationale},
			DefConfig: sarifDefCfg{Level: sarifLevel(c.Severity)},
		}
	}
	results := []sarifResult{}
	for _, d := range r.Diags {
		loc := sarifLocation{Physical: sarifPhysical{Artifact: sarifArtifact{URI: d.Pos.File}}}
		if d.Pos.Line > 0 {
			loc.Physical.Region = &sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Col}
		}
		results = append(results, sarifResult{
			RuleID:    d.Code,
			Level:     sarifLevel(d.Severity),
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{loc},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "guavavet", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
