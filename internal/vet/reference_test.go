package vet_test

import (
	"testing"

	"guava/internal/baseline"
	"guava/internal/vet"
	"guava/internal/workload"
)

// TestReferenceStudyVetsClean asserts the shipped reference study carries no
// errors or warnings — the vetter must not cry wolf on the system's own
// exemplar. Informational findings (open numeric tails, GV109) are allowed.
func TestReferenceStudyVetsClean(t *testing.T) {
	contribs, err := workload.BuildAll(42, 20)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := baseline.ReferenceSpec(contribs)
	if err != nil {
		t.Fatal(err)
	}
	rep := vet.Study(spec, nil, nil)
	if n := rep.Count(vet.SevError); n != 0 {
		t.Errorf("reference study has %d vet error(s):\n%s", n, rep.Text())
	}
	if n := rep.Count(vet.SevWarning); n != 0 {
		t.Errorf("reference study has %d vet warning(s):\n%s", n, rep.Text())
	}
}
