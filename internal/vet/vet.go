// Package vet implements whole-study static analysis: a diagnostics engine
// with stable codes, severities, and source positions, plus cross-artifact
// checks over g-trees, classifiers, and study specifications. The paper's
// premise is that analysts — not database programmers — author classifiers
// and studies, so spec mistakes (a guard over a control that is disabled in
// context, a classifier emitting values outside the study domain, a shadowed
// rule) must be caught before the generated ETL runs, not discovered later
// as silently unclassified rows.
//
// The checks are deliberately conservative: every diagnostic is backed by a
// small satisfiability procedure over interval, categorical, and boolean
// guard atoms (see sat.go), and a check only fires when the defect is
// provable under the engine's NULL semantics. Uninterpretable atoms
// (node-to-node comparisons, arithmetic guards) make the affected check stay
// silent rather than guess.
package vet

import (
	"fmt"
	"sort"

	"guava/internal/obs"
)

// Severity ranks a diagnostic.
type Severity int

// Severities, in increasing order of gravity.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String names the severity the way renderers print it.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Pos locates a diagnostic in an artifact. Line and Col are 1-based; zero
// means the diagnostic applies to the artifact as a whole.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position prefix of a text diagnostic.
func (p Pos) String() string {
	if p.Line > 0 {
		return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
	}
	return p.File
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Code is the stable identifier ("GV102"); see Catalog.
	Code string
	// Severity is the code's fixed severity.
	Severity Severity
	// Pos locates the finding.
	Pos Pos
	// Message is the human-readable explanation.
	Message string
}

// Report accumulates diagnostics across checks.
type Report struct {
	Diags []Diagnostic
}

// Add appends a diagnostic for a cataloged code; the severity comes from the
// catalog. Unknown codes panic — they are programming errors, not inputs.
func (r *Report) Add(code string, pos Pos, format string, args ...any) {
	info, ok := catalogByCode[code]
	if !ok {
		panic("vet: uncataloged diagnostic code " + code)
	}
	r.Diags = append(r.Diags, Diagnostic{
		Code:     code,
		Severity: info.Severity,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Sort orders diagnostics deterministically: by file, line, column, code,
// then message. Renderers call it so output is byte-stable.
func (r *Report) Sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// Count returns how many diagnostics carry the severity.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// HasErrors reports whether any error-severity diagnostic was emitted — the
// condition under which a study must not execute.
func (r *Report) HasErrors() bool { return r.Count(SevError) > 0 }

// Merge appends another report's diagnostics.
func (r *Report) Merge(o *Report) {
	r.Diags = append(r.Diags, o.Diags...)
}

// Publish records the report into a metrics registry: one counter per
// severity (vet.diagnostics.error, .warning, .info) plus vet.reports. A nil
// registry publishes to obs.Default.
func (r *Report) Publish(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	reg.Counter("vet.reports").Inc()
	reg.Counter("vet.diagnostics.error").Add(int64(r.Count(SevError)))
	reg.Counter("vet.diagnostics.warning").Add(int64(r.Count(SevWarning)))
	reg.Counter("vet.diagnostics.info").Add(int64(r.Count(SevInfo)))
}

// CodeInfo documents one diagnostic code.
type CodeInfo struct {
	Code     string
	Severity Severity
	// Summary is the short name ("shadowed-rule").
	Summary string
	// Rationale is the one-line justification VETTING.md carries.
	Rationale string
}

// Catalog lists every diagnostic code the engine can emit, in code order.
// GV0xx are artifact-loading problems, GV1xx per-classifier, GV201-204
// per-g-tree, GV210-216 per-compiled-plan (internal/plancheck), GV301-307
// per-study, GV308-314 per-extraction-spec and per-extended-layout.
var Catalog = []CodeInfo{
	{"GV001", SevError, "artifact-load-error",
		"An artifact file that cannot be parsed can hide any number of downstream defects."},

	{"GV101", SevError, "unknown-name",
		"A guard or value referencing a name that is neither a g-tree node nor a domain element can never bind."},
	{"GV102", SevWarning, "shadowed-rule",
		"Under first-match semantics a rule fully covered by earlier rules silently never fires."},
	{"GV103", SevWarning, "domain-gap",
		"Non-NULL inputs no rule matches classify to NULL and vanish from study statistics."},
	{"GV104", SevError, "value-outside-domain",
		"A rule emitting a value outside the target domain's elements corrupts the study column."},
	{"GV105", SevWarning, "unsatisfiable-guard",
		"A guard that no row can satisfy marks a rule the analyst believes is doing work but is not."},
	{"GV106", SevError, "context-disabled-guard",
		"A guard testing a control that its own other conjuncts prove disabled (hence NULL) can never match — the paper's signature context check."},
	{"GV107", SevWarning, "foreign-option-value",
		"Comparing a closed-option control against a value the UI can never store (often a case or vocabulary mismatch) is vacuous."},
	{"GV108", SevError, "bind-error",
		"A classifier that fails to bind or type-check against its g-tree would abort compilation at run time."},
	{"GV109", SevInfo, "uncovered-tail",
		"Numeric values beyond the outermost threshold are unclassified; often intentional for open-ended scales, so informational."},

	{"GV201", SevError, "enablement-cycle",
		"Controls whose enablement guards form a cycle can never all be enabled, and cyclic specs used to hang context reporting."},
	{"GV202", SevError, "enablement-unknown-control",
		"An enablement guard naming a missing or non-data-storing control can never be evaluated."},
	{"GV203", SevWarning, "enablement-foreign-value",
		"An equals-enablement comparing against a value outside the controlling node's options can never enable the control."},
	{"GV204", SevInfo, "dead-answer-option",
		"An answer option no classifier rule can ever match suggests vocabulary drift between the form and the study."},

	{"GV210", SevError, "plan-compile-error",
		"A study whose artifacts vet clean but whose plan fails to compile would abort at run time; the failure belongs in static analysis, not production."},
	{"GV211", SevError, "plan-dead-operator",
		"An operator whose output is provably empty makes every plan above it dead weight and usually marks a contradiction the analyst cannot see in the artifacts."},
	{"GV212", SevError, "plan-contradictory-predicate",
		"A post-compile selection predicate that no row can satisfy filters everything; the contradiction only becomes visible after condition, cleaner, and selection predicates are conjoined."},
	{"GV213", SevError, "plan-unpivot-misuse",
		"An un-pivot over zero attributes, or whose attribute/key columns collide, reconstructs no wide rows from the Join/EAV layout and silently empties the contributor."},
	{"GV214", SevWarning, "plan-dead-column",
		"A column a plan derives or projects but that no downstream operator reads and the study never outputs is wasted computation per row."},
	{"GV215", SevInfo, "plan-shared-subtree",
		"Structurally identical subtrees compiled for different classifiers execute once per classifier today; the fingerprint report is the measurement baseline for cross-classifier CSE."},
	{"GV216", SevInfo, "plan-zero-cardinality",
		"A scan over a relation the warehouse statistics prove empty makes the plan above it vacuous for this data; legitimate during bring-up, so informational."},

	{"GV301", SevError, "entity-classifier-invalid",
		"A contributor without a valid entity classifier anchored on a form node produces no study entities at all."},
	{"GV302", SevError, "column-without-classifier",
		"A study column with no classifier for a contributor leaves that contributor's rows permanently NULL."},
	{"GV303", SevWarning, "classifier-without-column",
		"A classifier assigned to a column the study does not declare is dead configuration."},
	{"GV304", SevError, "condition-bind-error",
		"A filter condition that does not bind against the g-tree would abort compilation at run time."},
	{"GV305", SevError, "pattern-stack-invalid",
		"A pattern stack whose rewrite fails over the form's naive schema cannot extract the contributor at all."},
	{"GV306", SevError, "schema-mismatch",
		"A study column naming an attribute/domain the study schema does not define, or with the wrong kind, breaks the Figure 4 contract."},
	{"GV307", SevInfo, "schema-attribute-unreachable",
		"A schema attribute no study column maps into is unreachable in this study; legitimate for partial studies, so informational."},

	{"GV308", SevError, "extract-spec-invalid",
		"A structurally invalid extraction spec can neither derive its contributor's form nor compile into an extractor."},
	{"GV309", SevError, "extract-unmapped-slot",
		"A required extraction field with no data-storing g-tree slot, or a report key that is not the g-tree key, makes every report an extraction miss."},
	{"GV310", SevError, "extract-vocab-mismatch",
		"An extraction field whose stored type or controlled vocabulary disagrees with its g-tree slot writes values the form could never store."},
	{"GV311", SevError, "extract-overlapping-matchers",
		"Two anchored matchers claiming the same heading, label, or finding term make extraction ambiguous, so the spec refuses to compile."},
	{"GV312", SevWarning, "extract-optional-slot-unmapped",
		"An optional extraction field with no g-tree slot extracts to nowhere, and a slot no rule fills stays permanently NULL — usually vocabulary drift between report and form."},
	{"GV313", SevError, "sparse-wide-misuse",
		"A sparse wide table with fewer physical slots than the form has data controls cannot store the form at all."},
	{"GV314", SevError, "multi-valued-misuse",
		"A multi-valued answer table moving a missing, duplicated, or key column cannot reconstruct the naive relation."},
}

var catalogByCode = func() map[string]CodeInfo {
	m := make(map[string]CodeInfo, len(Catalog))
	for _, c := range Catalog {
		m[c.Code] = c
	}
	return m
}()

// Info returns the catalog entry for a code.
func Info(code string) (CodeInfo, bool) {
	c, ok := catalogByCode[code]
	return c, ok
}
