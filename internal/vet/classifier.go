package vet

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"guava/internal/classifier"
	"guava/internal/gtree"
)

// CheckClassifier runs the per-classifier analyses (GV101–GV109) over one
// classifier, resolved against its contributor's g-tree. With a nil tree
// only the tree-independent analyses run — satisfiability, shadowing, gap
// coverage, and domain-element membership — which is classlint's standalone
// mode.
func CheckClassifier(rep *Report, c *classifier.Classifier, tree *gtree.Tree, file string) {
	unknown := checkNames(rep, c, tree, file)
	checkValues(rep, c, file)
	live := checkSatAndShadow(rep, c, tree, file)
	checkGaps(rep, c, tree, file, live)
	if tree != nil {
		checkContext(rep, c, tree, file)
		checkOptionValues(rep, c, tree, file)
		if unknown == 0 {
			checkBind(rep, c, tree, file)
		}
	}
}

// posOf locates an identifier token within the artifact.
func posOf(file string, id *classifier.Ident) Pos {
	return Pos{File: file, Line: id.Tok.Line, Col: id.Tok.Col}
}

// rulePos locates a rule by its first identifier (rules are one per line, so
// any token of the rule carries the rule's line).
func rulePos(file string, r *classifier.Rule) Pos {
	pos := Pos{File: file}
	found := false
	for _, n := range []classifier.Node{r.Value, r.Guard} {
		if found {
			break
		}
		classifier.WalkIdents(n, func(id *classifier.Ident) {
			if !found && id.Tok.Line > 0 {
				pos.Line, pos.Col = id.Tok.Line, id.Tok.Col
				found = true
			}
		})
	}
	return pos
}

// checkNames emits GV101 for identifiers that resolve to neither a g-tree
// node nor (where allowed) a target-domain element, returning how many it
// found so the bind check can avoid double-reporting.
func checkNames(rep *Report, c *classifier.Classifier, tree *gtree.Tree, file string) int {
	if tree == nil {
		return 0
	}
	unknown := 0
	report := func(id *classifier.Ident) {
		unknown++
		rep.Add("GV101", posOf(file, id),
			"classifier %q: unknown name %q is neither a g-tree node nor a domain element", c.Name, id.Name)
	}
	domainValue := !c.IsEntity && !c.IsCleaner
	for _, r := range c.Rules {
		if domainValue {
			classifier.WalkIdents(r.Value, func(id *classifier.Ident) {
				if !tree.Has(id.Name) && !c.Target.HasElement(id.Name) {
					report(id)
				}
			})
		}
		classifier.WalkIdents(r.Guard, func(id *classifier.Ident) {
			if tree.Has(id.Name) {
				return
			}
			if domainValue && c.Target.HasElement(id.Name) {
				return
			}
			report(id)
		})
	}
	return unknown
}

// checkValues emits GV104 for literal rule values outside a categorical
// target domain.
func checkValues(rep *Report, c *classifier.Classifier, file string) {
	if c.IsEntity || c.IsCleaner || len(c.Target.Elements) == 0 {
		return
	}
	for i, r := range c.Rules {
		if s, ok := r.Value.(*classifier.StrLit); ok && !c.Target.HasElement(s.S) {
			rep.Add("GV104", rulePos(file, r),
				"classifier %q rule %d: value %s is not an element of domain %s (elements: %s)",
				c.Name, i+1, r.Value, c.Target.Domain, strings.Join(c.Target.Elements, ", "))
		}
	}
}

// checkSatAndShadow emits GV105 for rules whose guards no row can satisfy
// and, for domain classifiers, GV102 for rules fully covered by earlier
// rules (first-match semantics make them unreachable). It returns the guards
// of the live (satisfiable) rules for the gap check. Both proofs stay sound
// when atoms are uninterpretable: dropping atoms from the guard under test
// only weakens it, and negated earlier guards turn unknown atoms into an
// always-satisfiable alternative.
func checkSatAndShadow(rep *Report, c *classifier.Classifier, tree *gtree.Tree, file string) []classifier.Node {
	var live []classifier.Node
	for i, r := range c.Rules {
		states, _, err := conjStates(r.Guard, tree, false)
		if err != nil {
			continue
		}
		if len(states) == 0 {
			rep.Add("GV105", rulePos(file, r),
				"classifier %q: the guard of rule %d is unsatisfiable; the rule can never fire", c.Name, i+1)
			continue
		}
		if !c.IsEntity && !c.IsCleaner {
			shadowed, proved := false, true
			for _, g := range live {
				var ok bool
				states, ok = subtract(states, g, tree, false)
				if !ok {
					proved = false
					break
				}
				if len(states) == 0 {
					shadowed = true
					break
				}
			}
			if shadowed && proved {
				rep.Add("GV102", rulePos(file, r),
					"classifier %q: rule %d is shadowed by earlier rules and can never fire", c.Name, i+1)
			}
		}
		live = append(live, r.Guard)
	}
	return live
}

// checkGaps emits GV103 (interior/categorical gap) and GV109 (open numeric
// tail) for domain classifiers whose rules provably leave inputs
// unclassified. The analysis assumes every referenced control was answered —
// NULL inputs classify to NULL by design — and runs only when every guard
// was fully interpreted, since residual states computed from weakened
// negations would over-report.
func checkGaps(rep *Report, c *classifier.Classifier, tree *gtree.Tree, file string, live []classifier.Node) {
	if c.IsEntity || c.IsCleaner || len(c.Rules) == 0 {
		return
	}
	for _, r := range c.Rules {
		if !guardComplete(r.Guard, tree) {
			return
		}
	}
	states := []*state{newState()}
	for _, g := range live {
		var ok bool
		states, ok = subtract(states, g, tree, true)
		if !ok {
			return
		}
		if len(states) == 0 {
			break
		}
	}
	var gaps, tails []string
	for _, s := range states {
		if s.tail(tree) {
			tails = append(tails, s.describe(tree))
		} else {
			gaps = append(gaps, s.describe(tree))
		}
	}
	if ws := witnessList(gaps); ws != "" {
		rep.Add("GV103", Pos{File: file},
			"classifier %q has a domain gap: no rule matches %s", c.Name, ws)
	}
	if ws := witnessList(tails); ws != "" {
		rep.Add("GV109", Pos{File: file},
			"classifier %q has an uncovered tail: no rule matches %s", c.Name, ws)
	}
}

// guardComplete reports whether every atom of the guard's DNF is one the
// engine interprets.
func guardComplete(guard classifier.Node, tree *gtree.Tree) bool {
	disjuncts, err := classifier.DNF(guard, false)
	if err != nil {
		return false
	}
	for _, conj := range disjuncts {
		for _, n := range conj {
			if _, ok := interp(n, tree); !ok {
				return false
			}
		}
	}
	return true
}

// witnessList renders deduplicated witnesses, capped for readability.
func witnessList(ws []string) string {
	sort.Strings(ws)
	uniq := ws[:0]
	for i, w := range ws {
		if i == 0 || w != ws[i-1] {
			uniq = append(uniq, w)
		}
	}
	const maxShown = 3
	if len(uniq) == 0 {
		return ""
	}
	if len(uniq) <= maxShown {
		return strings.Join(uniq, "; or ")
	}
	return strings.Join(uniq[:maxShown], "; or ") + fmt.Sprintf("; and %d more", len(uniq)-maxShown)
}

// checkContext emits GV106 — the paper's signature check: a guard that tests
// a control which that same guard's other conjuncts prove disabled. A
// disabled control stores NULL, so the test can never hold and the rule (or
// that disjunct of it) is dead in a way only the UI context reveals.
func checkContext(rep *Report, c *classifier.Classifier, tree *gtree.Tree, file string) {
	seen := map[string]bool{}
	for i, r := range c.Rules {
		disjuncts, err := classifier.DNF(r.Guard, false)
		if err != nil {
			continue
		}
		for _, conj := range disjuncts {
			s := newState()
			var atoms []atom
			for _, n := range conj {
				a, ok := interp(n, tree)
				if !ok {
					continue
				}
				atoms = append(atoms, a)
				s.apply(a, false)
			}
			if !s.sat || !s.satisfiable(tree, false) {
				continue // an outright-unsatisfiable disjunct is GV105 territory
			}
			for _, a := range atoms {
				if !a.requiresValue() {
					continue
				}
				key := fmt.Sprintf("%d/%s", i, a.name)
				if seen[key] {
					continue
				}
				node, err := tree.Node(a.name)
				if err != nil || node.Kind != gtree.FieldNode {
					continue
				}
				chain, err := tree.EnablementChain(a.name)
				if err != nil {
					continue // cycles and missing controls are GV201/GV202
				}
				cur := node
				for range chain {
					link := cur.Enablement
					vs, req := s.vars[link.Control], ""
					switch {
					case vs == nil:
					case link.Kind == "equals" && vs.excludes(link.Value):
						req = fmt.Sprintf("%s = %s", link.Control, link.Value)
					case link.Kind == "answered" && vs.isNull:
						req = fmt.Sprintf("%s is answered", link.Control)
					}
					if req != "" {
						seen[key] = true
						rep.Add("GV106", Pos{File: file, Line: a.pos.Line, Col: a.pos.Col},
							"classifier %q rule %d: guard tests %q, but it is enabled only when %s — which the guard's other conditions contradict",
							c.Name, i+1, a.name, req)
						break
					}
					cur, _ = tree.Node(link.Control)
				}
			}
		}
	}
}

// checkOptionValues emits GV107 for equality/inequality comparisons of a
// closed-option control against a value its UI can never store — typically
// case or vocabulary drift between the classifier and the form.
func checkOptionValues(rep *Report, c *classifier.Classifier, tree *gtree.Tree, file string) {
	seen := map[string]bool{}
	for _, r := range c.Rules {
		disjuncts, err := classifier.DNF(r.Guard, false)
		if err != nil {
			continue
		}
		for _, conj := range disjuncts {
			for _, n := range conj {
				a, ok := interp(n, tree)
				if !ok || (a.op != opEq && a.op != opNe) {
					continue
				}
				node, err := tree.Node(a.name)
				if err != nil {
					continue
				}
				dom, closed := closedValues(node)
				if !closed {
					continue
				}
				inDom := false
				for _, d := range dom {
					if valueEq(a.val, d) {
						inDom = true
						break
					}
				}
				if inDom {
					continue
				}
				key := a.name + "\x00" + a.val.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				var opts []string
				for _, d := range dom {
					opts = append(opts, d.String())
				}
				rep.Add("GV107", Pos{File: file, Line: a.pos.Line, Col: a.pos.Col},
					"classifier %q compares %q against %s, which is not among its stored option values (%s)",
					c.Name, a.name, a.val, strings.Join(opts, ", "))
			}
		}
	}
}

// checkBind emits GV108 when the classifier fails the full binder — type
// errors, misused structural nodes, anything that would abort study
// compilation at run time. Skipped when GV101 already explained the failure.
func checkBind(rep *Report, c *classifier.Classifier, tree *gtree.Tree, file string) {
	if _, err := c.Bind(tree); err != nil {
		pos := Pos{File: file}
		var cerr *classifier.Error
		if errors.As(err, &cerr) && cerr.Line > 0 {
			pos.Line, pos.Col = cerr.Line, cerr.Col
		}
		rep.Add("GV108", pos, "%s", err)
	}
}
