package vet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"guava/internal/obs"
)

// TestCatalogIntegrity: codes are unique, well-formed, ordered, and fully
// documented — the catalog is the public contract VETTING.md and SARIF carry.
func TestCatalogIntegrity(t *testing.T) {
	seen := map[string]bool{}
	prev := ""
	for _, c := range Catalog {
		if seen[c.Code] {
			t.Errorf("duplicate code %s", c.Code)
		}
		seen[c.Code] = true
		if !strings.HasPrefix(c.Code, "GV") || len(c.Code) != 5 {
			t.Errorf("malformed code %q", c.Code)
		}
		if c.Code <= prev {
			t.Errorf("catalog out of order: %s after %s", c.Code, prev)
		}
		prev = c.Code
		if c.Summary == "" || c.Rationale == "" {
			t.Errorf("%s: missing summary or rationale", c.Code)
		}
		if c.Severity < SevInfo || c.Severity > SevError {
			t.Errorf("%s: severity %v outside range", c.Code, c.Severity)
		}
		got, ok := Info(c.Code)
		if !ok || got != c {
			t.Errorf("Info(%s) = %+v, %v", c.Code, got, ok)
		}
	}
	if _, ok := Info("GV999"); ok {
		t.Error("Info(GV999) resolved an unknown code")
	}
}

// TestVettingDocCoverage: VETTING.md documents every cataloged code with its
// summary — the doc is the user-facing contract for the catalog.
func TestVettingDocCoverage(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "VETTING.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for _, c := range Catalog {
		if !strings.Contains(text, c.Code) {
			t.Errorf("VETTING.md does not mention %s", c.Code)
		}
		if !strings.Contains(text, c.Summary) {
			t.Errorf("VETTING.md does not carry the summary %q for %s", c.Summary, c.Code)
		}
	}
}

// TestAddPanicsOnUnknownCode: emitting an uncataloged code is a programming
// error, not an input condition.
func TestAddPanicsOnUnknownCode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with unknown code did not panic")
		}
	}()
	(&Report{}).Add("GV999", Pos{File: "x"}, "boom")
}

// TestAddTakesSeverityFromCatalog: the caller never chooses severities.
func TestAddTakesSeverityFromCatalog(t *testing.T) {
	rep := &Report{}
	rep.Add("GV102", Pos{File: "x"}, "rule %d shadowed", 3)
	if len(rep.Diags) != 1 {
		t.Fatal("no diagnostic added")
	}
	d := rep.Diags[0]
	if d.Severity != SevWarning || d.Message != "rule 3 shadowed" {
		t.Errorf("diagnostic = %+v", d)
	}
}

func TestSeverityString(t *testing.T) {
	for sev, want := range map[Severity]string{
		SevInfo: "info", SevWarning: "warning", SevError: "error", Severity(9): "Severity(9)",
	} {
		if got := sev.String(); got != want {
			t.Errorf("Severity(%d).String() = %q, want %q", int(sev), got, want)
		}
	}
}

func TestPosString(t *testing.T) {
	if got := (Pos{File: "a.clf", Line: 2, Col: 7}).String(); got != "a.clf:2:7" {
		t.Errorf("positioned Pos = %q", got)
	}
	if got := (Pos{File: "a.clf"}).String(); got != "a.clf" {
		t.Errorf("file-only Pos = %q", got)
	}
}

// TestSortDeterminism: sorting keys on file, line, col, code, message — and is
// stable, so equal keys keep insertion order.
func TestSortDeterminism(t *testing.T) {
	rep := &Report{}
	rep.Add("GV103", Pos{File: "b", Line: 1, Col: 1}, "m")
	rep.Add("GV102", Pos{File: "a", Line: 2, Col: 1}, "m")
	rep.Add("GV102", Pos{File: "a", Line: 1, Col: 5}, "zz")
	rep.Add("GV102", Pos{File: "a", Line: 1, Col: 5}, "aa")
	rep.Sort()
	var got []string
	for _, d := range rep.Diags {
		got = append(got, d.Pos.String()+" "+d.Message)
	}
	want := []string{"a:1:5 aa", "a:1:5 zz", "a:2:1 m", "b:1:1 m"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestCountMergeHasErrors(t *testing.T) {
	a := &Report{}
	a.Add("GV001", Pos{File: "x"}, "e")
	b := &Report{}
	b.Add("GV103", Pos{File: "y"}, "w")
	b.Add("GV307", Pos{File: "y"}, "i")
	if a.HasErrors() != true || b.HasErrors() != false {
		t.Errorf("HasErrors: a=%v b=%v", a.HasErrors(), b.HasErrors())
	}
	a.Merge(b)
	if len(a.Diags) != 3 {
		t.Fatalf("merged report has %d diags", len(a.Diags))
	}
	if a.Count(SevError) != 1 || a.Count(SevWarning) != 1 || a.Count(SevInfo) != 1 {
		t.Errorf("counts = %d/%d/%d", a.Count(SevError), a.Count(SevWarning), a.Count(SevInfo))
	}
}

// TestPublish: the report lands in the metrics registry as one counter per
// severity plus a report counter.
func TestPublish(t *testing.T) {
	reg := obs.NewRegistry()
	rep := &Report{}
	rep.Add("GV001", Pos{File: "x"}, "e")
	rep.Add("GV104", Pos{File: "x"}, "e2")
	rep.Add("GV103", Pos{File: "x"}, "w")
	rep.Publish(reg)
	rep.Publish(reg)
	if got := reg.Counter("vet.reports").Value(); got != 2 {
		t.Errorf("vet.reports = %d, want 2", got)
	}
	if got := reg.Counter("vet.diagnostics.error").Value(); got != 4 {
		t.Errorf("vet.diagnostics.error = %d, want 4", got)
	}
	if got := reg.Counter("vet.diagnostics.warning").Value(); got != 2 {
		t.Errorf("vet.diagnostics.warning = %d, want 2", got)
	}
	if got := reg.Counter("vet.diagnostics.info").Value(); got != 0 {
		t.Errorf("vet.diagnostics.info = %d, want 0", got)
	}
}
