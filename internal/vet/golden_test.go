package vet

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the corpus golden files")

// TestCorpusGoldens locks the text rendering down byte-for-byte over the
// defect corpus: every GV<code>_bad directory must produce exactly its
// expect.golden (and must actually contain its code), and every clean_*
// directory must produce no diagnostics at all.
func TestCorpusGoldens(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	var cases []string
	for _, e := range entries {
		if e.IsDir() {
			cases = append(cases, e.Name())
		}
	}
	sort.Strings(cases)
	if len(cases) == 0 {
		t.Fatal("empty corpus")
	}
	for _, name := range cases {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "corpus", name)
			rep := LoadPaths([]string{dir}).Vet()
			got := rep.Text()

			goldenPath := filepath.Join(dir, "expect.golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("report drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
			}

			switch {
			case strings.HasPrefix(name, "clean_"):
				if len(rep.Diags) != 0 {
					t.Errorf("clean fixture produced diagnostics:\n%s", got)
				}
			case strings.HasPrefix(name, "GV"):
				code := strings.SplitN(name, "_", 2)[0]
				found := false
				for _, d := range rep.Diags {
					if d.Code == code {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("fixture did not trigger %s:\n%s", code, got)
				}
			}

			// Whatever text renders must also render as valid JSON and SARIF.
			for _, render := range []func() ([]byte, error){rep.JSON, rep.SARIF} {
				out, err := render()
				if err != nil {
					t.Fatal(err)
				}
				if !json.Valid(out) {
					t.Errorf("renderer produced invalid JSON:\n%s", out)
				}
			}
		})
	}
}

// TestCatalogCoverage: every cataloged code must hold at least one
// triggering fixture — artifact-level codes under testdata/corpus (asserted
// here by TestCorpusGoldens), plan-level codes under testdata/plancorpus
// (asserted by internal/plancheck's golden test, which owns the compile +
// analyze pipeline the plan fixtures need).
func TestCatalogCoverage(t *testing.T) {
	for _, c := range Catalog {
		covered := false
		for _, corpus := range []string{"corpus", "plancorpus"} {
			if _, err := os.Stat(filepath.Join("testdata", corpus, c.Code+"_bad")); err == nil {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("no corpus or plancorpus fixture for %s (%s)", c.Code, c.Summary)
		}
	}
}
