package vet

import (
	"sort"

	"guava/internal/classifier"
	"guava/internal/etl"
	"guava/internal/gtree"
	"guava/internal/patterns"
	"guava/internal/relstore"
	"guava/internal/study"
	"guava/internal/textsrc"
)

// StudyFiles maps a study's artifacts to the file names diagnostics should
// cite. Any (or all) of it may be missing — positions then fall back to
// stable logical names ("study:<name>", "gtree:<contributor>",
// "classifier:<name>"), which is what the API-built studies use.
type StudyFiles struct {
	// Manifest is the study definition artifact.
	Manifest string
	// Schema is the study-schema artifact.
	Schema string
	// Trees maps contributor name to g-tree file.
	Trees map[string]string
	// Classifiers maps classifier name to file.
	Classifiers map[string]string
}

func (f *StudyFiles) manifest(spec *etl.StudySpec) string {
	if f != nil && f.Manifest != "" {
		return f.Manifest
	}
	return "study:" + spec.Name
}

func (f *StudyFiles) schema(s *study.Schema) string {
	if f != nil && f.Schema != "" {
		return f.Schema
	}
	return "schema:" + s.Name
}

func (f *StudyFiles) tree(contributor string) string {
	if f != nil {
		if v, ok := f.Trees[contributor]; ok {
			return v
		}
	}
	return "gtree:" + contributor
}

func (f *StudyFiles) classifier(name string) string {
	if f != nil {
		if v, ok := f.Classifiers[name]; ok {
			return v
		}
	}
	return "classifier:" + name
}

// CheckStudy runs the study-level wiring checks (GV301–GV307): entity
// classifiers anchored on form nodes, every column filled by a domain
// classifier per contributor, conditions that bind, pattern stacks that
// rewrite, and column selections that exist in the study schema. schema and
// files may be nil.
func CheckStudy(rep *Report, spec *etl.StudySpec, schema *study.Schema, files *StudyFiles) {
	mpos := Pos{File: files.manifest(spec)}

	for _, c := range spec.Contributors {
		// GV301: the contributor's entity selection. "The classifier must
		// refer to at least one node in the g-tree that represents a form."
		switch {
		case c.Entity == nil:
			rep.Add("GV301", mpos, "contributor %q has no entity classifier", c.Name)
		case !c.Entity.IsEntity:
			rep.Add("GV301", mpos, "contributor %q: %q is not an entity classifier", c.Name, c.Entity.Name)
		case c.Tree != nil && !anchoredOnForm(c.Entity, c.Tree):
			rep.Add("GV301", Pos{File: files.classifier(c.Entity.Name)},
				"entity classifier %q does not reference a form node of contributor %q's g-tree",
				c.Entity.Name, c.Name)
		}

		// GV302/GV303: columns vs the contributor's chosen classifiers.
		for _, col := range spec.Columns {
			cl, ok := c.Classifiers[col.As]
			switch {
			case !ok:
				rep.Add("GV302", mpos,
					"contributor %q has no classifier for column %q; its rows would stay NULL", c.Name, col.As)
			case cl.IsEntity || cl.IsCleaner:
				rep.Add("GV302", mpos,
					"contributor %q fills column %q with %q, which is not a domain classifier", c.Name, col.As, cl.Name)
			default:
				checkColumnTarget(rep, mpos, c, col, cl)
			}
		}
		for _, as := range sortedKeys(c.Classifiers) {
			if !hasColumn(spec, as) {
				rep.Add("GV303", mpos,
					"contributor %q assigns classifier %q to column %q, which the study does not declare",
					c.Name, c.Classifiers[as].Name, as)
			}
		}

		// GV304: the per-contributor filter condition must bind.
		if c.Condition != "" && c.Tree != nil {
			if _, _, err := classifier.BindCondition(c.Tree, c.Condition); err != nil {
				rep.Add("GV304", mpos, "contributor %q condition: %v", c.Name, err)
			}
		}

		// GV305: the pattern stack must rewrite the form's naive schema.
		if c.Stack == nil {
			rep.Add("GV305", mpos, "contributor %q has no pattern stack", c.Name)
		} else if _, err := c.Stack.PhysicalTables(c.Form); err != nil {
			rep.Add("GV305", mpos, "contributor %q pattern stack: %v", c.Name, err)
		}

		// GV313/GV314/GV308–312: layouts that carry their own static
		// misuse checks. These would also fail at Install time, but the
		// whole point of vetting is catching them before the ETL runs.
		if c.Stack != nil && c.Form.Schema != nil {
			switch l := c.Stack.Layout.(type) {
			case patterns.SparseWide:
				if err := l.Check(c.Form); err != nil {
					rep.Add("GV313", mpos, "contributor %q: %v", c.Name, err)
				}
			case patterns.MultiValued:
				if err := l.Check(c.Form); err != nil {
					rep.Add("GV314", mpos, "contributor %q: %v", c.Name, err)
				}
			case *textsrc.Layout:
				CheckExtractSpec(rep, l.Spec(), c.Tree, mpos.File)
			}
		}

		// GV306: the entity being selected must exist in the schema.
		if schema != nil && c.Entity != nil && c.Entity.Target.Entity != "" {
			if _, err := schema.Entity(c.Entity.Target.Entity); err != nil {
				rep.Add("GV306", mpos,
					"contributor %q selects entity %q, which schema %q does not define",
					c.Name, c.Entity.Target.Entity, schema.Name)
			}
		}
	}

	// GV306: column selections must exist in the schema with the right kind.
	if schema != nil {
		for _, col := range spec.Columns {
			dom, ok := findDomain(schema, col.Attribute, col.Domain)
			if !ok {
				rep.Add("GV306", mpos,
					"column %q selects %s:%s, which no entity of schema %q defines",
					col.As, col.Attribute, col.Domain, schema.Name)
				continue
			}
			if col.Kind != dom.Kind {
				rep.Add("GV306", mpos,
					"column %q is declared %s, but schema domain %s:%s is %s",
					col.As, col.Kind, col.Attribute, col.Domain, dom.Kind)
			}
		}

		// GV307: schema attributes no column maps into are unreachable in
		// this study — legitimate for partial studies, hence informational.
		spos := Pos{File: files.schema(schema)}
		walkEntities(schema.Root, func(e *study.Entity) {
			for _, a := range e.Attributes {
				used := false
				for _, col := range spec.Columns {
					if col.Attribute == a.Name {
						used = true
						break
					}
				}
				if !used {
					rep.Add("GV307", spos,
						"schema attribute %s.%s is not reachable from any column of study %q",
						e.Name, a.Name, spec.Name)
				}
			}
		})
	}
}

// checkColumnTarget emits GV306 when a contributor's chosen classifier does
// not target the column's attribute/domain — a wiring mismatch the compiler
// cannot see because it trusts the plan's column map.
func checkColumnTarget(rep *Report, mpos Pos, c *etl.ContributorPlan, col etl.ColumnSpec, cl *classifier.Classifier) {
	t := cl.Target
	if t.Attribute != "" && (t.Attribute != col.Attribute || t.Domain != col.Domain) {
		rep.Add("GV306", mpos,
			"contributor %q fills column %q (%s:%s) with classifier %q targeting %s:%s",
			c.Name, col.As, col.Attribute, col.Domain, cl.Name, t.Attribute, t.Domain)
		return
	}
	if t.Kind != relstore.KindNull && col.Kind != relstore.KindNull && t.Kind != col.Kind && !(col.Kind == relstore.KindFloat && t.Kind == relstore.KindInt) {
		rep.Add("GV306", mpos,
			"contributor %q fills column %q (%s) with classifier %q producing %s",
			c.Name, col.As, col.Kind, cl.Name, t.Kind)
	}
}

// anchoredOnForm reports whether any rule guard references a form node.
func anchoredOnForm(c *classifier.Classifier, tree *gtree.Tree) bool {
	anchored := false
	for _, r := range c.Rules {
		classifier.WalkIdents(r.Guard, func(id *classifier.Ident) {
			if n, err := tree.Node(id.Name); err == nil && n.Kind == gtree.FormNode {
				anchored = true
			}
		})
	}
	return anchored
}

func hasColumn(spec *etl.StudySpec, as string) bool {
	for _, col := range spec.Columns {
		if col.As == as {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]*classifier.Classifier) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// findDomain locates attribute:domain under any entity of the schema.
func findDomain(s *study.Schema, attribute, domain string) (*study.Domain, bool) {
	var found *study.Domain
	walkEntities(s.Root, func(e *study.Entity) {
		for _, a := range e.Attributes {
			if a.Name != attribute {
				continue
			}
			for _, d := range a.Domains {
				if d.ID == domain {
					found = d
				}
			}
		}
	})
	return found, found != nil
}

func walkEntities(e *study.Entity, fn func(*study.Entity)) {
	if e == nil {
		return
	}
	fn(e)
	for _, c := range e.Children {
		walkEntities(c, fn)
	}
}

// Study vets a complete study: every contributor's g-tree, every classifier
// the study uses (entity, per-column, cleaners), dead answer options, and
// the study-level wiring, against an optional study schema. The returned
// report is sorted and its totals are published to obs.Default.
func Study(spec *etl.StudySpec, schema *study.Schema, files *StudyFiles) *Report {
	rep := &Report{}
	CheckStudy(rep, spec, schema, files)
	for _, c := range spec.Contributors {
		var all []*classifier.Classifier
		seen := map[*classifier.Classifier]bool{}
		add := func(cl *classifier.Classifier) {
			if cl == nil || seen[cl] {
				return
			}
			seen[cl] = true
			CheckClassifier(rep, cl, c.Tree, files.classifier(cl.Name))
			all = append(all, cl)
		}
		add(c.Entity)
		for _, as := range sortedKeys(c.Classifiers) {
			add(c.Classifiers[as])
		}
		for _, cl := range c.Cleaners {
			add(cl)
		}
		if c.Tree != nil {
			treeFile := files.tree(c.Name)
			CheckTree(rep, c.Tree, treeFile)
			CheckDeadOptions(rep, c.Tree, treeFile, all)
		}
	}
	rep.Sort()
	rep.Publish(nil)
	return rep
}
