package vet

import (
	"encoding/json"
	"strings"
	"testing"
)

// sampleReport is an unsorted three-severity report used by the render tests.
func sampleReport() *Report {
	rep := &Report{}
	rep.Add("GV103", Pos{File: "b.clf", Line: 3, Col: 1}, "gap")
	rep.Add("GV001", Pos{File: "a.clf", Line: 1, Col: 2}, "broken")
	rep.Add("GV307", Pos{File: "s.xml"}, "unused attribute")
	rep.Sort()
	return rep
}

func TestTextRendering(t *testing.T) {
	if got := (&Report{}).Text(); got != "" {
		t.Errorf("empty report renders %q, want empty string", got)
	}
	want := "a.clf:1:2: error GV001: broken\n" +
		"b.clf:3:1: warning GV103: gap\n" +
		"s.xml: info GV307: unused attribute\n"
	if got := sampleReport().Text(); got != want {
		t.Errorf("Text() =\n%s\nwant\n%s", got, want)
	}
}

func TestJSONRendering(t *testing.T) {
	out, err := sampleReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Diagnostics []struct {
			Code     string `json:"code"`
			Severity string `json:"severity"`
			File     string `json:"file"`
			Line     int    `json:"line"`
		} `json:"diagnostics"`
		Errors   int `json:"errors"`
		Warnings int `json:"warnings"`
		Infos    int `json:"infos"`
	}
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatal(err)
	}
	if env.Errors != 1 || env.Warnings != 1 || env.Infos != 1 {
		t.Errorf("counts = %d/%d/%d, want 1/1/1", env.Errors, env.Warnings, env.Infos)
	}
	if len(env.Diagnostics) != 3 {
		t.Fatalf("got %d diagnostics, want 3", len(env.Diagnostics))
	}
	if d := env.Diagnostics[0]; d.Code != "GV001" || d.Severity != "error" || d.File != "a.clf" || d.Line != 1 {
		t.Errorf("first diagnostic = %+v", d)
	}

	// An empty report still emits an empty array, not null.
	out, err = (&Report{}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "null") {
		t.Errorf("empty report JSON contains null:\n%s", out)
	}
}

func TestSARIFRendering(t *testing.T) {
	out, err := sampleReport().SARIF()
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					Physical struct {
						Artifact struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region *struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "guavavet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// The full catalog rides in the driver so CI can document every code.
	if len(run.Tool.Driver.Rules) != len(Catalog) {
		t.Errorf("driver carries %d rules, want %d", len(run.Tool.Driver.Rules), len(Catalog))
	}
	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(run.Results))
	}
	levels := map[string]string{}
	for _, res := range run.Results {
		levels[res.RuleID] = res.Level
	}
	if levels["GV001"] != "error" || levels["GV103"] != "warning" || levels["GV307"] != "note" {
		t.Errorf("levels = %v", levels)
	}
	// Positionless diagnostics must omit the region entirely.
	for _, res := range run.Results {
		region := res.Locations[0].Physical.Region
		if res.RuleID == "GV307" && region != nil {
			t.Errorf("GV307 (file-only pos) has a region: %+v", region)
		}
		if res.RuleID == "GV001" && (region == nil || region.StartLine != 1) {
			t.Errorf("GV001 region = %+v, want startLine 1", region)
		}
	}
}
