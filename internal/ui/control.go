// Package ui models the data-entry user interface of a clinical reporting
// tool: forms composed of controls (group boxes, radio lists, drop-down
// lists, text boxes, check boxes) with exact question wording, answer
// options, default values, required flags, and enablement dependencies
// ("the frequency textbox does not become enabled until someone answers the
// smoking question" — Figure 2 of the paper).
//
// The paper's GUAVA prototype extended Visual Studio .NET form components so
// an IDE could derive a g-tree from GUI code; this package is the equivalent
// substrate in Go: a declarative form model that both (a) drives simulated
// data entry with full UI semantics and (b) is walked by internal/gtree to
// derive the g-tree automatically (Hypothesis #1).
package ui

import (
	"fmt"

	"guava/internal/relstore"
)

// Kind enumerates control kinds.
type Kind uint8

// Control kinds. GroupBox is structural and stores no data; the remaining
// kinds store a value in the contributor database.
const (
	GroupBox Kind = iota
	TextBox
	CheckBox
	RadioList
	DropDown
)

// String returns the control kind name.
func (k Kind) String() string {
	switch k {
	case GroupBox:
		return "GroupBox"
	case TextBox:
		return "TextBox"
	case CheckBox:
		return "CheckBox"
	case RadioList:
		return "RadioList"
	case DropDown:
		return "DropDown"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Option is one selectable answer of a radio list or drop-down: the display
// text the clinician sees and the value the tool stores in the database.
// The distinction matters: "a 1 in the field smoker might mean that the
// patient is a current smoker, or instead could mean that they quit smoking
// one year ago" — only the UI carries the wording.
type Option struct {
	Display string
	Stored  relstore.Value
}

// EnableCond describes when a control becomes enabled, relative to another
// control on the same form.
type EnableCond uint8

// Enablement conditions.
const (
	// Always means the control is always enabled.
	Always EnableCond = iota
	// WhenAnswered enables the control once the referenced control has any
	// answer (the smoking → frequency dependency of Figure 2).
	WhenAnswered
	// WhenEquals enables the control when the referenced control's answer
	// equals a specific stored value.
	WhenEquals
)

// Enablement is a guard on a control.
type Enablement struct {
	Cond    EnableCond
	Control string         // name of the controlling control
	Value   relstore.Value // for WhenEquals
}

// Control is one element of a form. Group boxes have children and store no
// data; every other kind stores one value per form instance.
type Control struct {
	// Name is the unique identifier of the control within its form; it is
	// also the column name in the form's naive schema.
	Name string
	// Kind is the control kind.
	Kind Kind
	// Question is the exact wording shown to the clinician.
	Question string
	// Options are the selectable answers (RadioList, DropDown).
	Options []Option
	// AllowFreeText marks a drop-down that also accepts typed text (the
	// alcohol control of Figure 3a has "an option for free text").
	AllowFreeText bool
	// Default is the initial value, or NULL when the control starts
	// unselected (Figure 3b: "the radio list starts out with no option
	// selected").
	Default relstore.Value
	// Required marks controls that must be answered before submission.
	Required bool
	// DataType is the stored type for TextBox controls; selections store
	// their option's Stored value kind.
	DataType relstore.Kind
	// Enabled guards data entry (zero value: always enabled).
	Enabled Enablement
	// Children are the nested controls of a GroupBox.
	Children []*Control
}

// StoresData reports whether the control stores a value (everything except
// group boxes).
func (c *Control) StoresData() bool { return c.Kind != GroupBox }

// StoredKind returns the relstore kind this control's answers occupy in the
// naive schema.
func (c *Control) StoredKind() relstore.Kind {
	switch c.Kind {
	case CheckBox:
		return relstore.KindBool
	case TextBox:
		if c.DataType == relstore.KindNull {
			return relstore.KindString
		}
		return c.DataType
	case RadioList, DropDown:
		for _, o := range c.Options {
			if !o.Stored.IsNull() {
				return o.Stored.Kind()
			}
		}
		return relstore.KindString
	default:
		return relstore.KindNull
	}
}

// OptionFor returns the option whose stored value equals v.
func (c *Control) OptionFor(v relstore.Value) (Option, bool) {
	for _, o := range c.Options {
		if o.Stored.Equal(v) {
			return o, true
		}
	}
	return Option{}, false
}

// ValidateAnswer checks a candidate stored value against the control's
// constraints: option membership for selection controls (unless free text is
// allowed), kind agreement for text boxes and check boxes.
func (c *Control) ValidateAnswer(v relstore.Value) error {
	if v.IsNull() {
		return nil // clearing an answer is always allowed pre-submit
	}
	switch c.Kind {
	case GroupBox:
		return fmt.Errorf("ui: control %q is a group box and stores no data", c.Name)
	case CheckBox:
		if v.Kind() != relstore.KindBool {
			return fmt.Errorf("ui: control %q expects a boolean, got %s", c.Name, v)
		}
	case TextBox:
		want := c.StoredKind()
		if v.Kind() != want && !(want == relstore.KindFloat && v.Kind() == relstore.KindInt) {
			return fmt.Errorf("ui: control %q expects %s, got %s", c.Name, want, v)
		}
	case RadioList:
		if _, ok := c.OptionFor(v); !ok {
			return fmt.Errorf("ui: %s is not an option of radio list %q", v, c.Name)
		}
	case DropDown:
		if _, ok := c.OptionFor(v); !ok {
			if !c.AllowFreeText {
				return fmt.Errorf("ui: %s is not an option of drop-down %q", v, c.Name)
			}
			if v.Kind() != relstore.KindString {
				return fmt.Errorf("ui: free text in %q must be a string, got %s", c.Name, v)
			}
		}
	}
	return nil
}

// walk visits the control and all descendants depth-first.
func (c *Control) walk(fn func(*Control)) {
	fn(c)
	for _, ch := range c.Children {
		ch.walk(fn)
	}
}
