package ui

import (
	"fmt"
	"sort"

	"guava/internal/relstore"
)

// RecordSink receives a submitted form instance as a naive-schema row (key
// column included). Pattern stacks implement this to write the physical
// contributor database.
type RecordSink interface {
	WriteRecord(form *Form, values map[string]relstore.Value) error
}

// Entry is one in-progress filling of a form, with full UI semantics:
// answers are validated against the control definitions, disabled controls
// cannot be answered, clearing a controlling answer clears its dependents,
// and submission enforces required controls. The workload generator drives
// all contributor data through Entry so that everything in the database was
// "entered through the user interface", as with real reporting tools.
type Entry struct {
	form    *Form
	key     relstore.Value
	answers map[string]relstore.Value
}

// NewEntry starts a new form instance with the given key value. Defaults
// are applied to enabled controls, mirroring what the tool displays when the
// screen opens.
func NewEntry(form *Form, key int64) (*Entry, error) {
	if form.byName == nil {
		if err := form.Validate(); err != nil {
			return nil, err
		}
	}
	e := &Entry{form: form, key: relstore.Int(key), answers: make(map[string]relstore.Value)}
	// Apply defaults in a deterministic order; a default only lands on a
	// control that is enabled given earlier defaults.
	names := make([]string, 0, len(form.byName))
	for n := range form.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := form.byName[n]
		if c.StoresData() && !c.Default.IsNull() && e.IsEnabled(n) {
			e.answers[n] = c.Default
		}
	}
	return e, nil
}

// Form returns the form being filled.
func (e *Entry) Form() *Form { return e.form }

// IsEnabled reports whether the named control is currently enabled, given
// the answers entered so far.
func (e *Entry) IsEnabled(name string) bool {
	c, ok := e.form.byName[name]
	if !ok {
		return false
	}
	switch c.Enabled.Cond {
	case Always:
		return true
	case WhenAnswered:
		v, ok := e.answers[c.Enabled.Control]
		return ok && !v.IsNull()
	case WhenEquals:
		v, ok := e.answers[c.Enabled.Control]
		return ok && v.Equal(c.Enabled.Value)
	default:
		return false
	}
}

// Answer returns the current answer of a control (NULL when unanswered).
func (e *Entry) Answer(name string) relstore.Value {
	if v, ok := e.answers[name]; ok {
		return v
	}
	return relstore.Null()
}

// Set records an answer for a control, enforcing UI semantics. Setting NULL
// clears the answer. Clearing or changing a controlling answer clears every
// control that thereby becomes disabled (transitively), exactly as a GUI
// blanks and disables dependent fields.
func (e *Entry) Set(name string, v relstore.Value) error {
	c, err := e.form.Control(name)
	if err != nil {
		return err
	}
	if !c.StoresData() {
		return fmt.Errorf("ui: cannot answer group box %q", name)
	}
	if !e.IsEnabled(name) {
		return fmt.Errorf("ui: control %q is disabled", name)
	}
	if err := c.ValidateAnswer(v); err != nil {
		return err
	}
	if v.IsNull() {
		delete(e.answers, name)
	} else {
		e.answers[name] = v
	}
	e.clearDisabled()
	return nil
}

// clearDisabled removes answers from controls that are no longer enabled,
// repeating until a fixed point so chains of dependencies clear fully.
func (e *Entry) clearDisabled() {
	for {
		changed := false
		for name := range e.answers {
			if !e.IsEnabled(name) {
				delete(e.answers, name)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// missingRequired returns the names of enabled required controls without an
// answer, sorted.
func (e *Entry) missingRequired() []string {
	var missing []string
	e.form.Walk(func(c *Control) {
		if c.StoresData() && c.Required && e.IsEnabled(c.Name) {
			if _, ok := e.answers[c.Name]; !ok {
				missing = append(missing, c.Name)
			}
		}
	})
	sort.Strings(missing)
	return missing
}

// Values snapshots the naive-schema row the entry would submit: the key
// column plus every data control's answer (NULL when unanswered).
func (e *Entry) Values() map[string]relstore.Value {
	out := make(map[string]relstore.Value, len(e.answers)+1)
	out[e.form.KeyColumn] = e.key
	for _, c := range e.form.DataControls() {
		out[c.Name] = e.Answer(c.Name)
	}
	return out
}

// Submit validates required controls and writes the instance to the sink.
func (e *Entry) Submit(sink RecordSink) error {
	if missing := e.missingRequired(); len(missing) > 0 {
		return fmt.Errorf("ui: form %q missing required answers: %v", e.form.Name, missing)
	}
	return sink.WriteRecord(e.form, e.Values())
}
