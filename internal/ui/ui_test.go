package ui

import (
	"strings"
	"testing"

	"guava/internal/relstore"
)

// figure2Form builds the Figure 2 "Procedure" dialog: Complications and
// Medical History group boxes, with the Frequency textbox enabled only once
// the Smoking question is answered.
func figure2Form(t *testing.T) *Form {
	t.Helper()
	f := &Form{
		Name:      "Procedure",
		Title:     "Procedure",
		KeyColumn: "ProcedureID",
		Controls: []*Control{
			{
				Name: "Complications", Kind: GroupBox, Question: "Complications",
				Children: []*Control{
					{Name: "Hypoxia", Kind: CheckBox, Question: "Hypoxia"},
					{Name: "SurgeonConsulted", Kind: CheckBox, Question: "Surgeon Consulted"},
					{Name: "OtherComplication", Kind: TextBox, Question: "Other", DataType: relstore.KindString},
				},
			},
			{
				Name: "MedicalHistory", Kind: GroupBox, Question: "Medical History",
				Children: []*Control{
					{Name: "RenalFailure", Kind: CheckBox, Question: "Renal Failure"},
					{Name: "Smoking", Kind: RadioList, Question: "Does the patient smoke?",
						Options: []Option{
							{Display: "No", Stored: relstore.Str("No")},
							{Display: "Yes", Stored: relstore.Str("Yes")},
							{Display: "Quit", Stored: relstore.Str("Quit")},
						}},
					{Name: "Frequency", Kind: TextBox, Question: "Packs per day", DataType: relstore.KindFloat,
						Enabled: Enablement{Cond: WhenAnswered, Control: "Smoking"}},
					{Name: "Alcohol", Kind: DropDown, Question: "Alcohol use", AllowFreeText: true,
						Options: []Option{
							{Display: "None", Stored: relstore.Str("None")},
							{Display: "Light", Stored: relstore.Str("Light")},
							{Display: "Heavy", Stored: relstore.Str("Heavy")},
						}},
				},
			},
		},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFormValidateCatchesStructuralErrors(t *testing.T) {
	base := func() *Form {
		return &Form{Name: "F", KeyColumn: "ID", Controls: []*Control{
			{Name: "A", Kind: CheckBox, Question: "a?"},
		}}
	}
	good := base()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid form rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Form)
	}{
		{"empty form name", func(f *Form) { f.Name = "" }},
		{"no key column", func(f *Form) { f.KeyColumn = "" }},
		{"duplicate control", func(f *Form) {
			f.Controls = append(f.Controls, &Control{Name: "A", Kind: CheckBox, Question: "dup"})
		}},
		{"control collides with key", func(f *Form) {
			f.Controls = append(f.Controls, &Control{Name: "ID", Kind: CheckBox})
		}},
		{"empty control name", func(f *Form) {
			f.Controls = append(f.Controls, &Control{Name: "", Kind: CheckBox})
		}},
		{"selection without options", func(f *Form) {
			f.Controls = append(f.Controls, &Control{Name: "R", Kind: RadioList})
		}},
		{"empty group box", func(f *Form) {
			f.Controls = append(f.Controls, &Control{Name: "G", Kind: GroupBox})
		}},
		{"children on non-group", func(f *Form) {
			f.Controls = append(f.Controls, &Control{Name: "T", Kind: TextBox,
				Children: []*Control{{Name: "X", Kind: CheckBox}}})
		}},
		{"bad default", func(f *Form) {
			f.Controls = append(f.Controls, &Control{Name: "R", Kind: RadioList,
				Options: []Option{{Display: "x", Stored: relstore.Str("x")}},
				Default: relstore.Str("not-an-option")})
		}},
		{"enable by unknown", func(f *Form) {
			f.Controls = append(f.Controls, &Control{Name: "D", Kind: CheckBox,
				Enabled: Enablement{Cond: WhenAnswered, Control: "ZZZ"}})
		}},
		{"enable by self", func(f *Form) {
			f.Controls = append(f.Controls, &Control{Name: "D", Kind: CheckBox,
				Enabled: Enablement{Cond: WhenAnswered, Control: "D"}})
		}},
		{"enable by group box", func(f *Form) {
			f.Controls = append(f.Controls,
				&Control{Name: "G", Kind: GroupBox, Children: []*Control{{Name: "X", Kind: CheckBox}}},
				&Control{Name: "D", Kind: CheckBox, Enabled: Enablement{Cond: WhenAnswered, Control: "G"}})
		}},
	}
	for _, c := range cases {
		f := base()
		c.mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestNaiveSchema(t *testing.T) {
	f := figure2Form(t)
	s, err := f.NaiveSchema()
	if err != nil {
		t.Fatal(err)
	}
	want := "ProcedureID, Hypoxia, SurgeonConsulted, OtherComplication, RenalFailure, Smoking, Frequency, Alcohol"
	if got := s.NameList(); got != want {
		t.Errorf("naive schema = %q\nwant %q", got, want)
	}
	// Group boxes contribute no columns.
	if s.Has("Complications") || s.Has("MedicalHistory") {
		t.Error("group boxes must not appear in the naive schema")
	}
	col, _ := s.Col("Frequency")
	if col.Type != relstore.KindFloat {
		t.Errorf("Frequency type = %v, want REAL", col.Type)
	}
	col, _ = s.Col("Hypoxia")
	if col.Type != relstore.KindBool {
		t.Errorf("Hypoxia type = %v", col.Type)
	}
	key, _ := s.Col("ProcedureID")
	if !key.NotNull || key.Type != relstore.KindInt {
		t.Error("key column must be NOT NULL INTEGER")
	}
}

func TestStoredKinds(t *testing.T) {
	intDrop := &Control{Name: "C", Kind: DropDown, Options: []Option{
		{Display: "zero", Stored: relstore.Int(0)},
		{Display: "one", Stored: relstore.Int(1)},
	}}
	if intDrop.StoredKind() != relstore.KindInt {
		t.Error("drop-down with int codes must store INTEGER")
	}
	tb := &Control{Name: "T", Kind: TextBox}
	if tb.StoredKind() != relstore.KindString {
		t.Error("untyped text box must default to TEXT")
	}
	gb := &Control{Name: "G", Kind: GroupBox}
	if gb.StoresData() {
		t.Error("group box must not store data")
	}
}

func TestEntryEnablementFlow(t *testing.T) {
	f := figure2Form(t)
	e, err := NewEntry(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.IsEnabled("Frequency") {
		t.Fatal("Frequency must start disabled")
	}
	if err := e.Set("Frequency", relstore.Float(2)); err == nil {
		t.Fatal("setting a disabled control must fail")
	}
	if err := e.Set("Smoking", relstore.Str("Yes")); err != nil {
		t.Fatal(err)
	}
	if !e.IsEnabled("Frequency") {
		t.Fatal("Frequency must enable after Smoking is answered")
	}
	if err := e.Set("Frequency", relstore.Float(2)); err != nil {
		t.Fatal(err)
	}
	// Clearing Smoking disables and clears Frequency.
	if err := e.Set("Smoking", relstore.Null()); err != nil {
		t.Fatal(err)
	}
	if e.IsEnabled("Frequency") {
		t.Error("Frequency must disable when Smoking cleared")
	}
	if !e.Answer("Frequency").IsNull() {
		t.Error("Frequency answer must clear when disabled")
	}
}

func TestEntryTransitiveClear(t *testing.T) {
	f := &Form{Name: "F", KeyColumn: "ID", Controls: []*Control{
		{Name: "A", Kind: CheckBox, Question: "a?"},
		{Name: "B", Kind: CheckBox, Question: "b?", Enabled: Enablement{Cond: WhenEquals, Control: "A", Value: relstore.Bool(true)}},
		{Name: "C", Kind: CheckBox, Question: "c?", Enabled: Enablement{Cond: WhenAnswered, Control: "B"}},
	}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	e, _ := NewEntry(f, 1)
	if err := e.Set("A", relstore.Bool(true)); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("B", relstore.Bool(true)); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("C", relstore.Bool(true)); err != nil {
		t.Fatal(err)
	}
	// Flipping A to false disables B (WhenEquals true), which clears B,
	// which disables C transitively.
	if err := e.Set("A", relstore.Bool(false)); err != nil {
		t.Fatal(err)
	}
	if !e.Answer("B").IsNull() || !e.Answer("C").IsNull() {
		t.Errorf("B=%v C=%v; both must clear transitively", e.Answer("B"), e.Answer("C"))
	}
}

func TestEntryValidation(t *testing.T) {
	f := figure2Form(t)
	e, _ := NewEntry(f, 1)
	if err := e.Set("Smoking", relstore.Str("Sometimes")); err == nil {
		t.Error("non-option radio answer must fail")
	}
	if err := e.Set("Hypoxia", relstore.Int(1)); err == nil {
		t.Error("non-bool checkbox answer must fail")
	}
	if err := e.Set("MedicalHistory", relstore.Str("x")); err == nil {
		t.Error("answering a group box must fail")
	}
	if err := e.Set("Nope", relstore.Str("x")); err == nil {
		t.Error("answering an unknown control must fail")
	}
	// Free-text drop-down accepts non-option strings.
	if err := e.Set("Alcohol", relstore.Str("two glasses of wine weekly")); err != nil {
		t.Errorf("free text rejected: %v", err)
	}
	if err := e.Set("Alcohol", relstore.Int(3)); err == nil {
		t.Error("non-string free text must fail")
	}
}

func TestEntryDefaults(t *testing.T) {
	f := &Form{Name: "F", KeyColumn: "ID", Controls: []*Control{
		{Name: "Sedated", Kind: CheckBox, Question: "sedated?", Default: relstore.Bool(true)},
		{Name: "Gate", Kind: CheckBox, Question: "gate?"},
		{Name: "Dependent", Kind: CheckBox, Question: "dep?", Default: relstore.Bool(true),
			Enabled: Enablement{Cond: WhenAnswered, Control: "Gate"}},
	}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	e, _ := NewEntry(f, 1)
	if !e.Answer("Sedated").Equal(relstore.Bool(true)) {
		t.Error("default not applied")
	}
	if !e.Answer("Dependent").IsNull() {
		t.Error("default must not apply to a disabled control")
	}
}

type captureSink struct {
	form   *Form
	values map[string]relstore.Value
}

func (c *captureSink) WriteRecord(f *Form, values map[string]relstore.Value) error {
	c.form, c.values = f, values
	return nil
}

func TestEntrySubmit(t *testing.T) {
	f := figure2Form(t)
	// Make Smoking required.
	sm, _ := f.Control("Smoking")
	sm.Required = true
	e, _ := NewEntry(f, 42)
	sink := &captureSink{}
	if err := e.Submit(sink); err == nil || !strings.Contains(err.Error(), "Smoking") {
		t.Fatalf("submit with missing required must name the control, got %v", err)
	}
	if err := e.Set("Smoking", relstore.Str("Quit")); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("Frequency", relstore.Float(1.5)); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(sink); err != nil {
		t.Fatal(err)
	}
	if sink.form != f {
		t.Error("sink got wrong form")
	}
	if !sink.values["ProcedureID"].Equal(relstore.Int(42)) {
		t.Errorf("key = %v", sink.values["ProcedureID"])
	}
	if !sink.values["Smoking"].Equal(relstore.Str("Quit")) || !sink.values["Frequency"].Equal(relstore.Float(1.5)) {
		t.Errorf("values = %v", sink.values)
	}
	if !sink.values["Hypoxia"].IsNull() {
		t.Error("unanswered controls must submit NULL")
	}
	// Required-but-disabled controls do not block submission.
	f2 := &Form{Name: "F2", KeyColumn: "ID", Controls: []*Control{
		{Name: "Gate", Kind: CheckBox, Question: "g?"},
		{Name: "Req", Kind: TextBox, Question: "r?", Required: true,
			Enabled: Enablement{Cond: WhenAnswered, Control: "Gate"}},
	}}
	if err := f2.Validate(); err != nil {
		t.Fatal(err)
	}
	e2, _ := NewEntry(f2, 1)
	if err := e2.Submit(sink); err != nil {
		t.Errorf("disabled required control must not block: %v", err)
	}
}

func TestFormRender(t *testing.T) {
	f := figure2Form(t)
	sm, _ := f.Control("Smoking")
	sm.Required = true
	sm.Default = relstore.Str("No")
	txt := f.Render()
	for _, want := range []string{
		"┌─ Procedure",
		"[Complications]",
		"☐ Hypoxia",
		"◉ No", // default shows selected
		"*required",
		"greyed out until Smoking is answered",
		"(or type)",
		"[ Submit ]",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("render missing %q:\n%s", want, txt)
		}
	}
	// Untitled forms fall back to the name.
	f2 := &Form{Name: "Bare", KeyColumn: "ID", Controls: []*Control{{Name: "X", Kind: CheckBox, Question: "x?"}}}
	if err := f2.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2.Render(), "┌─ Bare") {
		t.Error("untitled form must render its name")
	}
}

func TestToolFormLookup(t *testing.T) {
	f := figure2Form(t)
	tool := &Tool{Name: "CORI", Version: 1, Forms: []*Form{f}}
	got, err := tool.Form("Procedure")
	if err != nil || got != f {
		t.Fatalf("Form lookup: %v, %v", got, err)
	}
	if _, err := tool.Form("Nope"); err == nil {
		t.Error("missing form must error")
	}
}
