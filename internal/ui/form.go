package ui

import (
	"fmt"
	"strings"

	"guava/internal/relstore"
)

// Form is one screen of the reporting tool. "Each screen of the tool
// corresponds to a table, and each control corresponds to a column" — that
// correspondence is the naive schema (Section 3.2 of the paper).
type Form struct {
	// Name identifies the form (and names its naive-schema table).
	Name string
	// Title is the window caption shown to the clinician.
	Title string
	// KeyColumn names the synthetic instance key (e.g. "ProcedureID"); every
	// submitted form instance receives a unique key value.
	KeyColumn string
	// Controls are the top-level controls (often group boxes).
	Controls []*Control

	byName map[string]*Control
}

// Tool is a reporting-tool release: a named, versioned set of forms. New
// versions of a tool motivate the classifier-propagation feature (Section 6).
type Tool struct {
	Name    string
	Version int
	Forms   []*Form
}

// Form returns the named form of the tool.
func (t *Tool) Form(name string) (*Form, error) {
	for _, f := range t.Forms {
		if f.Name == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("ui: tool %s v%d has no form %q", t.Name, t.Version, name)
}

// Validate checks structural invariants: unique control names, enablement
// references resolving to data-storing controls on the same form, option
// lists present where required, defaults valid, and a non-empty key column.
// It also builds the internal name index; call it once after constructing a
// form literal.
func (f *Form) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("ui: form with empty name")
	}
	if f.KeyColumn == "" {
		return fmt.Errorf("ui: form %q has no key column", f.Name)
	}
	f.byName = make(map[string]*Control)
	var walkErr error
	for _, c := range f.Controls {
		c.walk(func(ctl *Control) {
			if walkErr != nil {
				return
			}
			if ctl.Name == "" {
				walkErr = fmt.Errorf("ui: form %q has a control with empty name", f.Name)
				return
			}
			if ctl.Name == f.KeyColumn {
				walkErr = fmt.Errorf("ui: form %q control %q collides with key column", f.Name, ctl.Name)
				return
			}
			if _, dup := f.byName[ctl.Name]; dup {
				walkErr = fmt.Errorf("ui: form %q has duplicate control %q", f.Name, ctl.Name)
				return
			}
			f.byName[ctl.Name] = ctl
			if (ctl.Kind == RadioList || ctl.Kind == DropDown) && len(ctl.Options) == 0 {
				walkErr = fmt.Errorf("ui: selection control %q has no options", ctl.Name)
				return
			}
			if ctl.Kind == GroupBox && len(ctl.Children) == 0 {
				walkErr = fmt.Errorf("ui: group box %q has no children", ctl.Name)
				return
			}
			if ctl.Kind != GroupBox && len(ctl.Children) > 0 {
				walkErr = fmt.Errorf("ui: non-group control %q has children", ctl.Name)
				return
			}
			if !ctl.Default.IsNull() {
				if err := ctl.ValidateAnswer(ctl.Default); err != nil {
					walkErr = fmt.Errorf("ui: default of %q: %v", ctl.Name, err)
					return
				}
			}
		})
		if walkErr != nil {
			return walkErr
		}
	}
	// Enablement references must resolve after the whole index is built.
	for _, ctl := range f.byName {
		if ctl.Enabled.Cond == Always {
			continue
		}
		ref, ok := f.byName[ctl.Enabled.Control]
		if !ok {
			return fmt.Errorf("ui: control %q enabled-by unknown control %q", ctl.Name, ctl.Enabled.Control)
		}
		if !ref.StoresData() {
			return fmt.Errorf("ui: control %q enabled-by group box %q", ctl.Name, ref.Name)
		}
		if ref.Name == ctl.Name {
			return fmt.Errorf("ui: control %q enabled-by itself", ctl.Name)
		}
	}
	return nil
}

// Control returns the named control.
func (f *Form) Control(name string) (*Control, error) {
	if f.byName == nil {
		if err := f.Validate(); err != nil {
			return nil, err
		}
	}
	c, ok := f.byName[name]
	if !ok {
		return nil, fmt.Errorf("ui: form %q has no control %q", f.Name, name)
	}
	return c, nil
}

// Walk visits every control of the form depth-first in declaration order.
func (f *Form) Walk(fn func(*Control)) {
	for _, c := range f.Controls {
		c.walk(fn)
	}
}

// DataControls returns the data-storing controls in declaration order.
func (f *Form) DataControls() []*Control {
	var out []*Control
	f.Walk(func(c *Control) {
		if c.StoresData() {
			out = append(out, c)
		}
	})
	return out
}

// Render draws the form the way the clinician sees it: group boxes frame
// their children, selection controls list their choices, and enablement is
// noted where a control starts greyed out. cmd/guavadump uses it so analysts
// can compare the g-tree against the screen it came from.
func (f *Form) Render() string {
	var sb strings.Builder
	title := f.Title
	if title == "" {
		title = f.Name
	}
	fmt.Fprintf(&sb, "┌─ %s\n", title)
	var rec func(c *Control, depth int)
	rec = func(c *Control, depth int) {
		indent := "│ " + strings.Repeat("  ", depth)
		switch c.Kind {
		case GroupBox:
			fmt.Fprintf(&sb, "%s[%s]\n", indent, c.Question)
			for _, ch := range c.Children {
				rec(ch, depth+1)
			}
			return
		case CheckBox:
			mark := "☐"
			if !c.Default.IsNull() && c.Default.Kind() == relstore.KindBool && c.Default.AsBool() {
				mark = "☑"
			}
			fmt.Fprintf(&sb, "%s%s %s", indent, mark, c.Question)
		case TextBox:
			fmt.Fprintf(&sb, "%s%s [______]", indent, c.Question)
		case RadioList:
			opts := make([]string, len(c.Options))
			for i, o := range c.Options {
				mark := "○"
				if !c.Default.IsNull() && o.Stored.Equal(c.Default) {
					mark = "◉"
				}
				opts[i] = mark + " " + o.Display
			}
			fmt.Fprintf(&sb, "%s%s  %s", indent, c.Question, strings.Join(opts, "  "))
		case DropDown:
			opts := make([]string, len(c.Options))
			for i, o := range c.Options {
				opts[i] = o.Display
			}
			extra := ""
			if c.AllowFreeText {
				extra = " (or type)"
			}
			fmt.Fprintf(&sb, "%s%s [%s ▾]%s", indent, c.Question, strings.Join(opts, " | "), extra)
		}
		if c.Required {
			sb.WriteString("  *required")
		}
		if c.Enabled.Cond != Always {
			fmt.Fprintf(&sb, "  (greyed out until %s", c.Enabled.Control)
			if c.Enabled.Cond == WhenEquals {
				fmt.Fprintf(&sb, " = %s", c.Enabled.Value.Display())
			} else {
				sb.WriteString(" is answered")
			}
			sb.WriteString(")")
		}
		sb.WriteString("\n")
	}
	for _, c := range f.Controls {
		rec(c, 0)
	}
	sb.WriteString("└─ [ Submit ]\n")
	return sb.String()
}

// NaiveSchema derives the form's naive schema: the key column followed by
// one column per data-storing control. This is the in-memory table design
// the paper observes reporting tools maintain; design patterns map it to the
// physical database.
func (f *Form) NaiveSchema() (*relstore.Schema, error) {
	if f.byName == nil {
		if err := f.Validate(); err != nil {
			return nil, err
		}
	}
	cols := []relstore.Column{{Name: f.KeyColumn, Type: relstore.KindInt, NotNull: true}}
	for _, c := range f.DataControls() {
		cols = append(cols, relstore.Column{Name: c.Name, Type: c.StoredKind()})
	}
	return relstore.NewSchema(cols...)
}
