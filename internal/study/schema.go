// Package study implements MultiClass study schemas (Section 3.3, Figure 4):
// a hierarchical conceptual model where "the only relationship type is
// has-a, with a single entity of primary interest sitting atop a tree", and
// — the biggest difference from an ER diagram — attributes carry *multiple
// domains*, because "depending on the study, analysts may want to represent
// an attribute like smoking habits in different ways" (Table 2).
package study

import (
	"fmt"
	"sort"
	"strings"

	"guava/internal/relstore"
)

// Domain is one representation of an attribute. Elements enumerate
// categorical domains; open domains (counts, free text, measurements) leave
// Elements empty and are characterized by Kind alone.
type Domain struct {
	// ID names the domain within its attribute, e.g. "D1".
	ID string
	// Kind is the value type of the domain.
	Kind relstore.Kind
	// Elements are the categorical values, in display order.
	Elements []string
	// Description explains the representation ("Number of packs smoked per
	// day", "General classification of smoking habits", …).
	Description string
}

// HasElement reports whether the categorical domain contains the element.
func (d *Domain) HasElement(e string) bool {
	for _, x := range d.Elements {
		if x == e {
			return true
		}
	}
	return false
}

// String renders the domain for display.
func (d *Domain) String() string {
	if len(d.Elements) > 0 {
		return fmt.Sprintf("%s{%s}", d.ID, strings.Join(d.Elements, ", "))
	}
	return fmt.Sprintf("%s(%s)", d.ID, d.Kind)
}

// Attribute is a named attribute with one or more domains.
type Attribute struct {
	Name    string
	Domains []*Domain
}

// Domain returns the identified domain.
func (a *Attribute) Domain(id string) (*Domain, error) {
	for _, d := range a.Domains {
		if d.ID == id {
			return d, nil
		}
	}
	return nil, fmt.Errorf("study: attribute %q has no domain %q", a.Name, id)
}

// Entity is a node of the has-a tree.
type Entity struct {
	Name       string
	Attributes []*Attribute
	// Children are has-a related entities (a Procedure has Findings, a
	// Finding has New Medications — Figure 4).
	Children []*Entity
}

// Attribute returns the named attribute.
func (e *Entity) Attribute(name string) (*Attribute, error) {
	for _, a := range e.Attributes {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("study: entity %q has no attribute %q", e.Name, name)
}

// Schema is a complete study schema: the primary entity of interest at the
// root of a has-a tree. "The study schema may be incomplete compared to a
// global schema. Data elements not needed in any study are simply omitted.
// Analysts can expand the study schema as needed for new studies."
type Schema struct {
	Name string
	Root *Entity

	byName map[string]*Entity
}

// Validate checks structural invariants and builds the entity index: unique
// entity names, unique attribute names per entity, unique domain IDs per
// attribute, non-empty names, at least one domain per attribute.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("study: schema with empty name")
	}
	if s.Root == nil {
		return fmt.Errorf("study: schema %q has no primary entity", s.Name)
	}
	s.byName = make(map[string]*Entity)
	var walk func(e *Entity) error
	walk = func(e *Entity) error {
		if e.Name == "" {
			return fmt.Errorf("study: schema %q has an entity with empty name", s.Name)
		}
		if _, dup := s.byName[e.Name]; dup {
			return fmt.Errorf("study: duplicate entity %q", e.Name)
		}
		s.byName[e.Name] = e
		attrs := map[string]bool{}
		for _, a := range e.Attributes {
			if a.Name == "" {
				return fmt.Errorf("study: entity %q has an attribute with empty name", e.Name)
			}
			if attrs[a.Name] {
				return fmt.Errorf("study: entity %q has duplicate attribute %q", e.Name, a.Name)
			}
			attrs[a.Name] = true
			if len(a.Domains) == 0 {
				return fmt.Errorf("study: attribute %s.%s has no domains", e.Name, a.Name)
			}
			ids := map[string]bool{}
			for _, d := range a.Domains {
				if d.ID == "" {
					return fmt.Errorf("study: attribute %s.%s has a domain with empty ID", e.Name, a.Name)
				}
				if ids[d.ID] {
					return fmt.Errorf("study: attribute %s.%s has duplicate domain %q", e.Name, a.Name, d.ID)
				}
				ids[d.ID] = true
				if len(d.Elements) > 0 && d.Kind != relstore.KindString {
					return fmt.Errorf("study: categorical domain %s.%s:%s must be TEXT, is %s", e.Name, a.Name, d.ID, d.Kind)
				}
				seen := map[string]bool{}
				for _, el := range d.Elements {
					if seen[el] {
						return fmt.Errorf("study: domain %s.%s:%s repeats element %q", e.Name, a.Name, d.ID, el)
					}
					seen[el] = true
				}
			}
		}
		for _, c := range e.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(s.Root)
}

// Entity returns the named entity anywhere in the tree.
func (s *Schema) Entity(name string) (*Entity, error) {
	if s.byName == nil {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	e, ok := s.byName[name]
	if !ok {
		return nil, fmt.Errorf("study: schema %q has no entity %q", s.Name, name)
	}
	return e, nil
}

// Domain resolves entity.attribute:domain.
func (s *Schema) Domain(entity, attribute, domain string) (*Domain, error) {
	e, err := s.Entity(entity)
	if err != nil {
		return nil, err
	}
	a, err := e.Attribute(attribute)
	if err != nil {
		return nil, err
	}
	return a.Domain(domain)
}

// EntityNames returns all entity names, sorted.
func (s *Schema) EntityNames() []string {
	if s.byName == nil {
		if err := s.Validate(); err != nil {
			return nil
		}
	}
	out := make([]string, 0, len(s.byName))
	for n := range s.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddAttribute expands an entity with a new attribute (analysts "can add
// data elements to a study schema" per Section 3). It fails on duplicates.
func (s *Schema) AddAttribute(entity string, attr *Attribute) error {
	e, err := s.Entity(entity)
	if err != nil {
		return err
	}
	if _, err := e.Attribute(attr.Name); err == nil {
		return fmt.Errorf("study: entity %q already has attribute %q", entity, attr.Name)
	}
	e.Attributes = append(e.Attributes, attr)
	s.byName = nil // force re-validation on next access
	return s.Validate()
}

// AddDomain expands an attribute with a new representation.
func (s *Schema) AddDomain(entity, attribute string, d *Domain) error {
	e, err := s.Entity(entity)
	if err != nil {
		return err
	}
	a, err := e.Attribute(attribute)
	if err != nil {
		return err
	}
	if _, err := a.Domain(d.ID); err == nil {
		return fmt.Errorf("study: attribute %s.%s already has domain %q", entity, attribute, d.ID)
	}
	a.Domains = append(a.Domains, d)
	s.byName = nil
	return s.Validate()
}

// AddChild attaches a new has-a child entity.
func (s *Schema) AddChild(parent string, child *Entity) error {
	p, err := s.Entity(parent)
	if err != nil {
		return err
	}
	p.Children = append(p.Children, child)
	s.byName = nil
	return s.Validate()
}

// Render draws the schema as indented text (the shape of Figure 4).
func (s *Schema) Render() string {
	var sb strings.Builder
	var rec func(e *Entity, depth int)
	rec = func(e *Entity, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&sb, "%sEntity: %s\n", indent, e.Name)
		for _, a := range e.Attributes {
			doms := make([]string, len(a.Domains))
			for i, d := range a.Domains {
				doms[i] = d.String()
			}
			fmt.Fprintf(&sb, "%s  %s: %s\n", indent, a.Name, strings.Join(doms, " | "))
		}
		for _, c := range e.Children {
			rec(c, depth+1)
		}
	}
	rec(s.Root, 0)
	return sb.String()
}
