package study

import (
	"fmt"

	"guava/internal/relstore"
)

// This file machine-checks the information-loss observation of Table 2:
// "There is no way to translate any one representation into another without
// losing information." Losslessness is decided relative to observed data:
// representation B is derivable from representation A over a sample exactly
// when A's value determines B's value on every sample point — i.e. the
// partition A induces refines the partition B induces. Section 4.2 uses the
// same relation ("if classifier A and classifier B share a simple algebraic
// relationship, then we can materialize A's output and compute B as
// needed"), so this predicate also powers the algebraic materialization
// strategy in internal/materialize.

// Derivation is a concrete value-level mapping from one domain
// representation to another, built from data.
type Derivation map[string]relstore.Value

// DeriveMapping attempts to construct the function f with b = f(a) pointwise
// over the paired samples. It returns the mapping and true when a's value
// determines b's value everywhere; otherwise it returns a witness pair index
// and false.
func DeriveMapping(aVals, bVals []relstore.Value) (Derivation, int, bool) {
	if len(aVals) != len(bVals) {
		return nil, -1, false
	}
	m := make(Derivation)
	chosen := make(map[string]relstore.Value)
	for i := range aVals {
		k := aVals[i].Key()
		if prev, ok := chosen[k]; ok {
			if !prev.Equal(bVals[i]) {
				return nil, i, false // same A-value maps to two B-values
			}
			continue
		}
		chosen[k] = bVals[i]
		m[k] = bVals[i]
	}
	return m, -1, true
}

// Apply maps a value through the derivation; unseen values yield NULL and
// false.
func (d Derivation) Apply(v relstore.Value) (relstore.Value, bool) {
	out, ok := d[v.Key()]
	return out, ok
}

// LossReport summarizes derivability between two representations of the
// same attribute over a sample.
type LossReport struct {
	AtoB bool // B derivable from A
	BtoA bool // A derivable from B
	// WitnessAtoB / WitnessBtoA are sample indices demonstrating
	// non-derivability (-1 when derivable).
	WitnessAtoB int
	WitnessBtoA int
}

// Lossless reports whether the representations are mutually derivable.
func (r LossReport) Lossless() bool { return r.AtoB && r.BtoA }

// CheckLoss analyzes two parallel columns of representation values.
func CheckLoss(aVals, bVals []relstore.Value) (LossReport, error) {
	if len(aVals) != len(bVals) {
		return LossReport{}, fmt.Errorf("study: sample columns differ in length: %d vs %d", len(aVals), len(bVals))
	}
	_, wAB, ab := DeriveMapping(aVals, bVals)
	_, wBA, ba := DeriveMapping(bVals, aVals)
	return LossReport{AtoB: ab, BtoA: ba, WitnessAtoB: wAB, WitnessBtoA: wBA}, nil
}

// SmokingDomains returns the three smoking representations of Table 2, used
// across tests, examples, and benchmarks.
func SmokingDomains() []*Domain {
	return []*Domain{
		{ID: "D1", Kind: relstore.KindFloat, Description: "Number of packs smoked per day"},
		{ID: "D2", Kind: relstore.KindString, Elements: []string{"None", "Current", "Previous"},
			Description: "No smoking, current smoker, or has smoked in the past"},
		{ID: "D3", Kind: relstore.KindString, Elements: []string{"None", "Light", "Moderate", "Heavy"},
			Description: "General classification of smoking habits"},
	}
}
