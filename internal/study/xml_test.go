package study

import (
	"bytes"
	"strings"
	"testing"
)

func TestSchemaXMLRoundTrip(t *testing.T) {
	s := figure4Schema(t)
	var buf bytes.Buffer
	if err := EncodeXML(&buf, s); err != nil {
		t.Fatal(err)
	}
	xml := buf.String()
	for _, want := range []string{`name="CORI outcomes"`, `name="Procedure"`, `name="Smoking"`, `<element>Moderate</element>`, `kind="REAL"`} {
		if !strings.Contains(xml, want) {
			t.Errorf("XML missing %q:\n%s", want, xml[:min(len(xml), 400)])
		}
	}
	back, err := DecodeXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name {
		t.Errorf("name = %q", back.Name)
	}
	if strings.Join(back.EntityNames(), ",") != strings.Join(s.EntityNames(), ",") {
		t.Errorf("entities = %v", back.EntityNames())
	}
	d3, err := back.Domain("Procedure", "Smoking", "D3")
	if err != nil {
		t.Fatal(err)
	}
	if !d3.HasElement("Heavy") || d3.Description == "" {
		t.Errorf("D3 = %+v", d3)
	}
	// Render is identical after round trip.
	if back.Render() != s.Render() {
		t.Errorf("render changed:\n%s\nvs\n%s", back.Render(), s.Render())
	}
}

func TestSchemaXMLErrors(t *testing.T) {
	if _, err := DecodeXML(strings.NewReader("junk")); err == nil {
		t.Error("garbage must fail")
	}
	bad := `<studySchema name="x"><entity name="E"><attribute name="A"><domain id="D" kind="WAT"></domain></attribute></entity></studySchema>`
	if _, err := DecodeXML(strings.NewReader(bad)); err == nil {
		t.Error("unknown kind must fail")
	}
	// Decoded schemas re-validate: a duplicate entity fails.
	dup := `<studySchema name="x"><entity name="E"><entity name="E"></entity></entity></studySchema>`
	if _, err := DecodeXML(strings.NewReader(dup)); err == nil {
		t.Error("duplicate entity must fail validation")
	}
	// Encoding an invalid schema fails.
	var buf bytes.Buffer
	if err := EncodeXML(&buf, &Schema{Name: ""}); err == nil {
		t.Error("invalid schema must fail to encode")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
