package study

import (
	"encoding/xml"
	"fmt"
	"io"

	"guava/internal/relstore"
)

// The paper stores its artifacts as XML documents; this file provides the
// XML form of study schemas, so a schema can be shared between analysts and
// versioned alongside the studies that use it.

type xmlDomain struct {
	ID          string   `xml:"id,attr"`
	Kind        string   `xml:"kind,attr"`
	Description string   `xml:"description,omitempty"`
	Elements    []string `xml:"element"`
}

type xmlAttribute struct {
	Name    string      `xml:"name,attr"`
	Domains []xmlDomain `xml:"domain"`
}

type xmlEntity struct {
	Name       string         `xml:"name,attr"`
	Attributes []xmlAttribute `xml:"attribute"`
	Children   []xmlEntity    `xml:"entity"`
}

type xmlSchema struct {
	XMLName xml.Name  `xml:"studySchema"`
	Name    string    `xml:"name,attr"`
	Root    xmlEntity `xml:"entity"`
}

func entityToXML(e *Entity) xmlEntity {
	x := xmlEntity{Name: e.Name}
	for _, a := range e.Attributes {
		xa := xmlAttribute{Name: a.Name}
		for _, d := range a.Domains {
			xa.Domains = append(xa.Domains, xmlDomain{
				ID: d.ID, Kind: d.Kind.String(), Description: d.Description, Elements: d.Elements,
			})
		}
		x.Attributes = append(x.Attributes, xa)
	}
	for _, c := range e.Children {
		x.Children = append(x.Children, entityToXML(c))
	}
	return x
}

func entityFromXML(x xmlEntity) (*Entity, error) {
	e := &Entity{Name: x.Name}
	for _, xa := range x.Attributes {
		a := &Attribute{Name: xa.Name}
		for _, xd := range xa.Domains {
			var k relstore.Kind
			switch xd.Kind {
			case "INTEGER":
				k = relstore.KindInt
			case "REAL":
				k = relstore.KindFloat
			case "TEXT":
				k = relstore.KindString
			case "BOOLEAN":
				k = relstore.KindBool
			default:
				return nil, fmt.Errorf("study: unknown domain kind %q", xd.Kind)
			}
			a.Domains = append(a.Domains, &Domain{
				ID: xd.ID, Kind: k, Description: xd.Description, Elements: xd.Elements,
			})
		}
		e.Attributes = append(e.Attributes, a)
	}
	for _, xc := range x.Children {
		c, err := entityFromXML(xc)
		if err != nil {
			return nil, err
		}
		e.Children = append(e.Children, c)
	}
	return e, nil
}

// EncodeXML writes the schema as indented XML.
func EncodeXML(w io.Writer, s *Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	x := xmlSchema{Name: s.Name, Root: entityToXML(s.Root)}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return fmt.Errorf("study: encode: %w", err)
	}
	return nil
}

// DecodeXML reads a schema from XML produced by EncodeXML and validates it.
func DecodeXML(r io.Reader) (*Schema, error) {
	var x xmlSchema
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("study: decode: %w", err)
	}
	root, err := entityFromXML(x.Root)
	if err != nil {
		return nil, err
	}
	s := &Schema{Name: x.Name, Root: root}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
