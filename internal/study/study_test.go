package study

import (
	"strings"
	"testing"

	"guava/internal/relstore"
)

// figure4Schema reconstructs the study schema of Figure 4: Procedure at the
// top with Finding-of-Fissure and New-Medication children, and the Smoking
// attribute carrying the three domains of Table 2.
func figure4Schema(t *testing.T) *Schema {
	t.Helper()
	s := &Schema{
		Name: "CORI outcomes",
		Root: &Entity{
			Name: "Procedure",
			Attributes: []*Attribute{
				{Name: "TransientHypoxia", Domains: []*Domain{{ID: "D1", Kind: relstore.KindBool, Description: "yes/no"}}},
				{Name: "ProlongedHypoxia", Domains: []*Domain{{ID: "D1", Kind: relstore.KindBool, Description: "yes/no"}}},
				{Name: "SurgeryPerformed", Domains: []*Domain{{ID: "D1", Kind: relstore.KindBool, Description: "yes/no"}}},
				{Name: "Smoking", Domains: SmokingDomains()},
				{Name: "AlcoholUse", Domains: []*Domain{
					{ID: "D1", Kind: relstore.KindString, Elements: []string{"None", "Light", "Heavy"}},
				}},
			},
			Children: []*Entity{
				{
					Name: "FindingOfFissure",
					Attributes: []*Attribute{
						{Name: "Size", Domains: []*Domain{{ID: "D1", Kind: relstore.KindInt, Description: "mm"}}},
						{Name: "ImagesTaken", Domains: []*Domain{{ID: "D1", Kind: relstore.KindBool}}},
					},
				},
				{
					Name: "NewMedication",
					Attributes: []*Attribute{
						{Name: "Drug", Domains: []*Domain{
							{ID: "D1", Kind: relstore.KindString, Description: "Name"},
							{ID: "D2", Kind: relstore.KindString, Description: "Bar code"},
						}},
						{Name: "Dosage", Domains: []*Domain{{ID: "D1", Kind: relstore.KindInt, Description: "mg"}}},
						{Name: "Instructions", Domains: []*Domain{
							{ID: "D1", Kind: relstore.KindString, Description: "full instructions"},
							{ID: "D2", Kind: relstore.KindInt, Description: "pills/day"},
						}},
					},
				},
			},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFigure4StudySchema checks the has-a tree, multi-domain attributes, and
// lookups.
func TestFigure4StudySchema(t *testing.T) {
	s := figure4Schema(t)
	names := s.EntityNames()
	if strings.Join(names, ",") != "FindingOfFissure,NewMedication,Procedure" {
		t.Errorf("entities = %v", names)
	}
	// Primary entity sits atop the tree.
	if s.Root.Name != "Procedure" {
		t.Error("Procedure must be the primary entity")
	}
	// Smoking has three domains (Table 2).
	smoking, err := s.Entity("Procedure")
	if err != nil {
		t.Fatal(err)
	}
	a, err := smoking.Attribute("Smoking")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Domains) != 3 {
		t.Fatalf("smoking domains = %d, want 3", len(a.Domains))
	}
	d3, err := s.Domain("Procedure", "Smoking", "D3")
	if err != nil {
		t.Fatal(err)
	}
	if !d3.HasElement("Moderate") || d3.HasElement("Gigantic") {
		t.Error("D3 elements wrong")
	}
	if _, err := s.Domain("Procedure", "Smoking", "D9"); err == nil {
		t.Error("missing domain must error")
	}
	if _, err := s.Domain("Procedure", "Nope", "D1"); err == nil {
		t.Error("missing attribute must error")
	}
	if _, err := s.Entity("Nope"); err == nil {
		t.Error("missing entity must error")
	}
	txt := s.Render()
	for _, want := range []string{"Entity: Procedure", "Entity: NewMedication", "Smoking", "D3{None, Light, Moderate, Heavy}", "D1(REAL)"} {
		if !strings.Contains(txt, want) {
			t.Errorf("render missing %q:\n%s", want, txt)
		}
	}
}

func TestSchemaValidation(t *testing.T) {
	mk := func(mut func(*Schema)) error {
		s := figure4Schema(t)
		mut(s)
		s.byName = nil
		return s.Validate()
	}
	cases := []struct {
		name string
		mut  func(*Schema)
	}{
		{"empty schema name", func(s *Schema) { s.Name = "" }},
		{"nil root", func(s *Schema) { s.Root = nil }},
		{"duplicate entity", func(s *Schema) {
			s.Root.Children = append(s.Root.Children, &Entity{Name: "Procedure"})
		}},
		{"empty entity name", func(s *Schema) {
			s.Root.Children = append(s.Root.Children, &Entity{Name: ""})
		}},
		{"duplicate attribute", func(s *Schema) {
			s.Root.Attributes = append(s.Root.Attributes, &Attribute{Name: "Smoking", Domains: SmokingDomains()})
		}},
		{"attribute without domains", func(s *Schema) {
			s.Root.Attributes = append(s.Root.Attributes, &Attribute{Name: "X"})
		}},
		{"duplicate domain id", func(s *Schema) {
			s.Root.Attributes[0].Domains = append(s.Root.Attributes[0].Domains, &Domain{ID: "D1", Kind: relstore.KindBool})
		}},
		{"categorical non-text", func(s *Schema) {
			s.Root.Attributes = append(s.Root.Attributes, &Attribute{Name: "X", Domains: []*Domain{
				{ID: "D1", Kind: relstore.KindInt, Elements: []string{"a"}},
			}})
		}},
		{"repeated element", func(s *Schema) {
			s.Root.Attributes = append(s.Root.Attributes, &Attribute{Name: "X", Domains: []*Domain{
				{ID: "D1", Kind: relstore.KindString, Elements: []string{"a", "a"}},
			}})
		}},
	}
	for _, c := range cases {
		if err := mk(c.mut); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestSchemaExpansion(t *testing.T) {
	s := figure4Schema(t)
	// "Analysts can expand the study schema as needed for new studies."
	if err := s.AddAttribute("Procedure", &Attribute{Name: "Indication", Domains: []*Domain{
		{ID: "D1", Kind: relstore.KindString},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Domain("Procedure", "Indication", "D1"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddAttribute("Procedure", &Attribute{Name: "Indication", Domains: []*Domain{{ID: "D1", Kind: relstore.KindString}}}); err == nil {
		t.Error("duplicate attribute must fail")
	}
	if err := s.AddDomain("Procedure", "Smoking", &Domain{ID: "D4", Kind: relstore.KindInt, Description: "pack-years"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDomain("Procedure", "Smoking", &Domain{ID: "D4", Kind: relstore.KindInt}); err == nil {
		t.Error("duplicate domain must fail")
	}
	if err := s.AddChild("Procedure", &Entity{Name: "Complication", Attributes: []*Attribute{
		{Name: "Kind", Domains: []*Domain{{ID: "D1", Kind: relstore.KindString}}},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Entity("Complication"); err != nil {
		t.Error("added child not found")
	}
	if err := s.AddChild("Procedure", &Entity{Name: "Procedure"}); err == nil {
		t.Error("adding a duplicate entity must fail validation")
	}
}

// TestTable2DomainsLossy machine-checks Table 2's claim: over realistic
// data, none of the three smoking representations is derivable from another
// (packs/day refines both categoricals, but the categoricals cannot
// reconstruct packs/day, and D2/D3 cut the population differently).
func TestTable2DomainsLossy(t *testing.T) {
	// Raw patients: (packs/day, status, habit class) triples produced by
	// three different classifiers over the same source records.
	d1 := []relstore.Value{relstore.Float(0), relstore.Float(0.5), relstore.Float(1.5), relstore.Float(3), relstore.Float(0), relstore.Float(6)}
	d2 := []relstore.Value{relstore.Str("None"), relstore.Str("Current"), relstore.Str("Previous"), relstore.Str("Current"), relstore.Str("Previous"), relstore.Str("Current")}
	d3 := []relstore.Value{relstore.Str("None"), relstore.Str("Light"), relstore.Str("Light"), relstore.Str("Moderate"), relstore.Str("None"), relstore.Str("Heavy")}

	// D1 -> D3 is derivable here (each packs value appears with one class)…
	r13, err := CheckLoss(d1, d3)
	if err != nil {
		t.Fatal(err)
	}
	if !r13.AtoB {
		t.Error("D3 must be derivable from D1 over this sample")
	}
	// …but not the reverse: D3 "None" covers packs 0 with both statuses.
	if r13.BtoA {
		t.Error("D1 must not be derivable from D3 (category collapses distinct packs)")
	}
	if r13.Lossless() {
		t.Error("D1/D3 must not be mutually lossless")
	}
	// D2 vs D3: same packs=0 patients split by ever-smoked, so neither
	// direction is derivable.
	r23, err := CheckLoss(d2, d3)
	if err != nil {
		t.Fatal(err)
	}
	if r23.AtoB || r23.BtoA {
		t.Errorf("D2 and D3 must be mutually non-derivable: %+v", r23)
	}
	if r23.WitnessAtoB < 0 || r23.WitnessBtoA < 0 {
		t.Error("non-derivability must come with witnesses")
	}
	// Length mismatch errors.
	if _, err := CheckLoss(d1, d2[:3]); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestDeriveMapping(t *testing.T) {
	a := []relstore.Value{relstore.Int(1), relstore.Int(2), relstore.Int(1)}
	b := []relstore.Value{relstore.Str("x"), relstore.Str("y"), relstore.Str("x")}
	m, w, ok := DeriveMapping(a, b)
	if !ok || w != -1 {
		t.Fatalf("expected derivable, witness %d", w)
	}
	v, found := m.Apply(relstore.Int(2))
	if !found || !v.Equal(relstore.Str("y")) {
		t.Errorf("Apply(2) = %v, %v", v, found)
	}
	if _, found := m.Apply(relstore.Int(99)); found {
		t.Error("unseen value must not map")
	}
	// Conflict detection.
	b2 := []relstore.Value{relstore.Str("x"), relstore.Str("y"), relstore.Str("z")}
	if _, w, ok := DeriveMapping(a, b2); ok || w != 2 {
		t.Errorf("expected conflict at index 2, got ok=%v w=%d", ok, w)
	}
	// NULL keys are values too.
	a3 := []relstore.Value{relstore.Null(), relstore.Null()}
	b3 := []relstore.Value{relstore.Str("u"), relstore.Str("u")}
	if _, _, ok := DeriveMapping(a3, b3); !ok {
		t.Error("NULL-keyed mapping must work")
	}
}
