package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a fake repo in a temp dir: keys are root-relative
// slash paths, values are file contents.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func lintTree(t *testing.T, files map[string]string, opts Options) []Finding {
	t.Helper()
	fs, err := Lint(writeTree(t, files), opts)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	return fs
}

// wantFinding asserts exactly one finding fired for the given rule and that
// its message carries the substring.
func wantFinding(t *testing.T, fs []Finding, rule, msgPart string) {
	t.Helper()
	var hits []Finding
	for _, f := range fs {
		if f.Rule == rule {
			hits = append(hits, f)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("rule %s: got %d findings %v, want 1", rule, len(hits), fs)
	}
	if !strings.Contains(hits[0].Msg, msgPart) {
		t.Fatalf("rule %s: message %q does not contain %q", rule, hits[0].Msg, msgPart)
	}
}

func wantClean(t *testing.T, fs []Finding) {
	t.Helper()
	if len(fs) != 0 {
		t.Fatalf("expected no findings, got %v", fs)
	}
}

// detOpts lints internal/core as a deterministic dir with no obs doc.
func detOpts() Options {
	return Options{DeterministicDirs: []string{"internal/core"}}
}

func TestDeterminismSeededViolation(t *testing.T) {
	fs := lintTree(t, map[string]string{
		"internal/core/scan.go": `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	}, detOpts())
	wantFinding(t, fs, "determinism", "time.Now")
}

func TestDeterminismRandImport(t *testing.T) {
	fs := lintTree(t, map[string]string{
		"internal/core/shuffle.go": `package core

import "math/rand"

func Pick(n int) int { return rand.Intn(n) }
`,
	}, detOpts())
	wantFinding(t, fs, "determinism", "math/rand")
}

func TestDeterminismAliasAndAllowlist(t *testing.T) {
	// A renamed time import is still caught; an allowlisted basename and a
	// _test.go file are not; time.Sleep is permitted (it does not observe).
	files := map[string]string{
		"internal/core/aliased.go": `package core

import clock "time"

func T() int64 { return clock.Now().Unix() }
`,
		"internal/core/exec.go": `package core

import "time"

func Backoff() int64 { return time.Now().Unix() }
`,
		"internal/core/scan_test.go": `package core

import "time"

func testStamp() int64 { return time.Now().Unix() }
`,
		"internal/core/wait.go": `package core

import "time"

func Pause() { time.Sleep(time.Millisecond) }
`,
	}
	opts := detOpts()
	opts.DeterminismAllow = map[string]bool{"exec.go": true}
	fs := lintTree(t, files, opts)
	wantFinding(t, fs, "determinism", "time.Now")
	if fs[0].File != "internal/core/aliased.go" {
		t.Fatalf("finding in %s, want aliased.go", fs[0].File)
	}
}

func TestDeterminismOutsideDirsClean(t *testing.T) {
	wantClean(t, lintTree(t, map[string]string{
		"internal/other/free.go": `package other

import "time"

func Stamp() int64 { return time.Now().Unix() }
`,
	}, detOpts()))
}

const obsDoc = "# Metrics\n\n" +
	"| metric | type | meaning |\n" +
	"|---|---|---|\n" +
	"| `etl.steps.ok` / `.failed` | counter | step outcomes |\n" +
	"| `relstore.ops.<op>` | counter | per-operator row counts |\n"

func TestObsNamesSeededViolation(t *testing.T) {
	fs := lintTree(t, map[string]string{
		"OBSERVABILITY.md": obsDoc,
		"internal/m/m.go": `package m

type Registry struct{}

func (r *Registry) Counter(name string) *Registry { return r }

func Record(r *Registry) { r.Counter("etl.steps.undocumented") }
`,
	}, Options{ObsDoc: "OBSERVABILITY.md"})
	wantFinding(t, fs, "obs-names", "etl.steps.undocumented")
}

func TestObsNamesDocumentedAndWildcardClean(t *testing.T) {
	// Exact name, dot-suffix expansion, and a <op> wildcard all count as
	// documented; dynamically built names are out of scope.
	wantClean(t, lintTree(t, map[string]string{
		"OBSERVABILITY.md": obsDoc,
		"internal/m/m.go": `package m

type Registry struct{}

func (r *Registry) Counter(name string) *Registry { return r }

func Record(r *Registry, op string) {
	r.Counter("etl.steps.ok")
	r.Counter("etl.steps.failed")
	r.Counter("relstore.ops.scan_where")
	r.Counter("relstore.ops." + op)
}
`,
	}, Options{ObsDoc: "OBSERVABILITY.md"}))
}

func TestMutexGuardSeededViolation(t *testing.T) {
	fs := lintTree(t, map[string]string{
		"internal/g/g.go": `package g

import "sync"

type Cache struct {
	name string

	mu      sync.Mutex
	entries map[string]int
}

func (c *Cache) Peek(k string) int { return c.entries[k] }

func (c *Cache) Get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[k]
}

func (c *Cache) getLocked(k string) int { return c.entries[k] }

func NewCache() *Cache { return &Cache{entries: map[string]int{}} }

func (c *Cache) Name() string { return c.name }
`,
	}, Options{})
	wantFinding(t, fs, "mutex-guard", `"entries" of Cache`)
	if fs[0].Msg == "" || !strings.Contains(fs[0].Msg, "Peek") {
		t.Fatalf("finding should name the offending function Peek: %v", fs[0])
	}
}

func TestMutexGuardGroupEndsAtLineGap(t *testing.T) {
	// A blank line ends the guarded group: "free" below the gap may be read
	// without the lock.
	wantClean(t, lintTree(t, map[string]string{
		"internal/g/g.go": `package g

import "sync"

type Box struct {
	mu   sync.RWMutex
	held int

	free int
}

func (b *Box) Free() int { return b.free }

func (b *Box) Held() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.held
}
`,
	}, Options{}))
}

func TestMutexGuardAmbiguousFieldNameSkipped(t *testing.T) {
	// "n" is declared by two structs in the package, so syntactic
	// attribution would guess; the rule stays silent instead.
	wantClean(t, lintTree(t, map[string]string{
		"internal/g/g.go": `package g

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	n int
}

func Read(b *B) int { return b.n }
`,
	}, Options{}))
}

func TestCtxFirstSeededViolation(t *testing.T) {
	fs := lintTree(t, map[string]string{
		"internal/r/r.go": `package r

import "context"

type Job struct{}

func (j *Job) RunAll(workers int) error { _ = context.Background(); return nil }
`,
	}, Options{})
	wantFinding(t, fs, "ctx-first", "RunAll")
}

func TestCtxFirstBuriedContext(t *testing.T) {
	fs := lintTree(t, map[string]string{
		"internal/r/r.go": `package r

import "context"

func Walk(path string, ctx context.Context) {}
`,
	}, Options{})
	wantFinding(t, fs, "ctx-first", "position 1")
}

func TestCtxFirstCompliantAndExemptClean(t *testing.T) {
	// ctx-first Run methods, zero-param Run, and unexported runners are fine.
	wantClean(t, lintTree(t, map[string]string{
		"internal/r/r.go": `package r

import "context"

type Job struct{}

func (j *Job) Run(ctx context.Context, workers int) error { return nil }

func (j *Job) RunOnce() {}

func (j *Job) runAll(workers int) {}

func Runtime(n int) int { return n }
`,
	}, Options{}))
}

// TestRepoIsClean is the acceptance gate: guava's own tree must produce zero
// findings under the default configuration guavalint ships with.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Lint(root, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}
