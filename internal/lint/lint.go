// Package lint is guava's zero-dependency repo-invariant linter: four
// structural rules over the Go source tree that gofmt and go vet do not
// cover, built on go/ast and go/parser alone.
//
//   - determinism: the relational engine and the ETL compiler must be pure
//     functions of their inputs — no wall-clock reads (time.Now, time.Since)
//     and no math/rand imports inside the deterministic packages. The
//     resilient executor is exempt (its backoff and metrics are timing by
//     nature), as are tests.
//   - obs-names: every metric name recorded in code (a string literal passed
//     to Counter/Gauge/Histogram) must appear in OBSERVABILITY.md's metric
//     table — the doc is the registry of record, and an undocumented counter
//     is invisible to operators.
//   - mutex-guard: a struct field group declared line-contiguously after a
//     sync.Mutex/sync.RWMutex field is guarded by it; any function touching
//     a guarded field must also take that mutex (or be named *Locked, the
//     caller-holds-the-lock convention).
//   - ctx-first: exported Run-prefixed functions with parameters take a
//     context.Context first, and no function buries a context.Context after
//     other parameters.
//
// Findings are deterministic: sorted by file, line, rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	File string // path relative to the linted root
	Line int
	Rule string // determinism | obs-names | mutex-guard | ctx-first
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Rule, f.Msg)
}

// Options configures a lint run. The zero value disables the determinism
// and obs-names rules (no dirs, no doc); DefaultOptions returns guava's
// repo configuration.
type Options struct {
	// DeterministicDirs are root-relative directories whose non-test files
	// must not read the wall clock or import math/rand.
	DeterministicDirs []string
	// DeterminismAllow exempts file basenames from the determinism rule
	// (the executor's timing code).
	DeterminismAllow map[string]bool
	// ObsDoc is the root-relative markdown file whose metric table is the
	// registry of record for obs-names; "" disables the rule.
	ObsDoc string
}

// DefaultOptions is the configuration guavalint runs with on this repo.
func DefaultOptions() Options {
	return Options{
		DeterministicDirs: []string{
			"internal/relstore",
			"internal/patterns",
			"internal/etl",
			"internal/textsrc",
		},
		DeterminismAllow: map[string]bool{
			"exec.go":   true, // executor: backoff, deadlines, step timing
			"policy.go": true, // RunPolicy: deadline arithmetic
		},
		ObsDoc: "OBSERVABILITY.md",
	}
}

// Lint checks every Go package under root and returns the sorted findings.
func Lint(root string, opts Options) ([]Finding, error) {
	pkgs, fset, err := loadPackages(root)
	if err != nil {
		return nil, err
	}

	var obsNames *metricDoc
	if opts.ObsDoc != "" {
		raw, err := os.ReadFile(filepath.Join(root, opts.ObsDoc))
		if err != nil {
			return nil, fmt.Errorf("lint: obs-names doc: %w", err)
		}
		obsNames = parseMetricDoc(string(raw))
	}
	detDirs := make(map[string]bool, len(opts.DeterministicDirs))
	for _, d := range opts.DeterministicDirs {
		detDirs[filepath.ToSlash(d)] = true
	}

	var out []Finding
	emit := func(pos token.Pos, rule, format string, args ...any) {
		p := fset.Position(pos)
		rel, err := filepath.Rel(root, p.Filename)
		if err != nil {
			rel = p.Filename
		}
		out = append(out, Finding{
			File: filepath.ToSlash(rel),
			Line: p.Line,
			Rule: rule,
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	for _, pkg := range pkgs {
		for _, file := range pkg.files {
			if detDirs[pkg.relDir] && !opts.DeterminismAllow[filepath.Base(file.path)] {
				checkDeterminism(file, emit)
			}
			if obsNames != nil {
				checkObsNames(file, obsNames, emit)
			}
			checkCtxFirst(file, emit)
		}
		checkMutexGuards(pkg, fset, emit)
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return out, nil
}

// srcFile is one parsed non-test source file plus its import table.
type srcFile struct {
	path    string
	ast     *ast.File
	imports map[string]string // local name -> import path
}

// srcPkg groups a directory's files (methods and the structs they guard may
// live in different files of the same package).
type srcPkg struct {
	relDir string
	files  []*srcFile
}

// loadPackages parses every non-test .go file under root, grouped by
// directory. Hidden directories, testdata, and vendor trees are skipped.
func loadPackages(root string) ([]*srcPkg, *token.FileSet, error) {
	fset := token.NewFileSet()
	byDir := map[string]*srcPkg{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "node_modules") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return fmt.Errorf("lint: %w", perr)
		}
		rel, rerr := filepath.Rel(root, filepath.Dir(path))
		if rerr != nil {
			return rerr
		}
		rel = filepath.ToSlash(rel)
		pkg := byDir[rel]
		if pkg == nil {
			pkg = &srcPkg{relDir: rel}
			byDir[rel] = pkg
			dirs = append(dirs, rel)
		}
		pkg.files = append(pkg.files, &srcFile{path: path, ast: f, imports: importTable(f)})
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*srcPkg, 0, len(dirs))
	for _, d := range dirs {
		pkgs = append(pkgs, byDir[d])
	}
	return pkgs, fset, nil
}

// importTable maps each import's local name (alias or path base) to its
// path, so selector checks survive renamed imports.
func importTable(f *ast.File) map[string]string {
	t := map[string]string{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		t[name] = path
	}
	return t
}

// localNameOf returns the file-local identifier bound to the given import
// path ("" when the file does not import it).
func (f *srcFile) localNameOf(path string) string {
	for name, p := range f.imports {
		if p == path {
			return name
		}
	}
	return ""
}
