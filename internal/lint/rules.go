package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

type emitFunc func(pos token.Pos, rule, format string, args ...any)

// --- determinism -----------------------------------------------------------

// wallClockFuncs are the time-package functions that read the wall clock.
// time.Sleep is allowed (it delays, it does not observe), as are the
// constructors (time.Date, time.Unix) which are pure.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// checkDeterminism flags wall-clock reads and math/rand imports in files
// that belong to the deterministic core: the same plan over the same data
// must produce byte-identical output, and a hidden clock or RNG read is how
// that property silently rots.
func checkDeterminism(f *srcFile, emit emitFunc) {
	for _, imp := range f.ast.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			emit(imp.Pos(), "determinism", "deterministic package imports %s; thread a seeded source in from the caller instead", path)
		}
	}
	timeName := f.localNameOf("time")
	if timeName == "" {
		return
	}
	ast.Inspect(f.ast, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != timeName || !wallClockFuncs[sel.Sel.Name] {
			return true
		}
		emit(sel.Pos(), "determinism", "deterministic package reads the wall clock (time.%s); plan output must be a pure function of its inputs", sel.Sel.Name)
		return true
	})
}

// --- obs-names -------------------------------------------------------------

// metricDoc is the parsed metric registry from OBSERVABILITY.md: exact
// names plus wildcard patterns (from `<...>` segments).
type metricDoc struct {
	exact    map[string]bool
	patterns []*regexp.Regexp
}

func (d *metricDoc) allows(name string) bool {
	if d.exact[name] {
		return true
	}
	for _, p := range d.patterns {
		if p.MatchString(name) {
			return true
		}
	}
	return false
}

var backtickRe = regexp.MustCompile("`([^`]+)`")

// parseMetricDoc extracts the allowed metric names from the doc's table
// rows. A row's first cell may carry several backticked alternatives
// separated by "/": a token starting with "." shares the previous full
// token's prefix (`etl.steps.ok` / `.failed` → etl.steps.failed), and a
// `<...>` segment is a single-segment wildcard (`relstore.ops.<op>`).
func parseMetricDoc(doc string) *metricDoc {
	d := &metricDoc{exact: map[string]bool{}}
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 2 {
			continue
		}
		var prefix string
		for _, m := range backtickRe.FindAllStringSubmatch(cells[1], -1) {
			tok := m[1]
			if strings.ContainsAny(tok, " \t") {
				continue // prose like `serve.refresh <study>`, not a metric
			}
			if strings.HasPrefix(tok, ".") && prefix != "" {
				tok = prefix + tok
			} else if i := strings.LastIndex(tok, "."); i >= 0 {
				prefix = tok[:i]
			}
			if strings.Contains(tok, "<") {
				var re strings.Builder
				re.WriteString("^")
				rest := tok
				for {
					open := strings.Index(rest, "<")
					if open < 0 {
						re.WriteString(regexp.QuoteMeta(rest))
						break
					}
					clo := strings.Index(rest, ">")
					if clo < open {
						break
					}
					re.WriteString(regexp.QuoteMeta(rest[:open]))
					re.WriteString(`[A-Za-z0-9_]+`)
					rest = rest[clo+1:]
				}
				re.WriteString("$")
				if p, err := regexp.Compile(re.String()); err == nil {
					d.patterns = append(d.patterns, p)
				}
				continue
			}
			d.exact[tok] = true
		}
	}
	return d
}

// instrumentFuncs are the Registry methods that mint a named instrument.
var instrumentFuncs = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// checkObsNames flags metric-name literals that OBSERVABILITY.md does not
// carry: the doc is the operator-facing registry of record, so a counter
// born in code without a doc row is unfindable. Names built dynamically
// (non-literal arguments) are out of scope.
func checkObsNames(f *srcFile, doc *metricDoc, emit emitFunc) {
	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !instrumentFuncs[sel.Sel.Name] {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil || name == "" {
			return true
		}
		if !doc.allows(name) {
			emit(lit.Pos(), "obs-names", "metric %q is not documented in OBSERVABILITY.md's metric table", name)
		}
		return true
	})
}

// --- mutex-guard -----------------------------------------------------------

// guardGroup is one mutex field and the fields it guards.
type guardGroup struct {
	structName string
	mutexName  string
	fields     map[string]bool
}

// checkMutexGuards enforces the guarded-field convention package-wide: the
// fields declared line-contiguously after a sync.Mutex/RWMutex field belong
// to it, and every function that touches one must take that mutex somewhere
// in its body (or be named *Locked — the documented caller-holds-the-lock
// convention). New*-named constructors are exempt: they initialize values no
// other goroutine can see yet. Attribution is by field name, so field names
// that repeat across the package's structs are skipped rather than guessed
// at.
func checkMutexGuards(pkg *srcPkg, fset *token.FileSet, emit emitFunc) {
	var groups []guardGroup
	fieldOwners := map[string]int{} // field name -> # structs declaring it
	for _, f := range pkg.files {
		syncName := f.localNameOf("sync")
		for _, decl := range f.ast.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						fieldOwners[name.Name]++
					}
				}
				if syncName != "" {
					groups = append(groups, structGuards(ts.Name.Name, st, syncName, fset)...)
				}
			}
		}
	}
	if len(groups) == 0 {
		return
	}
	// A field name declared by more than one struct in the package cannot be
	// attributed syntactically; drop it from its group.
	for _, g := range groups {
		for name := range g.fields {
			if fieldOwners[name] > 1 {
				delete(g.fields, name)
			}
		}
	}

	for _, f := range pkg.files {
		for _, decl := range f.ast.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || strings.HasSuffix(fn.Name.Name, "Locked") ||
				strings.HasPrefix(fn.Name.Name, "New") {
				continue
			}
			locked := map[string]bool{} // mutex field names this body locks
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					if inner, ok := sel.X.(*ast.SelectorExpr); ok {
						locked[inner.Sel.Name] = true
					}
				}
				return true
			})
			for _, g := range groups {
				if locked[g.mutexName] {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if g.fields[sel.Sel.Name] {
						emit(sel.Pos(), "mutex-guard",
							"field %q of %s is guarded by %q (declared contiguously after it) but %s never takes that lock",
							sel.Sel.Name, g.structName, g.mutexName, fn.Name.Name)
						return false // one finding per field per function is enough
					}
					return true
				})
			}
		}
	}
}

// structGuards finds the mutex fields of one struct and their
// line-contiguous guarded groups. A group ends at the first line gap, at
// the next mutex field, or at the end of the struct.
func structGuards(structName string, st *ast.StructType, syncName string, fset *token.FileSet) []guardGroup {
	isMutex := func(t ast.Expr) bool {
		sel, ok := t.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Name == syncName && (sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex")
	}
	var groups []guardGroup
	fields := st.Fields.List
	for i := 0; i < len(fields); i++ {
		if !isMutex(fields[i].Type) || len(fields[i].Names) == 0 {
			continue
		}
		g := guardGroup{structName: structName, mutexName: fields[i].Names[0].Name, fields: map[string]bool{}}
		prevLine := fset.Position(fields[i].Pos()).Line
		for j := i + 1; j < len(fields); j++ {
			line := fset.Position(fields[j].Pos()).Line
			if line != prevLine+1 || isMutex(fields[j].Type) {
				break
			}
			for _, name := range fields[j].Names {
				g.fields[name.Name] = true
			}
			prevLine = line
		}
		if len(g.fields) > 0 {
			groups = append(groups, g)
		}
	}
	return groups
}

// --- ctx-first -------------------------------------------------------------

// checkCtxFirst enforces the context convention: an exported Run-prefixed
// function with parameters takes a context.Context first (a Run-like method
// is an execution entry point — it must be cancellable), and no function
// buries a context.Context after other parameters.
func checkCtxFirst(f *srcFile, emit emitFunc) {
	ctxName := f.localNameOf("context")
	isCtx := func(t ast.Expr) bool {
		if ctxName == "" {
			return false
		}
		sel, ok := t.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Name == ctxName && sel.Sel.Name == "Context"
	}
	for _, decl := range f.ast.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Type.Params == nil {
			continue
		}
		params := fn.Type.Params.List
		// Burying a context after other parameters is always wrong.
		for i, p := range params {
			if i > 0 && isCtx(p.Type) {
				emit(p.Pos(), "ctx-first", "%s takes a context.Context at position %d; contexts come first", fn.Name.Name, i)
			}
		}
		name := fn.Name.Name
		runLike := name == "Run" || (strings.HasPrefix(name, "Run") && len(name) > 3 &&
			name[3] >= 'A' && name[3] <= 'Z')
		if !runLike || !ast.IsExported(name) || len(params) == 0 {
			continue
		}
		if !isCtx(params[0].Type) {
			emit(fn.Pos(), "ctx-first", "exported %s takes parameters but no leading context.Context; Run-like methods must be cancellable", name)
		}
	}
}
