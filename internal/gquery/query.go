// Package gquery implements queries against g-trees. "The g-tree behaves
// like a view; when analysts write classifiers, they express queries against
// the g-trees" — a query names g-tree nodes and a condition in the
// classifier language, and the engine translates it through the
// contributor's pattern stack onto the physical database ("each pattern
// describes a data transformation; several put together describe how to
// translate a query against the g-tree into one against the database").
package gquery

import (
	"context"
	"fmt"
	"strings"

	"guava/internal/classifier"
	"guava/internal/gtree"
	"guava/internal/patterns"
	"guava/internal/relstore"
)

// Query is one analyst query over a g-tree.
type Query struct {
	// Tree is the g-tree being queried.
	Tree *gtree.Tree
	// Select names the nodes whose values to return; nil selects the key
	// plus every data node.
	Select []string
	// Where is an optional condition in the classifier expression language.
	Where string
}

// plan is the validated, compiled form of a query.
type plan struct {
	cols []string
	pred relstore.Pred
}

// compile validates node references and binds the condition.
func (q *Query) compile() (*plan, error) {
	p := &plan{pred: relstore.True}
	if q.Select == nil {
		p.cols = append([]string{q.Tree.KeyColumn}, q.Tree.FieldNames()...)
	} else {
		for _, name := range q.Select {
			if name == q.Tree.KeyColumn {
				p.cols = append(p.cols, name)
				continue
			}
			n, err := q.Tree.Node(name)
			if err != nil {
				return nil, fmt.Errorf("gquery: %w", err)
			}
			if !n.StoresData() {
				return nil, fmt.Errorf("gquery: node %q stores no data (a %s)", name, n.Kind)
			}
			p.cols = append(p.cols, name)
		}
		if len(p.cols) == 0 {
			return nil, fmt.Errorf("gquery: query selects nothing")
		}
	}
	if q.Where != "" {
		pred, _, err := classifier.BindCondition(q.Tree, q.Where)
		if err != nil {
			return nil, fmt.Errorf("gquery: %w", err)
		}
		p.pred = pred
	}
	return p, nil
}

// Run translates the query through the pattern stack and executes it against
// the contributor database. The context bounds the execution: a cancelled
// ctx aborts before the physical scan.
func (q *Query) Run(ctx context.Context, db *relstore.DB, stack *patterns.Stack, form patterns.FormInfo) (*relstore.Rows, error) {
	res, err := q.RunWithInfo(ctx, db, stack, form)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// RunWithInfo is Run, also reporting whether the condition was pushed down
// to the physical scan.
func (q *Query) RunWithInfo(ctx context.Context, db *relstore.DB, stack *patterns.Stack, form patterns.FormInfo) (patterns.QueryResult, error) {
	if err := ctx.Err(); err != nil {
		return patterns.QueryResult{}, err
	}
	p, err := q.compile()
	if err != nil {
		return patterns.QueryResult{}, err
	}
	return stack.QueryWithInfo(db, form, p.pred, p.cols)
}

// AggregateQuery is a grouped-aggregate query over a g-tree: Study 1 asks
// "how many (what proportion)" — analysts count and summarize, they do not
// fetch raw rows. Group keys are g-tree nodes; aggregates run over nodes.
type AggregateQuery struct {
	// Query supplies the tree and the WHERE condition; its Select is
	// ignored (the aggregate decides what it needs).
	Query
	// GroupBy names the grouping nodes (empty for a global aggregate).
	GroupBy []string
	// Aggs are the aggregate outputs.
	Aggs []relstore.Aggregate
}

// Run executes the aggregate through the pattern stack.
func (q *AggregateQuery) Run(ctx context.Context, db *relstore.DB, stack *patterns.Stack, form patterns.FormInfo) (*relstore.Rows, error) {
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("gquery: aggregate query with no aggregates")
	}
	// Fetch exactly the columns the aggregate touches.
	need := map[string]bool{}
	for _, g := range q.GroupBy {
		need[g] = true
	}
	for _, a := range q.Aggs {
		if a.Col != "" {
			need[a.Col] = true
		}
	}
	sel := make([]string, 0, len(need))
	for _, g := range q.GroupBy {
		sel = append(sel, g)
	}
	for _, a := range q.Aggs {
		if a.Col != "" && !contains(sel, a.Col) {
			sel = append(sel, a.Col)
		}
	}
	if len(sel) == 0 {
		sel = []string{q.Tree.KeyColumn} // COUNT(*) needs some column
	}
	base := Query{Tree: q.Tree, Select: sel, Where: q.Where}
	rows, err := base.Run(ctx, db, stack, form)
	if err != nil {
		return nil, err
	}
	out, err := relstore.GroupBy(rows, q.GroupBy, q.Aggs...)
	if err != nil {
		return nil, err
	}
	if len(q.GroupBy) > 0 {
		return relstore.SortBy(out, q.GroupBy...)
	}
	return out, nil
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// LogicalSQL renders the query as SQL over the naive view — what the analyst
// conceptually asked.
func (q *Query) LogicalSQL() (string, error) {
	p, err := q.compile()
	if err != nil {
		return "", err
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", strings.Join(p.cols, ", "), q.Tree.FormName())
	if q.Where != "" {
		sql += " WHERE " + p.pred.SQL()
	}
	return sql, nil
}

// Explain renders the full translation story: the logical SQL, the pattern
// stack it is rewritten through, whether the condition pushes down to the
// physical scan, and the physical tables it ultimately touches — the
// inspectability the paper demands of generated workflows.
func (q *Query) Explain(ctx context.Context, db *relstore.DB, stack *patterns.Stack, form patterns.FormInfo) (string, error) {
	sql, err := q.LogicalSQL()
	if err != nil {
		return "", err
	}
	tables, err := stack.PhysicalTables(form)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "logical:  %s\n", sql)
	fmt.Fprintf(&sb, "patterns: %s\n", stack.Describe())
	fmt.Fprintf(&sb, "physical: %s\n", strings.Join(tables, ", "))
	if q.Where != "" {
		res, err := q.RunWithInfo(ctx, db, stack, form)
		if err != nil {
			return "", err
		}
		mode := "evaluated over the reconstructed view (fallback)"
		if res.PushedDown {
			mode = "pushed down to the physical scan"
		}
		fmt.Fprintf(&sb, "where:    %s\n", mode)
	}
	return sb.String(), nil
}
