package gquery

import (
	"context"
	"strings"
	"testing"

	"guava/internal/relstore"
	"guava/internal/workload"
)

func coriFixture(t *testing.T) *workload.Contributor {
	t.Helper()
	c, err := workload.BuildCORI(5, 40)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestQueryRun(t *testing.T) {
	c := coriFixture(t)
	q := &Query{
		Tree:   c.Tree,
		Select: []string{"ProcedureID", "Smoking", "PacksPerDay"},
		Where:  "Smoking = 'Current'",
	}
	rows, err := q.Run(context.Background(), c.DB, c.Stack, c.Info)
	if err != nil {
		t.Fatal(err)
	}
	var wantCurrent int
	for _, tr := range c.Truths {
		if tr.Smoking == "Current" {
			wantCurrent++
		}
	}
	if rows.Len() != wantCurrent {
		t.Errorf("rows = %d, want %d", rows.Len(), wantCurrent)
	}
	if rows.Schema.NameList() != "ProcedureID, Smoking, PacksPerDay" {
		t.Errorf("schema = %s", rows.Schema.NameList())
	}
	for _, r := range rows.Data {
		if !r[1].Equal(relstore.Str("Current")) {
			t.Errorf("non-current row leaked: %v", r)
		}
	}
}

func TestQuerySelectAll(t *testing.T) {
	c := coriFixture(t)
	q := &Query{Tree: c.Tree}
	rows, err := q.Run(context.Background(), c.DB, c.Stack, c.Info)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != len(c.Truths) {
		t.Errorf("rows = %d", rows.Len())
	}
	// Key plus all 17 data nodes.
	if rows.Schema.Arity() != 18 {
		t.Errorf("arity = %d, want 18 (%s)", rows.Schema.Arity(), rows.Schema.NameList())
	}
	if rows.Schema.Columns[0].Name != "ProcedureID" {
		t.Error("key must lead")
	}
}

func TestQueryValidation(t *testing.T) {
	c := coriFixture(t)
	cases := []*Query{
		{Tree: c.Tree, Select: []string{"Nonexistent"}},
		{Tree: c.Tree, Select: []string{"MedicalHistory"}}, // group box
		{Tree: c.Tree, Select: []string{}},
		{Tree: c.Tree, Where: "Ghost = 1"},
		{Tree: c.Tree, Where: "Smoking +"},
	}
	for i, q := range cases {
		if _, err := q.Run(context.Background(), c.DB, c.Stack, c.Info); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLogicalSQLAndExplain(t *testing.T) {
	c := coriFixture(t)
	q := &Query{Tree: c.Tree, Select: []string{"ProcedureID", "PacksPerDay"}, Where: "PacksPerDay > 1"}
	sql, err := q.LogicalSQL()
	if err != nil {
		t.Fatal(err)
	}
	if sql != "SELECT ProcedureID, PacksPerDay FROM Procedure WHERE PacksPerDay > 1" {
		t.Errorf("sql = %q", sql)
	}
	exp, err := q.Explain(context.Background(), c.DB, c.Stack, c.Info)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"logical:", "patterns: Audit ∘ Lookup ∘ Naive", "physical:", "Procedure_Indication_lookup", "pushed down to the physical scan"} {
		if !strings.Contains(exp, want) {
			t.Errorf("explain missing %q:\n%s", want, exp)
		}
	}
	// A query over a Generic-backed contributor falls back.
	all, err := workload.BuildMedRecord(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	q2 := &Query{Tree: all.Tree, Select: []string{"RecordID"}, Where: "SmokeCode = 1"}
	exp2, err := q2.Explain(context.Background(), all.DB, all.Stack, all.Info)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp2, "fallback") {
		t.Errorf("explain must report fallback for EAV:\n%s", exp2)
	}
}

// TestQueryAcrossStacks runs the same logical query against the same data
// stored under different physical designs — the heart of the GUAVA claim
// that the g-tree hides schematic heterogeneity.
func TestQueryAcrossStacks(t *testing.T) {
	all, err := workload.BuildAll(21, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Each contributor words smoking differently; the per-contributor query
	// conditions reconcile that, but the *mechanism* (g-tree query through
	// a pattern stack) is identical.
	queries := map[string]*Query{
		"CORI":      {Tree: all[0].Tree, Select: []string{"ProcedureID"}, Where: "Smoking = 'Current'"},
		"EndoSoft":  {Tree: all[1].Tree, Select: []string{"ExamID"}, Where: "SmokingStatus = 'Smoker'"},
		"MedRecord": {Tree: all[2].Tree, Select: []string{"RecordID"}, Where: "SmokeCode = 1"},
	}
	for _, c := range all {
		q := queries[c.Name]
		rows, err := q.Run(context.Background(), c.DB, c.Stack, c.Info)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		want := 0
		for _, tr := range c.Truths {
			if tr.Smoking == "Current" {
				want++
			}
		}
		if rows.Len() != want {
			t.Errorf("%s: %d rows, want %d", c.Name, rows.Len(), want)
		}
	}
}

// TestAggregateQuery groups and counts through the pattern stack (the Study
// 1 "how many (what proportion)" shape).
func TestAggregateQuery(t *testing.T) {
	c := coriFixture(t)
	q := &AggregateQuery{
		Query:   Query{Tree: c.Tree, Where: "ProcType = 'Upper GI Endoscopy'"},
		GroupBy: []string{"Smoking"},
		Aggs: []relstore.Aggregate{
			{Kind: relstore.AggCount, As: "N"},
			{Kind: relstore.AggAvg, Col: "PacksPerDay", As: "MeanPacks"},
		},
	}
	rows, err := q.Run(context.Background(), c.DB, c.Stack, c.Info)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Schema.NameList() != "Smoking, N, MeanPacks" {
		t.Errorf("schema = %s", rows.Schema.NameList())
	}
	// Counts match ground truth.
	truth := map[string]int64{}
	for _, tr := range c.Truths {
		if tr.ProcType == "Upper GI Endoscopy" {
			truth[tr.Smoking]++
		}
	}
	for _, r := range rows.Data {
		key := "" // NULL group renders as unanswered smoking
		if !r[0].IsNull() {
			key = r[0].AsString()
		}
		if key == "" {
			continue // no NULL smoking in this workload (always answered)
		}
		if r[1].AsInt() != truth[key] {
			t.Errorf("group %q count = %d, want %d", key, r[1].AsInt(), truth[key])
		}
	}
	// Global aggregate (no group keys).
	g := &AggregateQuery{
		Query: Query{Tree: c.Tree},
		Aggs:  []relstore.Aggregate{{Kind: relstore.AggCount, As: "N"}},
	}
	out, err := g.Run(context.Background(), c.DB, c.Stack, c.Info)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Data[0][0].AsInt() != int64(len(c.Truths)) {
		t.Errorf("global count = %v", out.Data)
	}
	// Validation: no aggregates, bad group node, bad condition.
	if _, err := (&AggregateQuery{Query: Query{Tree: c.Tree}}).Run(context.Background(), c.DB, c.Stack, c.Info); err == nil {
		t.Error("no aggregates must fail")
	}
	bad := &AggregateQuery{Query: Query{Tree: c.Tree}, GroupBy: []string{"Ghost"},
		Aggs: []relstore.Aggregate{{Kind: relstore.AggCount, As: "N"}}}
	if _, err := bad.Run(context.Background(), c.DB, c.Stack, c.Info); err == nil {
		t.Error("unknown group node must fail")
	}
}

// TestQueryUnselectedSemantics asks for never-answered controls via NULL —
// the Figure 3b "Unselected" option.
func TestQueryUnselectedSemantics(t *testing.T) {
	c := coriFixture(t)
	q := &Query{Tree: c.Tree, Select: []string{"ProcedureID"}, Where: "PacksPerDay IS NULL"}
	rows, err := q.Run(context.Background(), c.DB, c.Stack, c.Info)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, tr := range c.Truths {
		if tr.Smoking != "Current" {
			want++ // enablement kept PacksPerDay unanswered
		}
	}
	if rows.Len() != want {
		t.Errorf("NULL packs rows = %d, want %d", rows.Len(), want)
	}
}
